//! Quickstart: simulate an AIS fleet, run the full surveillance pipeline,
//! and print what the system saw.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use maritime::prelude::*;

fn main() {
    // 1. A synthetic Aegean fleet (stand-in for a live AIS feed): 60
    //    vessels over 24 simulated hours, seeded for reproducibility.
    let fleet = FleetConfig {
        vessels: 60,
        duration: Duration::hours(24),
        seed: 2015,
        ..FleetConfig::default()
    };
    let sim = FleetSimulator::new(fleet);

    // 2. Static knowledge: real Greek ports plus the 35 synthetic
    //    surveillance areas of the paper's evaluation, and per-vessel
    //    facts (draft, fishing designation).
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();

    // 3. Assemble the pipeline with the paper's calibrated parameters
    //    (Table 3) and run it over the stream.
    let config = SurveillanceConfig::default();
    let mut pipeline =
        SurveillancePipeline::new(&config, vessels, areas).expect("valid default config");
    let report = pipeline.run(sim.generate().into_iter().map(PositionTuple::from));

    // 4. What happened.
    println!("=== Maritime surveillance quickstart ===");
    println!("window slides executed ....... {}", report.slides);
    println!("raw AIS positions ............ {}", report.raw_positions);
    println!("critical points retained ..... {}", report.critical_points);
    println!(
        "compression ratio ............ {:.1}%",
        report.compression_ratio * 100.0
    );
    println!("complex events recognized .... {}", report.ce_total);
    println!("alert records ................ {}", report.alerts);
    println!();
    println!("--- Table 4-style archive statistics ---");
    println!("{}", report.archive);
    println!();

    println!("--- First alerts pushed to the authorities ---");
    for record in pipeline.alerts().records().iter().take(10) {
        println!("  {}", record.render());
    }
    if pipeline.alerts().is_empty() {
        println!("  (no alerts this run)");
    }
}
