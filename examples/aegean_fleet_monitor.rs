//! Aegean fleet monitor: windowed live-style dashboard plus KML export.
//!
//! Replays a simulated Aegean fleet slide by slide — the way the real
//! system consumes a live AIS feed — printing a per-slide dashboard, and
//! finally exports the compressed trajectories and surveillance areas as
//! a KML document (the Trajectory Exporter of Figure 1).
//!
//! ```text
//! cargo run --example aegean_fleet_monitor --release [-- output.kml]
//! ```

use maritime::prelude::*;
use maritime_geo::kml::KmlWriter;
use maritime_tracker::synopsis::per_vessel_synopses;

fn main() {
    let kml_path = std::env::args().nth(1);

    let sim = FleetSimulator::new(FleetConfig {
        vessels: 80,
        duration: Duration::hours(12),
        seed: 7,
        ..FleetConfig::default()
    });
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();

    let config = SurveillanceConfig::default();
    let mut pipeline =
        SurveillancePipeline::new(&config, vessels, areas.clone()).expect("valid config");

    // Drive the slides by hand so we can render the dashboard.
    let stream: Vec<(Timestamp, PositionTuple)> = sim
        .generate()
        .into_iter()
        .map(|r| (r.timestamp, PositionTuple::from(r)))
        .collect();

    let mut all_critical: Vec<CriticalPoint> = Vec::new();
    println!("   slide |  admitted | critical | evicted | trips |   CEs | tracking");
    println!("---------+-----------+----------+---------+-------+-------+---------");
    let mut last_q = Timestamp::ZERO;
    for batch in SlideBatches::new(stream.into_iter(), config.tracking_window, Timestamp::ZERO) {
        let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
        let outcome = pipeline.slide(batch.query_time, &tuples);
        last_q = batch.query_time;
        // Keep a copy of the critical points for the KML export. (The real
        // exporter taps the same stream; we re-derive it from counts here.)
        let ces = outcome
            .recognition
            .as_ref()
            .map_or("     -".to_string(), |s| format!("{:6}", s.ce_count));
        println!(
            " {:>7} | {:>9} | {:>8} | {:>7} | {:>5} | {} | {:>6.2?}",
            outcome.query_time,
            outcome.admitted,
            outcome.fresh_critical,
            outcome.evicted,
            outcome.trips_completed,
            ces,
            outcome.timings.tracking,
        );
        let _ = &mut all_critical;
    }
    let final_outcome = pipeline.finish(last_q);
    println!(
        "   flush | {:>9} | {:>8} | {:>7} | {:>5} | {:>6} |",
        0,
        final_outcome.fresh_critical,
        final_outcome.evicted,
        final_outcome.trips_completed,
        final_outcome.recognition.as_ref().map_or(0, |s| s.ce_count),
    );

    let stats = pipeline.archive_stats();
    println!();
    println!("--- archive (Table 4 analogue) ---");
    println!("{stats}");
    println!();
    println!("--- alerts ---");
    for r in pipeline.alerts().records().iter().take(15) {
        println!("  {}", r.render());
    }

    // KML export: compressed trajectories from the archive + the areas.
    let mut kml = KmlWriter::new();
    for area in &areas {
        kml.add_area(area);
    }
    let archived: Vec<CriticalPoint> = pipeline
        .archive()
        .trips()
        .iter()
        .flat_map(|t| t.points.iter().copied())
        .collect();
    for (mmsi, synopsis) in per_vessel_synopses(&archived) {
        kml.add_polyline(&format!("vessel {mmsi}"), &synopsis.polyline());
    }
    let doc = kml.finish();
    match kml_path {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write KML");
            println!("\nKML with {} bytes written to {path}", doc.len());
        }
        None => println!(
            "\nKML document built ({} bytes); pass a path argument to save it.",
            doc.len()
        ),
    }
}
