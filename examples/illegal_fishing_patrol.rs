//! Illegal-fishing patrol: the scenarios of §4.1 on a scripted incident.
//!
//! A marine park is declared around the (real) National Marine Park of
//! Alonnisos; a neighbouring bank is closed to fishing. We script four
//! vessels:
//!
//! * `TRAWLER-A` and `TRAWLER-B` — fishing vessels that creep over the
//!   closed bank at trawling speed (illegal fishing, rule-set 4);
//! * `TANKER-X` — a rogue tanker that switches off its transponder right
//!   before crossing the park (illegal shipping, rule 5);
//! * `COASTER-Y` — a deep-draft coaster crawling across a 4-meter shoal
//!   (dangerous shipping, rule 6).
//!
//! The raw AIS positions are pushed through the *real* pipeline: data
//! scanner semantics, mobility tracker, critical points, RTEC rules.
//!
//! ```text
//! cargo run --example illegal_fishing_patrol --release
//! ```

use maritime::prelude::*;
use maritime_geo::destination;

/// Generates fixes along a straight leg at a constant speed.
fn leg(
    from: GeoPoint,
    bearing_deg: f64,
    speed_knots: f64,
    step_secs: i64,
    n: usize,
    t0: Timestamp,
) -> Vec<(GeoPoint, Timestamp)> {
    let step_m = maritime_geo::knots_to_mps(speed_knots) * step_secs as f64;
    (0..n)
        .map(|i| {
            (
                destination(from, bearing_deg, step_m * i as f64),
                t0 + Duration::secs(step_secs * i as i64),
            )
        })
        .collect()
}

fn tuples(mmsi: u32, fixes: Vec<(GeoPoint, Timestamp)>) -> Vec<PositionTuple> {
    fixes
        .into_iter()
        .map(|(p, t)| PositionTuple {
            mmsi: Mmsi(mmsi),
            position: p,
            timestamp: t,
        })
        .collect()
}

fn main() {
    // --- Static knowledge -------------------------------------------------
    let alonnisos = GeoPoint::new(23.93, 39.20);
    let closed_bank = GeoPoint::new(23.60, 39.00);
    let shoal = GeoPoint::new(24.30, 38.90);
    let areas = vec![
        Area::new(
            AreaId(0),
            "Alonnisos Marine Park",
            AreaKind::Protected,
            Polygon::circle(alonnisos, 12_000.0, 20),
        ),
        Area::new(
            AreaId(1),
            "Closed fishing bank",
            AreaKind::ForbiddenFishing,
            Polygon::circle(closed_bank, 8_000.0, 20),
        ),
        Area::new(
            AreaId(2),
            "Four-meter shoal",
            AreaKind::Shallow { depth_m: 4.0 },
            Polygon::circle(shoal, 6_000.0, 20),
        ),
    ];
    let vessels = vec![
        VesselInfo { mmsi: Mmsi(1), draft_m: 3.0, is_fishing: true }, // TRAWLER-A
        VesselInfo { mmsi: Mmsi(2), draft_m: 3.2, is_fishing: true }, // TRAWLER-B
        VesselInfo { mmsi: Mmsi(3), draft_m: 12.0, is_fishing: false }, // TANKER-X
        VesselInfo { mmsi: Mmsi(4), draft_m: 6.5, is_fishing: false }, // COASTER-Y
    ];

    // --- Scripted traces ---------------------------------------------------
    let mut stream: Vec<PositionTuple> = Vec::new();

    // Trawlers approach the bank at 9 knots, then trawl across it at 2.5
    // knots for over an hour.
    for (mmsi, offset) in [(1u32, 0.0), (2, 800.0)] {
        let start = destination(closed_bank, 250.0, 9_000.0 + offset);
        let mut fixes = leg(start, 70.0, 9.0, 30, 40, Timestamp(0));
        let on_bank = fixes.last().unwrap().0;
        let crawl = leg(on_bank, 70.0, 2.5, 60, 70, fixes.last().unwrap().1);
        fixes.extend(crawl.into_iter().skip(1));
        stream.extend(tuples(mmsi, fixes));
    }

    // The tanker sails toward the park at 12 knots, goes dark for 35
    // minutes right at the boundary, and reappears on the far side.
    let tanker_start = destination(alonnisos, 200.0, 24_000.0);
    let mut fixes = leg(tanker_start, 20.0, 12.0, 30, 75, Timestamp(0));
    let dark_at = *fixes.last().unwrap();
    let resume_pos = destination(dark_at.0, 20.0, 13_000.0);
    let resume_t = dark_at.1 + Duration::minutes(35);
    let mut after = leg(resume_pos, 20.0, 12.0, 30, 40, resume_t);
    fixes.append(&mut after);
    stream.extend(tuples(3, fixes));

    // The coaster crosses the shoal at 3 knots (slow + too little water
    // under the keel).
    let coaster_start = destination(shoal, 270.0, 9_000.0);
    let mut fixes = leg(coaster_start, 90.0, 11.0, 30, 30, Timestamp(0));
    let edge = fixes.last().unwrap().0;
    let crawl = leg(edge, 90.0, 3.0, 60, 60, fixes.last().unwrap().1);
    fixes.extend(crawl.into_iter().skip(1));
    stream.extend(tuples(4, fixes));

    stream.sort_by_key(|t| t.timestamp);

    // --- Run the real pipeline ---------------------------------------------
    let config = SurveillanceConfig::default();
    let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).expect("valid config");
    let report = pipeline.run(stream);

    println!("=== Illegal fishing patrol ===");
    println!(
        "{} raw positions -> {} critical points ({:.1}% compression)",
        report.raw_positions,
        report.critical_points,
        report.compression_ratio * 100.0
    );
    println!();
    println!("Recognized situations:");
    for record in pipeline.alerts().records() {
        println!("  {}", record.render());
    }

    let fishing_ces = pipeline
        .alerts()
        .records()
        .iter()
        .filter(|r| r.render().contains("illegalFishing"))
        .count();
    let shipping_alerts = pipeline
        .alerts()
        .records()
        .iter()
        .filter(|r| r.render().contains("ILLEGAL SHIPPING"))
        .count();
    let dangerous = pipeline
        .alerts()
        .records()
        .iter()
        .filter(|r| r.render().contains("DANGEROUS"))
        .count();
    println!();
    println!("summary: {fishing_ces} illegal-fishing boundary records, {shipping_alerts} illegal-shipping alerts, {dangerous} dangerous-shipping alerts");
    assert!(fishing_ces > 0, "the trawlers must be caught");
    assert!(shipping_alerts > 0, "the dark tanker must be caught");
    assert!(dangerous > 0, "the coaster must be caught");
    println!("patrol complete: all three incident types recognized.");
}
