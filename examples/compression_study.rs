//! Compression study: the Δθ trade-off of §5.1 in miniature.
//!
//! Sweeps the turn threshold Δθ over the paper's values {5°, 10°, 15°,
//! 20°} and reports, for each, the compression ratio (Figure 9) and the
//! average / maximum trajectory RMSE (Figure 8) — demonstrating the
//! "trade-off between reduction efficiency and approximation accuracy".
//!
//! ```text
//! cargo run --example compression_study --release
//! ```

use maritime::prelude::*;
use maritime_ais::replay::to_tuple_stream;
use maritime_tracker::accuracy::evaluate_accuracy;
use maritime_tracker::compression::measure_compression;

fn main() {
    let sim = FleetSimulator::new(FleetConfig {
        vessels: 50,
        duration: Duration::hours(24),
        seed: 99,
        ..FleetConfig::default()
    });
    let stream: Vec<PositionTuple> = to_tuple_stream(&sim.generate())
        .into_iter()
        .map(|(_, t)| t)
        .collect();

    println!("fleet: 50 vessels, 24 simulated hours, {} raw positions", stream.len());
    println!();
    println!("  Δθ (deg) | critical pts | compression | avg RMSE (m) | max RMSE (m)");
    println!("-----------+--------------+-------------+--------------+-------------");
    for dtheta in [5.0, 10.0, 15.0, 20.0] {
        let params = TrackerParams::with_turn_threshold(dtheta);
        let (report, critical) = measure_compression(&stream, params);
        let accuracy = evaluate_accuracy(&stream, &critical);
        println!(
            "  {:>8} | {:>12} | {:>10.1}% | {:>12.1} | {:>12.1}",
            dtheta,
            report.critical_points,
            report.ratio * 100.0,
            accuracy.avg_rmse_m,
            accuracy.max_rmse_m
        );
    }
    println!();
    println!(
        "expected shape (paper §5.1): relaxing Δθ keeps fewer critical points\n\
         (each +5° drops the count) while the approximation error grows."
    );
}
