//! Dark rendezvous: detecting a ship-to-ship transfer with the extension
//! complex events (`loitering` + rendezvous pairing).
//!
//! Two vessels sail from different directions to the same patch of open
//! sea, drift side by side for an hour (a transshipment), then part ways.
//! A third vessel stops inside a port for twice as long — business as
//! usual, not loitering. Raw positions go through the real mobility
//! tracker; the extension recognizer works on the resulting critical
//! points.
//!
//! ```text
//! cargo run --example dark_rendezvous --release
//! ```

use maritime::prelude::*;
use maritime_cer::ExtendedRecognizer;
use maritime_geo::destination;

fn leg(
    from: GeoPoint,
    bearing: f64,
    knots: f64,
    step_secs: i64,
    n: usize,
    t0: Timestamp,
) -> Vec<(GeoPoint, Timestamp)> {
    let step_m = maritime_geo::knots_to_mps(knots) * step_secs as f64;
    (0..n)
        .map(|i| {
            (
                destination(from, bearing, step_m * i as f64),
                t0 + Duration::secs(step_secs * i as i64),
            )
        })
        .collect()
}

fn drift(center: GeoPoint, n: usize, step_secs: i64, t0: Timestamp) -> Vec<(GeoPoint, Timestamp)> {
    (0..n)
        .map(|i| {
            (
                destination(center, (i * 67 % 360) as f64, 10.0),
                t0 + Duration::secs(step_secs * i as i64),
            )
        })
        .collect()
}

fn main() {
    let meeting_point = GeoPoint::new(24.9, 38.3);
    let piraeus = GeoPoint::new(23.62, 37.94);

    let areas = vec![Area::new(
        AreaId(0),
        "Piraeus",
        AreaKind::Port,
        Polygon::circle(piraeus, 2_500.0, 16),
    )];
    let vessels = vec![
        VesselInfo { mmsi: Mmsi(101), draft_m: 5.0, is_fishing: false },
        VesselInfo { mmsi: Mmsi(202), draft_m: 7.0, is_fishing: false },
        VesselInfo { mmsi: Mmsi(303), draft_m: 6.0, is_fishing: false },
    ];

    // --- Scripted traces -----------------------------------------------
    let mut stream: Vec<PositionTuple> = Vec::new();
    for (mmsi, approach_bearing, lateral) in [(101u32, 45.0, 0.0), (202, 315.0, 400.0)] {
        let spot = destination(meeting_point, 90.0, lateral);
        let start = destination(spot, approach_bearing + 180.0, 15_000.0);
        // Approach at 11 knots, drift for ~70 minutes, leave.
        let mut fixes = leg(start, approach_bearing, 11.0, 30, 88, Timestamp(0));
        let arrive_t = fixes.last().unwrap().1 + Duration::secs(60);
        fixes.extend(drift(spot, 42, 100, arrive_t));
        let leave_t = fixes.last().unwrap().1 + Duration::secs(60);
        fixes.extend(leg(spot, approach_bearing, 11.0, 30, 40, leave_t));
        stream.extend(fixes.into_iter().map(|(p, t)| PositionTuple {
            mmsi: Mmsi(mmsi),
            position: p,
            timestamp: t,
        }));
    }
    // The honest vessel: moored in Piraeus for 3 hours.
    let moored = drift(piraeus, 90, 120, Timestamp(0));
    stream.extend(moored.into_iter().map(|(p, t)| PositionTuple {
        mmsi: Mmsi(303),
        position: p,
        timestamp: t,
    }));
    stream.sort_by_key(|t| t.timestamp);

    // --- Track, then recognize -------------------------------------------
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut critical = Vec::new();
    for tuple in &stream {
        critical.extend(tracker.process(*tuple));
    }
    critical.extend(tracker.finish());

    let spec = WindowSpec::new(Duration::hours(12), Duration::hours(1)).unwrap();
    let mut recognizer = ExtendedRecognizer::new(
        Knowledge::standard(vessels, areas),
        spec,
    );
    recognizer.add_events(
        critical
            .iter()
            .filter_map(maritime_cer::InputEvent::from_critical),
    );
    let report = recognizer.recognize_at(Timestamp(6 * 3_600));

    // --- Report -----------------------------------------------------------
    println!("=== Dark rendezvous watch ===");
    println!(
        "{} raw positions -> {} critical points",
        stream.len(),
        critical.len()
    );
    println!();
    println!("Loitering vessels:");
    for (mmsi, intervals) in &report.loitering {
        for iv in intervals.intervals() {
            let until = iv
                .until
                .map_or("ongoing".to_string(), |u| u.to_string());
            println!("  vessel {mmsi}: from {} until {until}", iv.since);
        }
    }
    println!();
    println!("Rendezvous detected:");
    for rv in &report.rendezvous {
        println!(
            "  {} <-> {} at ({:.4}, {:.4}), {:.0} m apart, overlap {} -> {:?}",
            rv.vessels.0,
            rv.vessels.1,
            rv.location.lon,
            rv.location.lat,
            rv.separation_m,
            rv.interval.since,
            rv.interval.until,
        );
    }

    assert_eq!(report.rendezvous.len(), 1, "the transfer must be detected");
    let loiterers: Vec<Mmsi> = report.loitering.iter().map(|(m, _)| *m).collect();
    assert!(
        !loiterers.contains(&Mmsi(303)),
        "the moored vessel must not count as loitering"
    );
    println!("\nwatch complete: one rendezvous, moored vessel correctly ignored.");
}
