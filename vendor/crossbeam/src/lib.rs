//! Vendored, offline stand-in for the `crossbeam` crate.
//!
//! `crossbeam::thread::scope` delegates to `std::thread::scope` (available
//! since Rust 1.63), wrapped to keep crossbeam's call shape: the closure
//! and each spawned task receive a `&Scope` argument, `scope` returns a
//! `Result`, and join handles return `thread::Result`. Channels wrap
//! `std::sync::mpsc`: `bounded(n)` is a rendezvous-or-buffered sync
//! channel, which provides the same backpressure semantics the sharded
//! tracker relies on.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (matches `std::thread::Result`).
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; spawned closures receive a reference to it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            Scope { inner: self.inner }
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle awaiting a spawned thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> ScopeResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads, like crossbeam's.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before returning. Unlike `std`, the result
    /// is wrapped in `Ok` to keep crossbeam's `.expect("scope")` call
    /// sites working (panics in unjoined threads still propagate as
    /// panics, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels with optional capacity bounds.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half. Cloneable; blocks when a bounded channel is full.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half. Cloneable (consumers share the stream), unlike
    /// `std::sync::mpsc` but like crossbeam.
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { rx: Arc::clone(&self.rx) }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.lock().expect("channel poisoned").recv().map_err(|_| RecvError)
        }

        /// A blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages; senders block
    /// when it is full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { tx: Tx::Bounded(tx) },
            Receiver { rx: Arc::new(Mutex::new(rx)) },
        )
    }

    /// A channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { tx: Tx::Unbounded(tx) },
            Receiver { rx: Arc::new(Mutex::new(rx)) },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("no panic")
        })
        .expect("scope");
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().expect("inner") + 1)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }

    #[test]
    fn bounded_channel_roundtrip() {
        let (tx, rx) = crate::channel::bounded(2);
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
