//! Vendored `#[derive(Serialize, Deserialize)]` for the stand-in serde.
//!
//! The offline build has no `syn`/`quote`, so this macro parses the item
//! declaration directly from the raw token stream. It supports exactly the
//! shapes this workspace derives on: non-generic (or simply-generic)
//! structs with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, tuple, or struct-like. `#[serde(...)]` field
//! attributes are not supported (none are used in the workspace).
//!
//! Code generation goes through plain strings: the item is parsed into a
//! small AST, the impl is rendered as Rust source, and the source is parsed
//! back into a `TokenStream`. Slow at compile time, trivially debuggable.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// A parsed field list.
enum Fields {
    /// `struct S;` or a unit enum variant.
    Unit,
    /// `S(T, U)` — only the arity matters.
    Tuple(usize),
    /// `S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
}

/// A parsed item: struct or enum with its (simple) type parameters.
struct Item {
    name: String,
    type_params: Vec<String>,
    body: Body,
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    skip_attributes_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    pos += 1;

    let type_params = parse_generics(&tokens, &mut pos);

    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        panic!("derive(Serialize/Deserialize): `where` clauses are not supported");
    }

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_body(&tokens, &mut pos)),
        "enum" => {
            let group = expect_group(&tokens, &mut pos, Delimiter::Brace);
            Body::Enum(parse_variants(group))
        }
        other => panic!("derive supports structs and enums, found `{other}`"),
    };

    // Consume to catch silent misparses early.
    drop(tokens);
    Item { name, type_params, body }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` then the bracketed group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B: Bound, ...>` into the list of type parameter names.
/// Lifetimes and const parameters are rejected (unused in this workspace).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *pos += 1;
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut at_param_start = true;
    while depth > 0 {
        let tok = tokens.get(*pos).expect("unterminated generics");
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("derive: lifetime parameters are not supported")
            }
            TokenTree::Ident(i) if at_param_start => {
                if i.to_string() == "const" {
                    panic!("derive: const generics are not supported");
                }
                params.push(i.to_string());
                at_param_start = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

fn expect_group(tokens: &[TokenTree], pos: &mut usize, delim: Delimiter) -> TokenStream {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *pos += 1;
            g.stream()
        }
        other => panic!("expected {delim:?} group, found {other:?}"),
    }
}

fn parse_struct_body(tokens: &[TokenTree], pos: &mut usize) -> Fields {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            *pos += 1;
            Fields::Named(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            *pos += 1;
            Fields::Tuple(arity)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("expected struct body, found {other:?}"),
    }
}

/// Extracts field names from `a: T, b: U, ...`, tracking angle-bracket depth
/// so commas inside `Vec<(A, B)>`-style types don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        pos += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_content = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_content = true,
        }
    }
    // Tolerate a trailing comma: `S(T,)`.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    assert!(saw_content, "empty tuple struct body");
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// `impl<A: Bound, B: Bound>` header plus `Name<A, B>` type, or plain
/// `impl`/`Name` for non-generic items.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.type_params.is_empty() {
        (String::from("impl"), item.name.clone())
    } else {
        let params: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        (
            format!("impl<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.type_params.join(", ")),
        )
    }
}

fn render_serialize(item: &Item) -> String {
    let (header, ty) = impl_header(item, "::serde::Serialize");
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] {header} ::serde::Serialize for {ty} {{ \
         fn to_value(&self) -> ::serde::Value {{ "
    );
    match &item.body {
        Body::Struct(Fields::Unit) => {
            let _ = write!(out, "::serde::Value::Null");
        }
        Body::Struct(Fields::Tuple(1)) => {
            let _ = write!(out, "::serde::Serialize::to_value(&self.0)");
        }
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            let _ = write!(out, "::serde::Value::Array(vec![{}])", elems.join(", "));
        }
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            let _ = write!(out, "::serde::Value::Object(vec![{}])", entries.join(", "));
        }
        Body::Enum(variants) => {
            let _ = write!(out, "match self {{ ");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            out,
                            "Self::{v} => ::serde::Value::String(\"{v}\".to_string()), "
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        let _ = write!(
                            out,
                            "Self::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {payload})]), ",
                            binds = binds.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            out,
                            "Self::{v} {{ {fields} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{entries}]))]), ",
                            fields = fields.join(", "),
                            entries = entries.join(", ")
                        );
                    }
                }
            }
            let _ = write!(out, "}}");
        }
    }
    let _ = write!(out, " }} }}");
    out
}

fn render_deserialize(item: &Item) -> String {
    let (header, ty) = impl_header(item, "::serde::Deserialize");
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] {header} ::serde::Deserialize for {ty} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ "
    );
    match &item.body {
        Body::Struct(Fields::Unit) => {
            let _ = write!(out, "Ok(Self)");
        }
        Body::Struct(Fields::Tuple(1)) => {
            let _ = write!(out, "Ok(Self(::serde::Deserialize::from_value(__v)?))");
        }
        Body::Struct(Fields::Tuple(n)) => {
            let _ = write!(
                out,
                "let __items = ::serde::__private::tuple(__v, {n})?; Ok(Self({}))",
                (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__v, \"{f}\")?)?"
                    )
                })
                .collect();
            let _ = write!(out, "Ok(Self {{ {} }})", inits.join(", "));
        }
        Body::Enum(variants) => {
            let _ = write!(
                out,
                "let (__name, __payload) = ::serde::__private::variant(__v)?; match __name {{ "
            );
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(out, "\"{v}\" => Ok(Self::{v}), ");
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            out,
                            "\"{v}\" => Ok(Self::{v}(::serde::Deserialize::from_value(__payload)?)), "
                        );
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = write!(
                            out,
                            "\"{v}\" => {{ let __items = ::serde::__private::tuple(__payload, {n})?; Ok(Self::{v}({})) }}, ",
                            elems.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__payload, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            out,
                            "\"{v}\" => Ok(Self::{v} {{ {} }}), ",
                            inits.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "__other => Err(::serde::DeError::msg(format!(\"unknown variant `{{__other}}`\"))) }}"
            );
        }
    }
    let _ = write!(out, " }} }}");
    out
}
