//! Vendored, offline stand-in for the `rand` crate.
//!
//! Provides the exact surface this workspace uses: `SmallRng` (implemented
//! as xoshiro256++ seeded through SplitMix64, matching upstream's 64-bit
//! `SmallRng` choice), `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool`, and `gen_range` over half-open and inclusive integer
//! and float ranges. Streams are deterministic per seed, which is all the
//! synthetic fleet generator and the property tests require; no statistical
//! guarantees beyond "a decent 64-bit mixing PRNG" are claimed.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of a primitive type over its natural distribution
    /// (uniform over the type; `f64`/`f32` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fisher-Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by `Rng::gen` (upstream's `Standard` distribution,
/// flattened into a trait).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly. Kept as a single pair of blanket
/// `SampleRange` impls (like upstream) so that a literal range such as
/// `0.6..1.6` leaves exactly one candidate impl and type inference can flow
/// from the surrounding expression into the range's element type.
pub trait SampleUniform: Sized + PartialOrd {
    /// One sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// One sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for integer seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3i64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(8usize..=14);
            assert!((8..=14).contains(&y));
            let f = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_float_covers_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi);
    }
}
