//! Vendored, offline stand-in for the `criterion` benchmark harness.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`BenchmarkGroup` surface
//! so the workspace's benches compile and run unchanged, but replaces the
//! statistical machinery with a simple median-of-samples wall-clock
//! measurement printed to stdout. Good enough to compare configurations on
//! one machine; not a rigorous statistics package.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The benchmark context. `configure_from_args` is accepted and ignored.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts CLI configuration; a no-op here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { requested: Some(10), ..Bencher::default() };
        f(&mut b);
        report(id, &b, 10, None);
        self
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measurement time is accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { requested: Some(self.sample_size), ..Bencher::default() };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            &b,
            self.sample_size,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { requested: Some(self.sample_size), ..Bencher::default() };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            &b,
            self.sample_size,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects the routine to measure. `iter` stores the closure's timings.
#[derive(Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: Option<usize>,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warmup run).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let samples = self.requested.unwrap_or(10);
        black_box(routine()); // warmup
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(label: &str, bencher: &Bencher, sample_size: usize, throughput: Option<Throughput>) {
    // `iter` may have run before the group's sample size was known; re-run
    // is not possible here, so the stub simply records what it has. When
    // `iter` was never called the benchmark body did nothing measurable.
    let _ = sample_size;
    if bencher.samples.is_empty() {
        println!("  {label}: no measurement (b.iter was not called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => {
            format!(" ({:.0} B/s)", n as f64 / median.as_secs_f64())
        }
    });
    println!(
        "  {label}: median {median:?}, mean {mean:?} over {} samples{}",
        sorted.len(),
        rate.unwrap_or_default()
    );
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
