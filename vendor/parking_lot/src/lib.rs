//! Vendored, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives and hides lock poisoning (a poisoned lock
//! panics, matching parking_lot's no-poisoning API shape closely enough
//! for this workspace).

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
