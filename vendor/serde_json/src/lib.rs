//! Vendored, offline stand-in for `serde_json`.
//!
//! Serializes the stand-in serde [`Value`] model to JSON text and parses it
//! back. Floats are written with Rust's shortest-roundtrip formatting and
//! read with the standard library's correctly rounded parser, so
//! `f64 -> text -> f64` is bit-exact — the property the upstream
//! `float_roundtrip` feature guarantees and the archive round-trip tests
//! rely on.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type covering syntax, data-model, and I/O failures.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a typed value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a typed value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Builds a [`Value`] literally. Supports `null`, `true`, `false`, nested
/// arrays and objects with string-literal keys, and arbitrary serializable
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut elems: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_elems!(elems; $($tt)*);
        $crate::Value::Array(elems)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_fields!(fields; $($tt)*);
        $crate::Value::Object(fields)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: consumes array elements one at a
/// time so `null` and nested array/object literals dispatch to [`json!`]
/// recursively while everything else stays an ordinary expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($out:ident;) => {};
    ($out:ident; null $(, $($rest:tt)*)?) => {
        $out.push($crate::Value::Null);
        $crate::json_elems!($out; $($($rest)*)?);
    };
    ($out:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $out.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($out; $($($rest)*)?);
    };
    ($out:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $out.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($out; $($($rest)*)?);
    };
    ($out:ident; $val:expr $(, $($rest:tt)*)?) => {
        $out.push($crate::to_value(&$val));
        $crate::json_elems!($out; $($($rest)*)?);
    };
}

/// Implementation detail of [`json!`]: consumes `"key": value` pairs with
/// the same value dispatch as [`json_elems!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($out:ident;) => {};
    ($out:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $out.push((($key).to_string(), $crate::Value::Null));
        $crate::json_fields!($out; $($($rest)*)?);
    };
    ($out:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $out.push((($key).to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_fields!($out; $($($rest)*)?);
    };
    ($out:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $out.push((($key).to_string(), $crate::json!({ $($inner)* })));
        $crate::json_fields!($out; $($($rest)*)?);
    };
    ($out:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $out.push((($key).to_string(), $crate::to_value(&$val)));
        $crate::json_fields!($out; $($($rest)*)?);
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

/// JSON has no NaN/infinity; like upstream serde_json, non-finite floats
/// are written as `null`. Finite floats use Rust's shortest-roundtrip
/// `Display`, with a `.0` suffix added to integral values so they read back
/// as floats.
fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{x}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full sequence through.
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v: Value = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_bits_roundtrip() {
        for x in [0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 5.0e-324, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "text {text}");
        }
    }

    #[test]
    fn nested_structure() {
        let v = json!({"a": [1, 2, 3], "b": {"c": "x\"y"}});
        let text = to_string(&v).unwrap();
        let back: Value = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!({"k": [true, null, 2.5]});
        let back: Value = parse(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::String("A😀".to_string()));
    }
}
