//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::option::of`, `prop_map`/`prop_filter`
//! adapters, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its case number and message
//!   but is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.
//! - **Local filter retries.** `prop_filter` retries its inner strategy up
//!   to a fixed budget instead of feeding a global rejection quota.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt;

pub use rand::rngs::SmallRng as TestRngImpl;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(TestRngImpl);

impl TestRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(TestRngImpl::seed_from_u64(seed))
    }

    /// Derives a deterministic per-test seed from the test's name.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed session constant.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h ^ 0x9E37_79B9_7F4A_7C15)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying on rejection.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row; loosen the filter",
            self.reason
        );
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Object-safe strategy, for `prop_oneof!` and `boxed()`.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between alternative strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from pre-boxed arms; used by the macro.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges as strategies.
macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i32, i64, bool, f64, f32);

/// Strategy for the full domain of `T` (upstream's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Combinator namespaces mirroring `proptest::prelude::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` namespace.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The prelude, as `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    /// Combinator namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident (
            $($pat:pat_param in $strat:expr),* $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3i64..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_filter_compose(
            n in (0i64..100).prop_map(|x| x * 2).prop_filter("nonzero", |x| *x != 0)
        ) {
            prop_assert!(n % 2 == 0);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(k == 1 || k == 2 || k == 5 || k == 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
