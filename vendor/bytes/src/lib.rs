//! Vendored, offline stand-in for the `bytes` crate.
//!
//! A `Vec<u8>`-backed `BytesMut` plus the `BufMut` trait methods the AIS
//! six-bit armouring uses. No shared-buffer reference counting: `freeze`
//! simply moves the storage into an immutable `Bytes`.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::Deref;

/// Write-side buffer abstraction.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Converts into an immutable byte container.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&*b.freeze(), &[1, 2, 3]);
    }
}
