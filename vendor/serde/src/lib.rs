//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. Unlike upstream serde's visitor-based zero-copy design, this
//! stand-in round-trips every value through a JSON-shaped [`Value`] tree:
//! `Serialize` renders into a `Value`, `Deserialize` reads back out of one.
//! That is dramatically simpler, covers everything this workspace needs
//! (derive on plain structs/enums, JSON round-trips via the vendored
//! `serde_json`), and keeps the public surface source-compatible for the
//! idioms used here: `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]`.
//!
//! Enum representation follows serde's externally-tagged default:
//! unit variants serialize as `"Name"`, newtype variants as
//! `{"Name": value}`, tuple variants as `{"Name": [..]}`, and struct
//! variants as `{"Name": {..}}`. Object fields preserve declaration order,
//! which keeps serialized output deterministic — a property the golden
//! trace fixtures rely on.

// Vendored stand-in crate: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (declaration order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object. `None` for absent keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path-less message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::msg("unsigned value out of range"))?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::msg("negative value for unsigned type"))?,
                    Value::UInt(u) => *u,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let wide = u64::from_value(v)?;
        usize::try_from(wide).map_err(|_| DeError::msg("integer out of range for usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let wide = i64::from_value(v)?;
        isize::try_from(wide).map_err(|_| DeError::msg("integer out of range for isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!(
                "expected single-char string, found {}", other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// `&'static str` deserialization interns through a small leak: the
/// workspace only ever stores compile-time names in such fields (CE labels
/// like `"suspicious"`), so the set of distinct strings is tiny and the
/// leak is bounded in practice.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(match s.as_str() {
                "suspicious" => "suspicious",
                "illegalFishing" => "illegalFishing",
                other => Box::leak(other.to_owned().into_boxed_str()),
            }),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::from_value(
                                it.next().ok_or_else(|| DeError::msg("tuple too short"))?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::msg(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (stringify_key(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (stringify_key(&k.to_value()), v.to_value()))
            .collect();
        // Hash iteration order is nondeterministic; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?
            .map(|(k, val)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?
            .map(|(k, val)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

fn map_entries(v: &Value) -> Result<std::slice::Iter<'_, (String, Value)>, DeError> {
    match v {
        Value::Object(entries) => Ok(entries.iter()),
        other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
    }
}

fn stringify_key(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a primitive, got {}", other.kind()),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by generated code; not a public API)
// ---------------------------------------------------------------------------

/// Runtime support for the derive macros. Hidden from rustdoc on purpose.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Fetches a struct field, treating absence as `null` so `Option`
    /// fields default to `None` exactly like upstream serde.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Object(_) => Ok(v.get(name).unwrap_or(&Value::Null)),
            other => Err(DeError::msg(format!(
                "expected object with field `{name}`, found {}", other.kind()
            ))),
        }
    }

    /// Interprets a value as an externally-tagged enum: returns the variant
    /// name and its payload (`Null` for unit variants).
    pub fn variant(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::String(name) => Ok((name.as_str(), &Value::Null)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(DeError::msg(format!(
                "expected externally tagged enum, found {}", other.kind()
            ))),
        }
    }

    /// Extracts the elements of a tuple-variant payload of known arity.
    pub fn tuple<'a>(v: &'a Value, arity: usize) -> Result<&'a [Value], DeError> {
        match v {
            Value::Array(items) if items.len() == arity => Ok(items),
            Value::Array(items) => Err(DeError::msg(format!(
                "expected {arity}-element array, found {}", items.len()
            ))),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3i64).to_value(), Value::Int(3));
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i64>::from_value(&Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn unsigned_wide_values_survive() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
