//! Differential harness: checkpointed incremental recognition must be
//! observationally indistinguishable from from-scratch recognition.
//!
//! Every comparison here is *byte identical* under JSON serialization —
//! fluent intervals, alerts, CE counts, and working-memory sizes — not
//! merely equal counts. The schedules deliberately include the two
//! hazards of the checkpoint cache (`maritime_rtec::cache`):
//!
//! - **late arrivals**: an event timestamped at or before the previous
//!   query must force a full recompute and still produce identical
//!   output;
//! - **eviction retraction**: an open interval whose initiating events
//!   slide out of the window must be retracted from the cache exactly as
//!   from-scratch evaluation forgets it.
//!
//! A proptest replays random streams through geo-partitioned recognizers
//! at 1, 2, and 4 longitude bands, so band routing and the per-band
//! caches are exercised together.

use maritime::prelude::*;
use maritime_cer::RecognitionSummary;
use proptest::prelude::*;

fn t(v: i64) -> Timestamp {
    Timestamp(v)
}

fn spec_6h_1h() -> WindowSpec {
    WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap()
}

/// The three-area world of the recognizer unit tests: a protected park,
/// a forbidden-fishing zone, and a shoal, spread across longitudes so
/// uniform bands separate them.
fn areas() -> Vec<Area> {
    vec![
        Area::new(
            AreaId(0),
            "park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.2, 37.2)),
        ),
        Area::new(
            AreaId(1),
            "no-fish",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(24.0, 38.0), GeoPoint::new(24.2, 38.2)),
        ),
        Area::new(
            AreaId(2),
            "shoal",
            AreaKind::Shallow { depth_m: 4.0 },
            Polygon::rectangle(GeoPoint::new(26.5, 36.0), GeoPoint::new(26.7, 36.2)),
        ),
    ]
}

fn vessels(n: u32) -> Vec<VesselInfo> {
    (0..n)
        .map(|i| VesselInfo {
            mmsi: Mmsi(100 + i),
            draft_m: if i % 2 == 0 { 8.0 } else { 3.0 },
            is_fishing: i % 3 == 0,
        })
        .collect()
}

/// Hotspots the synthetic streams cluster on: inside each area plus open
/// sea. Index 0..4.
const HOTSPOTS: [(f64, f64); 4] = [(21.1, 37.1), (24.1, 38.1), (26.6, 36.1), (23.0, 39.9)];

const KINDS: [InputKind; 5] = [
    InputKind::StopStart,
    InputKind::StopEnd,
    InputKind::SlowMotionStart,
    InputKind::SlowMotionEnd,
    InputKind::GapStart,
];

fn ev(vessel: u32, kind: InputKind, hotspot: usize) -> InputEvent {
    let (lon, lat) = HOTSPOTS[hotspot % HOTSPOTS.len()];
    InputEvent {
        mmsi: Mmsi(100 + vessel),
        kind,
        position: GeoPoint::new(lon, lat),
        close_areas: None,
    }
}

/// Canonical JSON of one query's full observable output.
fn canon(s: &RecognitionSummary) -> String {
    // Vendored serde implements tuples up to arity 4: nest pairs.
    serde_json::to_string(&(
        (s.query_time, &s.suspicious),
        (&s.illegal_fishing, &s.alerts),
        (s.ce_count, s.working_memory),
    ))
    .unwrap()
}

/// Deterministic xorshift stream generator — no RNG-crate dependency and
/// stable across runs, so failures reproduce exactly.
fn synthetic_stream(seed: u64, count: usize, span_secs: i64) -> Vec<(Timestamp, InputEvent)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        // Ascending timestamps with jitter: no late arrivals here (the
        // dedicated tests below inject those on purpose).
        let at = (i as i64 * span_secs) / count as i64 + (next() % 60) as i64;
        let vessel = (next() % 10) as u32;
        let kind = KINDS[(next() % KINDS.len() as u64) as usize];
        let hotspot = (next() % HOTSPOTS.len() as u64) as usize;
        events.push((t(at), ev(vessel, kind, hotspot)));
    }
    events.sort_by_key(|(at, _)| *at);
    events
}

/// Replays `events` through two recognizers (from-scratch and
/// incremental), querying at each slide, and asserts byte-identical
/// summaries. Returns the incremental engine's evaluation stats.
fn assert_equivalent_replay(
    events: &[(Timestamp, InputEvent)],
    queries: &[Timestamp],
) -> IncrementalStats {
    let kb = || Knowledge::standard(vessels(10), areas());
    let mut full = MaritimeRecognizer::with_strategy(kb(), spec_6h_1h(), EvalStrategy::FromScratch);
    let mut inc = MaritimeRecognizer::with_strategy(kb(), spec_6h_1h(), EvalStrategy::Incremental);
    let mut fed = 0;
    for q in queries {
        while fed < events.len() && events[fed].0 <= *q {
            full.add_events([events[fed].clone()]);
            inc.add_events([events[fed].clone()]);
            fed += 1;
        }
        let a = canon(&full.recognize_and_summarize(*q));
        let b = canon(&inc.recognize_and_summarize(*q));
        assert_eq!(a, b, "summaries diverged at query {q:?}");
    }
    let scratch = full.incremental_stats();
    assert_eq!(scratch.incremental, 0, "from-scratch must never take the delta path");
    assert_eq!(scratch.full, queries.len());
    inc.incremental_stats()
}

#[test]
fn incremental_summaries_are_byte_identical_over_a_day() {
    let events = synthetic_stream(0x5EED_CAFE, 600, 26 * 3_600);
    let queries: Vec<Timestamp> = (1..=26).map(|h| t(h * 3_600)).collect();
    let stats = assert_equivalent_replay(&events, &queries);
    // Timestamps ascend, so after the cold first query every slide takes
    // the delta path.
    assert_eq!(stats.full, 1, "unexpected fallbacks: {stats:?}");
    assert_eq!(stats.incremental, 25);
}

#[test]
fn late_arrival_forces_identical_fallback() {
    // A suspicious build-up, a checkpoint, then an event timestamped
    // *before* the checkpoint: the cache must be discarded, and both
    // modes must agree that the late StopEnd truncates the interval.
    let mut full = MaritimeRecognizer::with_strategy(
        Knowledge::standard(vessels(10), areas()),
        spec_6h_1h(),
        EvalStrategy::FromScratch,
    );
    let mut inc = MaritimeRecognizer::with_strategy(
        Knowledge::standard(vessels(10), areas()),
        spec_6h_1h(),
        EvalStrategy::Incremental,
    );
    let early: Vec<(Timestamp, InputEvent)> = (0..4)
        .map(|i| (t(600 + i64::from(i)), ev(i, InputKind::StopStart, 0)))
        .collect();
    for r in [&mut full, &mut inc] {
        r.add_events(early.iter().cloned());
    }
    let q1 = t(3_600);
    assert_eq!(
        canon(&full.recognize_and_summarize(q1)),
        canon(&inc.recognize_and_summarize(q1))
    );

    // Late arrival: one vessel actually departed before the checkpoint.
    let late = (t(1_800), ev(0, InputKind::StopEnd, 0));
    for r in [&mut full, &mut inc] {
        r.add_events([late.clone()]);
    }
    let q2 = t(7_200);
    let a = canon(&full.recognize_and_summarize(q2));
    let b = canon(&inc.recognize_and_summarize(q2));
    assert_eq!(a, b, "late arrival broke equivalence");
    assert!(
        a.contains("\"1800\"") || !a.is_empty(),
        "sanity: summary serialized"
    );
    let stats = inc.incremental_stats();
    assert_eq!(stats.full, 2, "cold start + late-arrival fallback, got {stats:?}");
}

#[test]
fn eviction_retracts_straddling_intervals_identically() {
    // Four stops open a suspicious interval near t=600 that is still
    // ongoing at the first checkpoints. Once the window slides past the
    // initiating events they are evicted, and the incremental cache must
    // retract the interval exactly as a full recompute forgets it.
    let events: Vec<(Timestamp, InputEvent)> = (0..4)
        .map(|i| (t(600 + i64::from(i)), ev(i, InputKind::StopStart, 0)))
        .collect();
    // Hourly queries from 1 h to 8 h: the 6-hour window evicts the stops
    // between the 6th and 7th query while the interval straddles every
    // intermediate cutoff.
    let queries: Vec<Timestamp> = (1..=8).map(|h| t(h * 3_600)).collect();
    let stats = assert_equivalent_replay(&events, &queries);
    assert_eq!(stats.incremental + stats.full, 8);

    // And the end state really is empty — the interval was retracted.
    let mut inc = MaritimeRecognizer::with_strategy(
        Knowledge::standard(vessels(10), areas()),
        spec_6h_1h(),
        EvalStrategy::Incremental,
    );
    inc.add_events(events);
    for h in 1..=8 {
        let s = inc.recognize_and_summarize(t(h * 3_600));
        if h <= 6 {
            assert_eq!(s.suspicious.len(), 1, "hour {h}");
        } else {
            assert!(s.suspicious.is_empty(), "hour {h}: {:?}", s.suspicious);
            assert_eq!(s.working_memory, 0, "hour {h}");
        }
    }
}

#[test]
fn incremental_pipeline_matches_from_scratch_end_to_end() {
    // Full pipeline over the synthetic fleet: NMEA-free PositionTuple
    // replay through tracking + recognition + alert log, incremental vs
    // from-scratch at 1 and 2 recognition bands.
    let sim = FleetSimulator::new(FleetConfig {
        vessels: 50,
        duration: Duration::hours(24),
        ..FleetConfig::tiny(0x5EED_CAFE)
    });
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let stream: Vec<PositionTuple> = sim.generate().iter().map(|r| (*r).into()).collect();

    let run = |incremental: bool, bands: usize| {
        let config = SurveillanceConfig {
            parallelism: Parallelism {
                tracker_shards: 1,
                recognition_bands: bands,
            },
            incremental_recognition: incremental,
            ..SurveillanceConfig::default()
        };
        let mut pipeline =
            SurveillancePipeline::new(&config, vessels.clone(), areas.clone()).unwrap();
        let report = pipeline.run(stream.iter().copied());
        let log: Vec<String> = pipeline
            .alerts()
            .records()
            .iter()
            .map(AlertRecord::render)
            .collect();
        (report.critical_points, report.ce_total, log)
    };

    for bands in [1, 2] {
        let (full_cps, full_ces, full_log) = run(false, bands);
        let (inc_cps, inc_ces, inc_log) = run(true, bands);
        assert_eq!(full_cps, inc_cps, "critical count diverged at {bands} band(s)");
        assert_eq!(full_ces, inc_ces, "CE count diverged at {bands} band(s)");
        assert_eq!(full_log, inc_log, "alert log diverged at {bands} band(s)");
    }
}

/// One step of a random schedule: feed an event (possibly late) or query.
#[derive(Debug, Clone)]
enum Step {
    Event { at: i64, ev: InputEvent },
    Query { at: i64 },
}

/// Random schedules: forward-drifting clock, ~1/5 queries, ~1/5 events
/// arriving an hour late (at or before an already-answered query).
fn arb_schedule() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0u8..5, 0u32..8, 0u8..4, 0i64..1_800, 0u8..5), 10..60).prop_map(
        |raw| {
            let mut clock = 0i64;
            raw.into_iter()
                .map(|(sel, vessel, hotspot, jitter, kindsel)| {
                    clock += jitter;
                    match sel {
                        4 => Step::Query { at: clock },
                        3 => Step::Event {
                            at: (clock - 3_600).max(0), // late arrival
                            ev: ev(vessel, KINDS[kindsel as usize], hotspot as usize),
                        },
                        _ => Step::Event {
                            at: clock,
                            ev: ev(vessel, KINDS[kindsel as usize], hotspot as usize),
                        },
                    }
                })
                .collect()
        },
    )
}

/// Replays one schedule through geo-partitioned recognizers at the given
/// band count, comparing the two strategies query by query.
fn run_banded_schedule(bands: usize, steps: &[Step]) -> Result<(), proptest::TestCaseError> {
    let w = WindowSpec::new(Duration::hours(2), Duration::minutes(30)).unwrap();
    let make = |strategy| {
        PartitionedRecognizer::with_strategy(
            GeoPartitioner::uniform(bands, 20.0, 28.0),
            &vessels(8),
            &areas(),
            2_000.0,
            SpatialMode::OnDemand,
            w,
            strategy,
        )
    };
    let mut full = make(EvalStrategy::FromScratch);
    let mut inc = make(EvalStrategy::Incremental);
    for step in steps {
        match step {
            Step::Event { at, ev } => {
                full.add_events([(t(*at), ev.clone())]);
                inc.add_events([(t(*at), ev.clone())]);
            }
            Step::Query { at } => {
                let a = canon(&full.recognize_and_summarize(t(*at)));
                let b = canon(&inc.recognize_and_summarize(t(*at)));
                prop_assert_eq!(a, b, "diverged at {} band(s), query t={}", bands, at);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_full_across_recognition_bands(steps in arb_schedule()) {
        for bands in [1usize, 2, 4] {
            run_banded_schedule(bands, &steps)?;
        }
    }
}
