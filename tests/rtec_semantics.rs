//! RTEC semantics checks: the engine against a naive reference model, the
//! delayed-event scenario of Figure 5, and window-cost independence.

use maritime_rtec::{
    Duration, Engine, EventDescription, FluentDef, Interval, Timestamp, Trigger, WindowSpec,
};

/// Toy events: set/unset a boolean fluent per machine id.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    On(u8),
    Off(u8),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Active(u8);

type Desc = EventDescription<(), Ev, Active, ()>;

fn description() -> Desc {
    EventDescription::new().fluent(
        FluentDef::new("active")
            .initiated(|_, _, trig: Trigger<'_, Ev, Active>, _| match trig.input() {
                Some(Ev::On(id)) => vec![Active(*id)],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Active>, _| match trig.input() {
                Some(Ev::Off(id)) => vec![Active(*id)],
                _ => vec![],
            }),
    )
}

/// Naive reference: holdsAt(T) by the Event Calculus definition — an
/// initiation at Ts < T with no break in (Ts, T].
fn reference_holds_at(events: &[(i64, Ev)], id: u8, t: i64) -> bool {
    let mut initiated: Option<i64> = None;
    for (et, ev) in events {
        match ev {
            Ev::On(i) if *i == id && *et < t
                && initiated.is_none_or(|prev| *et > prev) => {
                    initiated = Some(*et);
                }
            _ => {}
        }
    }
    let Some(ts) = initiated else { return false };
    // The maximal interval is (Ts, Tf]: the fluent still holds AT its
    // termination point (paper: "F=V holds at all T such that 10 < T ≤ 25"
    // when terminated at 25), so only terminations strictly before T break.
    !events.iter().any(|(et, ev)| {
        matches!(ev, Ev::Off(i) if *i == id) && *et > ts && *et < t
    })
}

/// Deterministic pseudo-random sequence without external crates.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn engine_matches_reference_model_on_random_sequences() {
    let mut seed = 0x9E3779B97F4A7C15u64;
    for round in 0..25 {
        // Generate a random event sequence for 3 machine ids.
        let mut events: Vec<(i64, Ev)> = Vec::new();
        let len = 10 + (xorshift(&mut seed) % 40) as usize;
        for _ in 0..len {
            let t = (xorshift(&mut seed) % 1_000) as i64;
            let id = (xorshift(&mut seed) % 3) as u8;
            let ev = if xorshift(&mut seed).is_multiple_of(2) { Ev::On(id) } else { Ev::Off(id) };
            events.push((t, ev));
        }
        // Sort (the reference assumes nothing, the engine sorts anyway,
        // but identical chronology keeps same-timestamp semantics aligned).
        events.sort_by_key(|(t, _)| *t);
        // Drop duplicate (t, id) collisions where On and Off of the same
        // id share a timestamp: initiation/termination at the same point
        // is order-sensitive in the naive model.
        let mut filtered: Vec<(i64, Ev)> = Vec::new();
        for (t, ev) in events {
            let id = match &ev { Ev::On(i) | Ev::Off(i) => *i };
            if filtered.iter().any(|(ft, fe)| {
                *ft == t && matches!(fe, Ev::On(i) | Ev::Off(i) if *i == id)
            }) {
                continue;
            }
            filtered.push((t, ev));
        }

        let spec = WindowSpec::new(Duration::secs(10_000), Duration::secs(100)).unwrap();
        let mut engine = Engine::new((), description(), spec);
        engine.add_events(
            filtered
                .iter()
                .map(|(t, e)| (Timestamp(*t), e.clone())),
        );
        let r = engine.recognize_at(Timestamp(2_000));

        for id in 0..3u8 {
            for probe in [0i64, 1, 50, 123, 500, 999, 1_000, 1_500] {
                let engine_says = r
                    .fluents
                    .get(&Active(id))
                    .is_some_and(|il| il.holds_at(Timestamp(probe)));
                let reference_says = reference_holds_at(&filtered, id, probe);
                assert_eq!(
                    engine_says, reference_says,
                    "round {round}, id {id}, t {probe}, events {filtered:?}"
                );
            }
        }
    }
}

#[test]
fn figure5_delayed_events_are_used_at_the_next_query() {
    // The Figure 5 scenario: window range ω larger than slide β; events
    // occurring before Q_{i-1} but arriving after it are not lost — they
    // are considered at Q_i.
    let spec = WindowSpec::new(Duration::secs(300), Duration::secs(100)).unwrap();
    let mut engine = Engine::new((), description(), spec);

    engine.add_event(Timestamp(50), Ev::On(1));
    let r1 = engine.recognize_at(Timestamp(100));
    assert_eq!(
        r1.fluents[&Active(1)].intervals(),
        &[Interval::open(Timestamp(50))]
    );

    // The Off at t=80 was delayed: it happened before Q1=100 but arrives
    // after. At Q2=200 it must retroactively close the interval.
    engine.add_event(Timestamp(80), Ev::Off(1));
    let r2 = engine.recognize_at(Timestamp(200));
    assert_eq!(
        r2.fluents[&Active(1)].intervals(),
        &[Interval::closed(Timestamp(50), Timestamp(80))]
    );
}

#[test]
fn events_older_than_the_window_are_lost_by_design() {
    // "Any MEs arriving between Q_{i-1} and Q_i are discarded at Q_i if
    // they took place before or at Q_i − ω."
    let spec = WindowSpec::new(Duration::secs(100), Duration::secs(100)).unwrap();
    let mut engine = Engine::new((), description(), spec);
    engine.add_event(Timestamp(10), Ev::On(1));
    // First query: event is within (−90, 100], recognized.
    let r1 = engine.recognize_at(Timestamp(100));
    assert!(r1.fluents.contains_key(&Active(1)));
    // Second query at 250: the event (t=10 ≤ 150) has expired; the fluent
    // is forgotten even though no Off ever arrived.
    let r2 = engine.recognize_at(Timestamp(250));
    assert!(!r2.fluents.contains_key(&Active(1)));
}

#[test]
fn recognition_cost_depends_on_window_not_history() {
    // Feed a long history but a short window: working memory stays
    // bounded by the window contents.
    let spec = WindowSpec::new(Duration::secs(500), Duration::secs(500)).unwrap();
    let mut engine = Engine::new((), description(), spec);
    for i in 0..10_000i64 {
        engine.add_event(Timestamp(i), if i % 2 == 0 { Ev::On(1) } else { Ev::Off(1) });
        // Periodic queries keep the buffer trimmed.
        if i % 500 == 499 {
            let r = engine.recognize_at(Timestamp(i));
            assert!(
                r.working_memory <= 501,
                "working memory {} exceeds window at t={i}",
                r.working_memory
            );
        }
    }
}

#[test]
fn interval_list_algebra_sanity_via_engine_output() {
    let spec = WindowSpec::new(Duration::secs(10_000), Duration::secs(100)).unwrap();
    let mut engine = Engine::new((), description(), spec);
    engine.add_events([
        (Timestamp(10), Ev::On(1)),
        (Timestamp(20), Ev::Off(1)),
        (Timestamp(30), Ev::On(1)),
        (Timestamp(40), Ev::Off(1)),
        (Timestamp(15), Ev::On(2)),
        (Timestamp(35), Ev::Off(2)),
    ]);
    let r = engine.recognize_at(Timestamp(100));
    let a = &r.fluents[&Active(1)];
    let b = &r.fluents[&Active(2)];
    // Intersection: (15,20] and (30,35].
    let both = a.intersect(b);
    assert_eq!(
        both.intervals(),
        &[
            Interval::closed(Timestamp(15), Timestamp(20)),
            Interval::closed(Timestamp(30), Timestamp(35)),
        ]
    );
    // Union ∪ complement covers the window span.
    let union = a.union(b);
    let comp = union.complement(Timestamp(0), Timestamp(100));
    let cover = union.union(&comp);
    assert_eq!(cover.intervals().len(), 1);
    assert_eq!(cover.intervals()[0].since, Timestamp(0));
    assert_eq!(cover.intervals()[0].until, Some(Timestamp(100)));
}
