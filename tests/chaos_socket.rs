//! Socket-level chaos: transport faults (mid-sentence cuts, half-open
//! sources, reconnect storms, cross-source reorder) over a multi-source
//! stream, judged by the same metamorphic oracles as the sentence-level
//! chaos suite (`ISSUE` 8: socket chaos mode).
//!
//! The world is the default chaos fleet observed through 3 sockets
//! (vessels distributed round-robin), and the runner is
//! [`ChaosHarness::run_sourced`] — the exact `surveil serve` data path:
//! per-source filter/dedup, admission over `(line, connection)` pairs,
//! per-connection defragmenter keying.

use std::sync::OnceLock;

use maritime::chaos::{ChaosEngine, ChaosHarness};
use maritime_cer::VesselInfo;
use maritime_chaos::oracle::check_identical;
use maritime_chaos::socket::{SocketOp, SocketPlan, SourcedLine};

const N_SOURCES: u32 = 3;

fn harness() -> ChaosHarness {
    ChaosHarness::default()
}

/// The sourced baseline world: lines tagged with sources, the fleet, and
/// each source's set of MMSIs.
type SourcedWorld = (
    Vec<SourcedLine>,
    Vec<VesselInfo>,
    Vec<std::collections::BTreeSet<u32>>,
);

fn sourced_world() -> &'static SourcedWorld {
    static WORLD: OnceLock<SourcedWorld> = OnceLock::new();
    WORLD.get_or_init(|| harness().sourced_baseline(N_SOURCES))
}

/// The identity at the bottom of every socket oracle: the same world
/// observed through 3 clean sockets recognizes exactly what the
/// single-source batch runner recognizes.
#[test]
fn clean_sourced_run_matches_plain_run() {
    let h = harness();
    let (sourced, vessels, _) = sourced_world();
    let (plain, plain_vessels) = h.baseline();
    assert_eq!(vessels, &plain_vessels, "same fleet facts");
    let base = h.run(&plain, vessels, ChaosEngine::Serial);
    let got = h.run_sourced(sourced, vessels, ChaosEngine::Serial);
    check_identical("sourced-identity", &base.observation, &got.observation)
        .expect("clean sourced run must equal the plain run");
    assert!(
        base.observation.ce_total > 0,
        "the socket world must recognize nontrivially or every oracle below is vacuous"
    );
}

/// CE-preserving socket plans — reconnect storms (pure clean-boundary
/// duplication, absorbed by per-source dedup) plus bounded reorders —
/// must be invisible: equivalence, projection (vacuously), and
/// cross-engine agreement all green.
#[test]
fn reconnect_storms_are_invisible_to_recognition() {
    let h = harness();
    for seed in 0..3u64 {
        let plan = SocketPlan::storm(seed, N_SOURCES, h.admission_skew_secs);
        assert!(plan.preserves_ces(h.admission_skew_secs), "storm generator contract");
        let (sourced, _, _) = sourced_world();
        let (_, stats) = plan.apply(sourced);
        assert!(stats.cuts > 0, "plan {seed} must actually cut: {plan:?}");
        h.check_socket_plan(&plan, N_SOURCES)
            .unwrap_or_else(|v| panic!("storm plan {seed} violated an oracle: {v}"));
    }
}

/// Hostile plans (cuts, half-opens, storms, reorders mixed) may lose
/// sentences — but all four engines must degrade *identically* through
/// the damage.
#[test]
fn engines_agree_under_hostile_socket_faults() {
    let h = harness();
    for seed in [7u64, 23] {
        let plan = SocketPlan::hostile(seed, N_SOURCES);
        h.check_socket_plan(&plan, N_SOURCES)
            .unwrap_or_else(|v| panic!("hostile plan {seed} violated an oracle: {v}"));
    }
}

/// A source that is half-open from its first line silences exactly its
/// own vessels: their CEs may disappear, every other vessel's CEs are
/// byte-identical, and nothing new appears (the vessel-projection
/// oracle, driven by the known per-source MMSI sets).
#[test]
fn dead_source_only_loses_its_own_vessels() {
    let h = harness();
    let plan = SocketPlan::new(
        0xDEAD,
        vec![SocketOp::HalfOpen { source: 2, at_per_mille: 0 }],
    );
    assert_eq!(plan.silenced_sources(), vec![2]);
    let (_, _, mmsis) = sourced_world();
    assert!(!mmsis[1].is_empty(), "source 2 must carry vessels");
    h.check_socket_plan(&plan, N_SOURCES)
        .unwrap_or_else(|v| panic!("dead-source plan violated an oracle: {v}"));
}

/// A mid-sentence cut loses at most the one in-flight sentence and
/// resets the source's defragmenter; recognition survives and the
/// engines still agree. (Byte-equivalence is *not* claimed — one
/// sentence is genuinely gone.)
#[test]
fn mid_sentence_cut_degrades_gracefully() {
    let h = harness();
    let plan = SocketPlan::new(
        0xC07,
        vec![
            SocketOp::CutMidSentence { source: 1, at_per_mille: 300 },
            SocketOp::CutMidSentence { source: 3, at_per_mille: 700 },
        ],
    );
    let (sourced, vessels, _) = sourced_world();
    let (perturbed, stats) = plan.apply(sourced);
    assert_eq!(stats.truncated, 2);
    let got = h.run_sourced(&perturbed, vessels, ChaosEngine::Serial);
    assert!(got.observation.ce_total > 0, "recognition must survive the cuts");
    h.check_socket_plan(&plan, N_SOURCES)
        .unwrap_or_else(|v| panic!("cut plan violated an oracle: {v}"));
}

/// Socket plans replay bit-exact from their JSON artifact, like sentence
/// plans — the CI-replay contract.
#[test]
fn socket_plans_replay_from_json() {
    let plan = SocketPlan::hostile(99, N_SOURCES);
    let replayed = SocketPlan::from_json(&plan.to_json()).expect("round-trip");
    assert_eq!(replayed, plan);
    let (sourced, _, _) = sourced_world();
    assert_eq!(plan.apply(sourced), replayed.apply(sourced));
}
