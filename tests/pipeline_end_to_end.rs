//! End-to-end pipeline tests: raw synthetic AIS stream in, alerts and
//! archived trips out, with conservation and determinism invariants.

use maritime::prelude::*;

fn fleet(seed: u64, vessels: usize, hours: i64) -> FleetSimulator {
    FleetSimulator::new(FleetConfig {
        seed,
        vessels,
        duration: Duration::hours(hours),
        ..FleetConfig::default()
    })
}

fn run(sim: &FleetSimulator, config: &SurveillanceConfig) -> (RunReport, Vec<String>) {
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let mut pipeline = SurveillancePipeline::new(config, vessels, areas).unwrap();
    let report = pipeline.run(sim.generate().into_iter().map(PositionTuple::from));
    let alerts = pipeline
        .alerts()
        .records()
        .iter()
        .map(maritime::AlertRecord::render)
        .collect();
    (report, alerts)
}

#[test]
fn full_run_conserves_critical_points() {
    let sim = fleet(11, 25, 12);
    let (report, _) = run(&sim, &SurveillanceConfig::default());
    // Every critical point ends up either in a reconstructed trip or in
    // the staging area — nothing is silently dropped.
    let accounted = report.archive.points_in_trajectories + report.archive.points_in_staging;
    assert_eq!(accounted as u64, report.critical_points);
    assert!(report.raw_positions > 10_000);
    assert!(report.compression_ratio > 0.8, "{}", report.compression_ratio);
}

#[test]
fn two_runs_are_bit_identical() {
    let sim = fleet(12, 15, 8);
    let (r1, a1) = run(&sim, &SurveillanceConfig::default());
    let (r2, a2) = run(&sim, &SurveillanceConfig::default());
    assert_eq!(r1.raw_positions, r2.raw_positions);
    assert_eq!(r1.critical_points, r2.critical_points);
    assert_eq!(r1.ce_total, r2.ce_total);
    assert_eq!(a1, a2);
    assert_eq!(r1.archive.trips, r2.archive.trips);
}

#[test]
fn rogue_heavy_fleet_raises_complex_events() {
    // Force every vessel rogue: deliberate mid-leg gaps plus fishing
    // loitering over 24 hours must produce at least one recognized CE or
    // alert somewhere near the 35 synthetic areas.
    let sim = FleetSimulator::new(FleetConfig {
        seed: 13,
        vessels: 40,
        duration: Duration::hours(24),
        rogue_fraction: 1.0,
        ..FleetConfig::default()
    });
    let (report, _) = run(&sim, &SurveillanceConfig::default());
    assert!(
        report.ce_total > 0 || report.alerts > 0,
        "no complex events from a rogue-heavy day: {report:?}"
    );
}

#[test]
fn tighter_tracker_produces_more_recognizer_input() {
    let sim = fleet(14, 15, 8);
    let tight = SurveillanceConfig {
        tracker: TrackerParams::with_turn_threshold(5.0),
        ..SurveillanceConfig::default()
    };
    let loose = SurveillanceConfig {
        tracker: TrackerParams::with_turn_threshold(20.0),
        ..SurveillanceConfig::default()
    };
    let (rt, _) = run(&sim, &tight);
    let (rl, _) = run(&sim, &loose);
    assert!(
        rt.critical_points > rl.critical_points,
        "Δθ=5° {} <= Δθ=20° {}",
        rt.critical_points,
        rl.critical_points
    );
}

#[test]
fn windows_of_different_scale_process_same_stream() {
    // Same stream, different window specs: totals that do not depend on
    // windowing (raw count, compression) must agree.
    let sim = fleet(15, 10, 8);
    let small = SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::hours(1), Duration::minutes(10)).unwrap(),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::hours(1)).unwrap(),
        ..SurveillanceConfig::default()
    };
    let large = SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap(),
        recognition_window: WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap(),
        ..SurveillanceConfig::default()
    };
    let (rs, _) = run(&sim, &small);
    let (rl, _) = run(&sim, &large);
    assert_eq!(rs.raw_positions, rl.raw_positions);
    assert_eq!(rs.critical_points, rl.critical_points);
    assert!(rs.slides > rl.slides);
}

#[test]
fn nmea_roundtrip_feeds_pipeline_equivalently() {
    // Encoding the fleet stream as NMEA sentences and scanning it back
    // must yield the same surveillance outcome (modulo the sub-meter wire
    // quantization, which does not change event detection).
    use maritime_ais::replay::roundtrip_nmea;
    let sim = fleet(16, 8, 6);
    let reports = sim.generate();
    let (tuples, scanner) = roundtrip_nmea(&reports, 0.0, 0);
    assert_eq!(scanner.stats().accepted as usize, reports.len());

    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let config = SurveillanceConfig::default();

    let mut direct = SurveillancePipeline::new(&config, vessels.clone(), areas.clone()).unwrap();
    let rd = direct.run(reports.iter().map(|r| PositionTuple::from(*r)));

    let mut scanned = SurveillancePipeline::new(&config, vessels, areas).unwrap();
    let rs = scanned.run(tuples);

    assert_eq!(rd.raw_positions, rs.raw_positions);
    // Wire quantization moves positions < 0.2 m; critical point counts
    // should be identical or within a hair.
    let diff = rd.critical_points.abs_diff(rs.critical_points);
    assert!(
        diff <= rd.critical_points / 100 + 2,
        "direct {} vs scanned {}",
        rd.critical_points,
        rs.critical_points
    );
}
