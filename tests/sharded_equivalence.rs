//! Differential harness: the sharded tracker must be observationally
//! indistinguishable from the serial tracker.
//!
//! One deterministic fleet (50 vessels over 24 hours, fixed seed) is run
//! through the serial [`WindowedTracker`] and through [`ShardedTracker`]
//! at 1, 2, and 4 shards. After [`canonical_order`] the critical-point
//! stream, the eviction stream, and the end-to-end pipeline alert log
//! must be *byte identical* under JSON serialization — not merely equal
//! counts. Any divergence in routing, merge order, window advancement,
//! or gap sweeping shows up here as a serialized diff.

use maritime::prelude::*;
use maritime_ais::replay::to_tuple_stream;
use maritime_tracker::TrackerParams;

fn fleet() -> FleetSimulator {
    FleetSimulator::new(FleetConfig {
        vessels: 50,
        duration: Duration::hours(24),
        ..FleetConfig::tiny(0x5EED_CAFE)
    })
}

fn window() -> WindowSpec {
    WindowSpec::new(Duration::hours(1), Duration::minutes(30)).unwrap()
}

/// Serialized per-slide traces of one tracking run: the canonical fresh
/// critical points, the canonical evicted deltas, and the finish flush.
struct Trace {
    fresh: String,
    evicted: String,
    residual: String,
}

fn serial_trace(stream: &[(Timestamp, PositionTuple)]) -> Trace {
    let w = window();
    let mut tracker = WindowedTracker::new(TrackerParams::default(), w);
    let mut fresh = Vec::new();
    let mut evicted = Vec::new();
    for batch in SlideBatches::new(stream.iter().copied(), w, Timestamp::ZERO) {
        let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
        let report = tracker.slide(batch.query_time, &tuples);
        let mut f = report.fresh_critical;
        canonical_order(&mut f);
        fresh.extend(f);
        let mut e = report.evicted_delta;
        canonical_order(&mut e);
        evicted.extend(e);
    }
    let (mut last, mut residual) = tracker.finish();
    canonical_order(&mut last);
    canonical_order(&mut residual);
    fresh.extend(last);
    Trace {
        fresh: serde_json::to_string(&fresh).unwrap(),
        evicted: serde_json::to_string(&evicted).unwrap(),
        residual: serde_json::to_string(&residual).unwrap(),
    }
}

fn sharded_trace(stream: &[(Timestamp, PositionTuple)], shards: usize) -> Trace {
    let w = window();
    let mut tracker = ShardedTracker::new(TrackerParams::default(), w, shards);
    let mut fresh = Vec::new();
    let mut evicted = Vec::new();
    for batch in SlideBatches::new(stream.iter().copied(), w, Timestamp::ZERO) {
        let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
        let report = tracker.slide(batch.query_time, &tuples);
        fresh.extend(report.merged.fresh_critical);
        evicted.extend(report.merged.evicted_delta);
    }
    let (last, residual) = tracker.finish();
    fresh.extend(last);
    Trace {
        fresh: serde_json::to_string(&fresh).unwrap(),
        evicted: serde_json::to_string(&evicted).unwrap(),
        residual: serde_json::to_string(&residual).unwrap(),
    }
}

#[test]
fn sharded_critical_streams_are_byte_identical_to_serial() {
    let stream = to_tuple_stream(&fleet().generate());
    assert!(stream.len() > 50_000, "fleet too small to exercise sharding");
    let serial = serial_trace(&stream);
    for shards in [1, 2, 4] {
        let sharded = sharded_trace(&stream, shards);
        assert_eq!(
            serial.fresh, sharded.fresh,
            "critical-point stream diverged at {shards} shard(s)"
        );
        assert_eq!(
            serial.evicted, sharded.evicted,
            "eviction stream diverged at {shards} shard(s)"
        );
        assert_eq!(
            serial.residual, sharded.residual,
            "finish residue diverged at {shards} shard(s)"
        );
    }
}

#[test]
fn sharded_pipeline_alert_log_matches_serial() {
    let sim = fleet();
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let stream: Vec<PositionTuple> = sim.generate().iter().map(|r| (*r).into()).collect();

    let run = |shards: usize| {
        let config = SurveillanceConfig {
            parallelism: Parallelism {
                tracker_shards: shards,
                recognition_bands: 1,
            },
            ..SurveillanceConfig::default()
        };
        let mut pipeline =
            SurveillancePipeline::new(&config, vessels.clone(), areas.clone()).unwrap();
        let report = pipeline.run(stream.iter().copied());
        let log: Vec<String> = pipeline
            .alerts()
            .records()
            .iter()
            .map(AlertRecord::render)
            .collect();
        (report.critical_points, report.ce_total, log)
    };

    let (serial_cps, serial_ces, serial_log) = run(1);
    for shards in [2, 4] {
        let (cps, ces, log) = run(shards);
        assert_eq!(serial_cps, cps, "critical count diverged at {shards} shard(s)");
        assert_eq!(serial_ces, ces, "CE count diverged at {shards} shard(s)");
        assert_eq!(serial_log, log, "alert log diverged at {shards} shard(s)");
    }
}

#[test]
fn shard_assignment_partitions_the_fleet() {
    // Every simulated vessel maps to exactly one shard, and with 4 shards
    // a 50-vessel fleet should not degenerate onto a single worker.
    let sim = fleet();
    let tracker = ShardedTracker::new(TrackerParams::default(), window(), 4);
    let mut per_shard = [0usize; 4];
    for profile in sim.profiles() {
        per_shard[tracker.shard_of(profile.mmsi)] += 1;
    }
    assert_eq!(per_shard.iter().sum::<usize>(), sim.profiles().len());
    let occupied = per_shard.iter().filter(|&&n| n > 0).count();
    assert!(occupied >= 3, "hash collapsed the fleet: {per_shard:?}");
}
