//! Tracker → CER integration: scripted raw positions must flow through
//! the mobility tracker into exactly the complex events of §4.1.

use maritime::prelude::*;
use maritime_cer::recognizer::summarize;
use maritime_geo::destination;

/// Fixes along a straight leg at constant speed.
fn leg(
    from: GeoPoint,
    bearing: f64,
    knots: f64,
    step_secs: i64,
    n: usize,
    t0: Timestamp,
) -> Vec<(GeoPoint, Timestamp)> {
    let step_m = maritime_geo::knots_to_mps(knots) * step_secs as f64;
    (0..n)
        .map(|i| {
            (
                destination(from, bearing, step_m * i as f64),
                t0 + Duration::secs(step_secs * i as i64),
            )
        })
        .collect()
}

/// Anchored wobble around a point.
fn anchored(center: GeoPoint, n: usize, step_secs: i64, t0: Timestamp) -> Vec<(GeoPoint, Timestamp)> {
    (0..n)
        .map(|i| {
            (
                destination(center, (i * 73 % 360) as f64, 12.0),
                t0 + Duration::secs(step_secs * i as i64),
            )
        })
        .collect()
}

fn watch_area(center: GeoPoint) -> Vec<Area> {
    vec![Area::new(
        AreaId(0),
        "watch",
        AreaKind::Watch,
        Polygon::circle(center, 5_000.0, 16),
    )]
}

fn recognizer_for(areas: Vec<Area>, fishing: &[u32]) -> MaritimeRecognizer {
    let vessels: Vec<VesselInfo> = (1..=8)
        .map(|i| VesselInfo {
            mmsi: Mmsi(i),
            draft_m: 5.0,
            is_fishing: fishing.contains(&i),
        })
        .collect();
    let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
    MaritimeRecognizer::new(Knowledge::standard(vessels, areas), spec)
}

#[test]
fn four_anchored_vessels_raise_suspicious_via_tracker() {
    let rendezvous = GeoPoint::new(24.5, 38.5);
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut recognizer = recognizer_for(watch_area(rendezvous), &[]);

    // Four vessels converge and anchor inside the watch area; a fifth just
    // sails by at speed.
    let mut all: Vec<PositionTuple> = Vec::new();
    for v in 1u32..=4 {
        let spot = destination(rendezvous, f64::from(v) * 40.0, 400.0);
        let approach = leg(
            destination(spot, 270.0, 8_000.0),
            90.0,
            10.0,
            30,
            54,
            Timestamp(i64::from(v) * 60),
        );
        let linger_start = approach.last().unwrap().1 + Duration::secs(60);
        let linger = anchored(spot, 20, 120, linger_start);
        for (p, t) in approach.into_iter().chain(linger) {
            all.push(PositionTuple { mmsi: Mmsi(v), position: p, timestamp: t });
        }
    }
    let passerby = leg(
        destination(rendezvous, 180.0, 3_000.0),
        0.0,
        14.0,
        30,
        120,
        Timestamp(0),
    );
    for (p, t) in passerby {
        all.push(PositionTuple { mmsi: Mmsi(5), position: p, timestamp: t });
    }
    all.sort_by_key(|t| t.timestamp);

    let mut critical = tracker.process_batch(all.iter());
    critical.extend(tracker.finish());
    recognizer.add_critical_points(&critical);

    let summary = summarize(&recognizer.recognize_at(Timestamp(6 * 3_600)));
    assert_eq!(summary.suspicious.len(), 1, "{:?}", summary.suspicious);
    assert_eq!(summary.suspicious[0].0, AreaId(0));
    let il = &summary.suspicious[0].1;
    assert_eq!(il.intervals().len(), 1);
    // Suspicion starts once the 4th vessel's long-term stop is confirmed.
    assert!(il.intervals()[0].since > Timestamp(1_000));
}

#[test]
fn three_vessels_are_not_enough() {
    let rendezvous = GeoPoint::new(24.5, 38.5);
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut recognizer = recognizer_for(watch_area(rendezvous), &[]);
    let mut all: Vec<PositionTuple> = Vec::new();
    for v in 1u32..=3 {
        let spot = destination(rendezvous, f64::from(v) * 60.0, 300.0);
        for (p, t) in anchored(spot, 25, 120, Timestamp(i64::from(v) * 60)) {
            all.push(PositionTuple { mmsi: Mmsi(v), position: p, timestamp: t });
        }
    }
    all.sort_by_key(|t| t.timestamp);
    let mut critical = tracker.process_batch(all.iter());
    critical.extend(tracker.finish());
    recognizer.add_critical_points(&critical);
    let summary = summarize(&recognizer.recognize_at(Timestamp(6 * 3_600)));
    assert!(summary.suspicious.is_empty(), "{:?}", summary.suspicious);
}

#[test]
fn trawler_slow_motion_becomes_illegal_fishing() {
    let bank = GeoPoint::new(25.3, 37.8);
    let areas = vec![Area::new(
        AreaId(0),
        "closed bank",
        AreaKind::ForbiddenFishing,
        Polygon::circle(bank, 6_000.0, 16),
    )];
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut recognizer = recognizer_for(areas, &[2]);

    // Vessel 2 (fishing) trawls across the bank at 2.5 knots; vessel 3
    // (not fishing) does the same.
    let mut all: Vec<PositionTuple> = Vec::new();
    for v in [2u32, 3] {
        let start = destination(bank, 250.0, 4_000.0 + f64::from(v) * 200.0);
        let crawl = leg(start, 70.0, 2.5, 60, 40, Timestamp(i64::from(v)));
        for (p, t) in crawl {
            all.push(PositionTuple { mmsi: Mmsi(v), position: p, timestamp: t });
        }
    }
    all.sort_by_key(|t| t.timestamp);
    let mut critical = tracker.process_batch(all.iter());
    critical.extend(tracker.finish());
    recognizer.add_critical_points(&critical);

    let summary = summarize(&recognizer.recognize_at(Timestamp(6 * 3_600)));
    assert_eq!(summary.illegal_fishing.len(), 1);
    assert_eq!(summary.illegal_fishing[0].0, AreaId(0));
}

#[test]
fn gap_in_protected_area_becomes_illegal_shipping_alert() {
    let park = GeoPoint::new(23.9, 39.2);
    let areas = vec![Area::new(
        AreaId(0),
        "park",
        AreaKind::Protected,
        Polygon::circle(park, 10_000.0, 16),
    )];
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut recognizer = recognizer_for(areas, &[]);

    // Sail into the park, vanish for 30 minutes, reappear beyond it.
    let approach = leg(destination(park, 200.0, 15_000.0), 20.0, 12.0, 30, 40, Timestamp(0));
    let dark = *approach.last().unwrap();
    let reappear = destination(dark.0, 20.0, 11_000.0);
    let mut fixes = approach;
    fixes.extend(leg(reappear, 20.0, 12.0, 30, 20, dark.1 + Duration::minutes(30)));
    let all: Vec<PositionTuple> = fixes
        .into_iter()
        .map(|(p, t)| PositionTuple { mmsi: Mmsi(1), position: p, timestamp: t })
        .collect();

    let mut critical = tracker.process_batch(all.iter());
    critical.extend(tracker.finish());
    recognizer.add_critical_points(&critical);

    let summary = summarize(&recognizer.recognize_at(Timestamp(6 * 3_600)));
    let shipping: Vec<_> = summary
        .alerts
        .iter()
        .filter(|(_, a)| a.kind == AlertKind::IllegalShipping)
        .collect();
    assert_eq!(shipping.len(), 1, "{:?}", summary.alerts);
    assert_eq!(shipping[0].1.vessel, Mmsi(1));
    // The alert is timestamped at the gap start (last position heard).
    assert!(shipping[0].0 < Timestamp(40 * 30 + 60));
}

#[test]
fn compression_does_not_lose_the_events_cer_needs() {
    // The same scenario recognized from raw positions (hypothetically
    // uncompressed input) is impossible — CER consumes MEs by design. This
    // test pins the *sufficiency* of critical points: a scenario with
    // stop, slow-motion and gap phases yields all three ME families.
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let base = GeoPoint::new(24.0, 38.0);
    let mut fixes = leg(base, 90.0, 12.0, 30, 30, Timestamp(0));
    // Slow phase.
    let s = *fixes.last().unwrap();
    fixes.extend(leg(s.0, 90.0, 2.0, 60, 15, s.1).into_iter().skip(1));
    // Stop phase.
    let s = *fixes.last().unwrap();
    fixes.extend(anchored(s.0, 15, 60, s.1 + Duration::secs(60)));
    // Gap, then resume.
    let s = *fixes.last().unwrap();
    fixes.extend(leg(
        destination(s.0, 90.0, 9_000.0),
        90.0,
        12.0,
        30,
        10,
        s.1 + Duration::minutes(40),
    ));
    let all: Vec<PositionTuple> = fixes
        .into_iter()
        .map(|(p, t)| PositionTuple { mmsi: Mmsi(1), position: p, timestamp: t })
        .collect();
    let mut critical = tracker.process_batch(all.iter());
    critical.extend(tracker.finish());

    let kinds: std::collections::HashSet<&'static str> =
        critical.iter().map(|c| c.annotation.label()).collect();
    for needed in ["slow_motion_start", "stop_start", "stop_end", "gap_start", "gap_end"] {
        assert!(kinds.contains(needed), "missing {needed}: {kinds:?}");
    }
    // And compression is still strong on this event-dense trace.
    let ratio = 1.0 - critical.len() as f64 / all.len() as f64;
    assert!(ratio > 0.75, "ratio {ratio}");
}
