//! Late-arrival fallback coverage: injected late events must drive the
//! incremental recognizer down its full-recompute path (the correctness
//! escape hatch for `t ≤ checkpoint` arrivals), observable through
//! [`maritime::SurveillancePipeline::incremental_stats`]. A calm fleet is
//! used deliberately: the default rogue fleet's backdated gap events
//! already force recomputes and would mask the injected effect.

use maritime::chaos::{ChaosEngine, ChaosHarness};
use maritime_chaos::{calm_sentences, ChaosOp, ChaosPlan};

fn late_plan() -> ChaosPlan {
    ChaosPlan {
        seed: 0x1A7E,
        // 40-minute delays: past the 2-minute admission skew (so the
        // buffer must release them late rather than repair them) and past
        // the 30-minute recognition slide (so they land at or before a
        // checkpoint and void it).
        ops: vec![ChaosOp::LateArrival { per_mille: 150, delay_secs: 2_400 }],
    }
}

fn fallback_counts(bands: usize) -> (u64, u64) {
    let h = ChaosHarness { recognition_bands: bands, ..ChaosHarness::default() };
    let (lines, vessels) = calm_sentences(h.seed, h.vessels, h.hours);
    let clean = h.run(&lines, &vessels, ChaosEngine::Incremental);
    let (perturbed, stats) = late_plan().apply(&lines);
    assert!(stats.delayed > 0, "plan delayed nothing — vacuous");
    let late = h.run(&perturbed, &vessels, ChaosEngine::Incremental);
    assert!(
        late.admission.late > 0,
        "no arrival was strictly late at admission — the fault never \
         reached the layer under test"
    );
    // Sanity: every query is answered exactly once per band, by one path
    // or the other.
    let clean_total = clean.incremental.incremental + clean.incremental.full;
    let late_total = late.incremental.incremental + late.incremental.full;
    assert_eq!(clean_total, late_total, "query count changed under lateness");
    (clean.incremental.full as u64, late.incremental.full as u64)
}

#[test]
fn late_arrivals_force_full_recomputes_single_band() {
    let (clean_full, late_full) = fallback_counts(1);
    assert!(
        late_full > clean_full,
        "late arrivals did not increase full recomputes: {clean_full} -> {late_full}"
    );
}

#[test]
fn late_arrivals_force_full_recomputes_per_band() {
    // With two longitude bands the fallback is accounted per band; the
    // partitioned sum must still grow under injected lateness.
    let (clean_full, late_full) = fallback_counts(2);
    assert!(
        late_full > clean_full,
        "late arrivals did not increase per-band full recomputes: \
         {clean_full} -> {late_full}"
    );
}
