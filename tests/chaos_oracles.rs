//! Metamorphic oracle suite: 20 fixed-seed chaos plans across the four
//! oracles and the four engine configurations (`ISSUE`: chaos harness
//! acceptance). Every plan here must pass forever — a failure means a
//! perturbation the pipeline is contractually required to absorb changed
//! recognition output, and `surveil chaos` will minimize it.

use std::sync::OnceLock;

use maritime::chaos::{ChaosEngine, ChaosHarness, EngineRun};
use maritime_cer::VesselInfo;
use maritime_chaos::oracle::{check_agreement, check_identical, check_vessel_projection};
use maritime_chaos::{CeObservation, ChaosPlan, StreamLine};

fn harness() -> ChaosHarness {
    ChaosHarness::default()
}

fn world() -> &'static (Vec<StreamLine>, Vec<VesselInfo>) {
    static WORLD: OnceLock<(Vec<StreamLine>, Vec<VesselInfo>)> = OnceLock::new();
    WORLD.get_or_init(|| harness().baseline())
}

fn baseline() -> &'static EngineRun {
    static BASE: OnceLock<EngineRun> = OnceLock::new();
    BASE.get_or_init(|| {
        let (lines, vessels) = world();
        harness().run(lines, vessels, ChaosEngine::Serial)
    })
}

#[test]
fn baseline_world_recognizes_nontrivially() {
    // Every oracle below is vacuous if the clean stream recognizes
    // nothing; pin that it recognizes both alerts and durative CEs.
    let base = &baseline().observation;
    assert!(base.ce_total > 0, "no complex events in the chaos world");
    assert!(!base.alerts.is_empty(), "no instantaneous alerts");
    let durative: usize = base
        .queries
        .iter()
        .map(|q| q.suspicious.len() + q.illegal_fishing.len())
        .sum();
    assert!(durative > 0, "no durative CE intervals");
}

#[test]
fn equivalence_plans_are_invisible_to_recognition() {
    // Oracles 1 & 2 (duplicate-idempotence, bounded-reorder equivalence)
    // on ten fixed-seed CE-preserving plans.
    let h = harness();
    let (lines, vessels) = world();
    for seed in 0..10u64 {
        let plan = ChaosPlan::equivalence(seed, h.admission_skew_secs);
        assert!(
            plan.ops.iter().all(|op| op.preserves_ces(h.admission_skew_secs)),
            "equivalence generator produced a non-preserving op: {plan:?}"
        );
        let (perturbed, stats) = plan.apply(lines);
        assert!(
            stats.ops_applied > 0,
            "seed {seed}: plan did not touch the stream"
        );
        let got = h.run(&perturbed, vessels, ChaosEngine::Serial);
        if let Err(v) = check_identical(
            "stream-equivalence",
            &baseline().observation,
            &got.observation,
        ) {
            panic!("seed {seed}, plan {}: {v}", plan.to_json());
        }
    }
}

#[test]
fn engines_agree_on_hostile_plans() {
    // Oracle 4 on five fixed-seed hostile plans: drops, gaps, jitter,
    // corruption, late arrivals. Engines may produce different CEs than
    // the clean baseline — but never different CEs from each other.
    let h = harness();
    let (lines, vessels) = world();
    let mut damage = 0u64;
    for seed in 0..5u64 {
        let plan = ChaosPlan::hostile(seed);
        let (perturbed, stats) = plan.apply(lines);
        damage += stats.dropped + stats.duplicated + stats.corrupted + stats.delayed;
        let runs: Vec<(&'static str, CeObservation)> = ChaosEngine::ALL
            .iter()
            .map(|&e| (e.label(), h.run(&perturbed, vessels, e).observation))
            .collect();
        let labelled: Vec<(&'static str, &CeObservation)> =
            runs.iter().map(|(l, o)| (*l, o)).collect();
        if let Err(v) = check_agreement(&labelled) {
            panic!("seed {seed}, plan {}: {v}", plan.to_json());
        }
    }
    assert!(damage > 0, "hostile plans did no damage — test is vacuous");
}

#[test]
fn engines_agree_on_the_clean_stream() {
    let h = harness();
    let (lines, vessels) = world();
    let runs: Vec<(&'static str, CeObservation)> = ChaosEngine::ALL
        .iter()
        .map(|&e| (e.label(), h.run(lines, vessels, e).observation))
        .collect();
    let labelled: Vec<(&'static str, &CeObservation)> =
        runs.iter().map(|(l, o)| (*l, o)).collect();
    check_agreement(&labelled).expect("clean-stream agreement");
}

#[test]
fn silencing_vessels_never_creates_ce_evidence() {
    // Oracle 3 (gap-monotonicity) on five fixed-seed vessel-drop plans.
    let h = harness();
    let (lines, vessels) = world();
    let mut silenced_total = 0usize;
    for seed in 0..5u64 {
        let plan = ChaosPlan::vessel_drop(seed);
        let (thinned, stats) = plan.apply(lines);
        silenced_total += stats.dropped_vessels.len();
        let got = h.run(&thinned, vessels, ChaosEngine::Serial);
        if let Err(v) = check_vessel_projection(
            &baseline().observation,
            &got.observation,
            &stats.dropped_vessels,
        ) {
            panic!("seed {seed}, plan {}: {v}", plan.to_json());
        }
    }
    assert!(silenced_total > 0, "no vessel was ever silenced — vacuous");
}
