//! Golden-trace regression fixture for the trajectory detection component.
//!
//! `tests/golden/critical_points.json` is the committed critical-point
//! synopsis of one fixed-seed three-vessel voyage (6 hours), serialized
//! with bit-exact float roundtripping. Re-deriving the voyage must
//! reproduce the fixture byte for byte — this pins the mobility-event
//! thresholds of Table 3, the windowed eviction schedule, *and* the
//! JSON encoding, so any behavioural drift in the tracker fails loudly
//! instead of silently shifting downstream CE recognition.
//!
//! To regenerate after an intentional semantics change:
//!
//! ```text
//! cargo test -p maritime --test golden_trace -- --ignored regenerate
//! ```

use maritime::prelude::*;
use maritime_ais::replay::to_tuple_stream;
use maritime_tracker::TrackerParams;

const FIXTURE: &str = include_str!("golden/critical_points.json");

fn derive_trace() -> String {
    let sim = FleetSimulator::new(FleetConfig {
        vessels: 3,
        duration: Duration::hours(6),
        ..FleetConfig::tiny(0x601D)
    });
    let stream = to_tuple_stream(&sim.generate());
    let w = WindowSpec::new(Duration::hours(1), Duration::minutes(30)).unwrap();
    let mut tracker = WindowedTracker::new(TrackerParams::default(), w);
    let mut points = Vec::new();
    for batch in SlideBatches::new(stream.into_iter(), w, Timestamp::ZERO) {
        let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
        let mut fresh = tracker.slide(batch.query_time, &tuples).fresh_critical;
        canonical_order(&mut fresh);
        points.extend(fresh);
    }
    let (mut last, _) = tracker.finish();
    canonical_order(&mut last);
    points.extend(last);
    serde_json::to_string(&points).unwrap()
}

#[test]
fn fixed_seed_voyage_reproduces_golden_fixture() {
    let derived = derive_trace();
    assert!(
        !derived.is_empty() && derived != "[]",
        "golden voyage produced no critical points"
    );
    assert_eq!(
        derived,
        FIXTURE.trim_end(),
        "critical-point trace drifted from tests/golden/critical_points.json; \
         if the change is intentional, regenerate with \
         `cargo test -p maritime --test golden_trace -- --ignored regenerate`"
    );
}

#[test]
fn golden_fixture_deserializes_to_ordered_critical_points() {
    let points: Vec<CriticalPoint> = serde_json::from_str(FIXTURE.trim_end()).unwrap();
    assert!(points.len() > 10, "fixture suspiciously small");
    // The fixture is stored in canonical order; re-sorting is a no-op.
    let mut reordered = points.clone();
    canonical_order(&mut reordered);
    assert_eq!(points, reordered);
}

#[test]
#[ignore = "writes the fixture; run only to regenerate after intentional changes"]
fn regenerate() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/critical_points.json"
    );
    std::fs::write(path, derive_trace() + "\n").unwrap();
}
