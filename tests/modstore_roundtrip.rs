//! Archive round-trips: pipeline output into the MOD substrate, offline
//! analytics out, plus serialization round-trips of the archive records.

use maritime::prelude::*;
use maritime_modstore::query::{nearest_trip, range_query, synchronized_distance_m};

fn archived_pipeline(seed: u64) -> SurveillancePipeline {
    let sim = FleetSimulator::new(FleetConfig {
        seed,
        vessels: 20,
        duration: Duration::hours(24),
        ..FleetConfig::default()
    });
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let mut pipeline =
        SurveillancePipeline::new(&SurveillanceConfig::default(), vessels, areas).unwrap();
    pipeline.run(sim.generate().into_iter().map(PositionTuple::from));
    pipeline
}

#[test]
fn archive_accumulates_trips_with_port_semantics() {
    let pipeline = archived_pipeline(31);
    let store = pipeline.archive();
    assert!(store.trip_count() > 0);
    let port_names: std::collections::HashSet<&str> =
        ports().iter().map(|p| p.name).collect();
    for trip in store.trips() {
        // Every destination is a real catalogued port.
        assert!(
            port_names.contains(trip.destination.as_str()),
            "unknown port {}",
            trip.destination
        );
        if let Some(origin) = &trip.origin {
            assert!(port_names.contains(origin.as_str()));
        }
        // Trips are time-ordered and non-trivial.
        assert!(trip.arrived >= trip.departed);
        assert!(trip.len() >= 2);
        for w in trip.points.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}

#[test]
fn od_matrix_totals_match_trip_counts() {
    let pipeline = archived_pipeline(32);
    let store = pipeline.archive();
    let od = store.od_matrix();
    let known_origin_trips = store
        .trips()
        .iter()
        .filter(|t| t.origin.is_some())
        .count();
    let od_total: usize = od.values().map(|c| c.trips).sum();
    assert_eq!(od_total, known_origin_trips);
}

#[test]
fn queries_find_archived_motion() {
    let pipeline = archived_pipeline(33);
    let store = pipeline.archive();
    if store.trip_count() == 0 {
        return; // defensive: nothing to query
    }
    // A range query around the densest trip must find it.
    let probe = &store.trips()[0];
    let (from, to) = (probe.departed, probe.arrived);
    let bbox = BoundingBox::around(
        &probe.points.iter().map(|p| p.position).collect::<Vec<_>>(),
    )
    .unwrap()
    .inflated(0.01);
    let hits = range_query(store, &bbox, from, to);
    assert!(hits.iter().any(|t| std::ptr::eq(*t, probe)));

    // Nearest-trip around the first point of that trip is itself (or an
    // overlapping one at distance ~0).
    let (_, d) = nearest_trip(store, probe.points[0].position).unwrap();
    assert!(d < 1.0, "nearest distance {d}");

    // A trip is identical to itself under the synchronized measure.
    let d = synchronized_distance_m(probe, probe, 16).unwrap();
    assert!(d < 1e-6);
}

#[test]
fn trips_serialize_roundtrip() {
    let pipeline = archived_pipeline(34);
    let store = pipeline.archive();
    for trip in store.trips().iter().take(5) {
        let json = serde_json::to_string(trip).unwrap();
        let back: Trip = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, trip);
    }
}

#[test]
fn table4_statistics_are_internally_consistent() {
    let pipeline = archived_pipeline(35);
    let stats = pipeline.archive_stats();
    let store = pipeline.archive();
    assert_eq!(stats.trips, store.trip_count());
    assert_eq!(stats.points_in_trajectories, store.archived_points());
    if stats.trips > 0 {
        let expected_ppt = stats.points_in_trajectories as f64 / stats.trips as f64;
        assert!((stats.avg_points_per_trip - expected_ppt).abs() < 1e-9);
        let vessels_with_trips = store.vessels().len();
        let expected_tpv = stats.trips as f64 / vessels_with_trips as f64;
        assert!((stats.avg_trips_per_vessel - expected_tpv).abs() < 1e-9);
    }
}

#[test]
fn clustering_respects_time() {
    use maritime_modstore::cluster::cluster_trips;
    let pipeline = archived_pipeline(36);
    let store = pipeline.archive();
    let clusters = cluster_trips(store, 3_000.0, 8);
    // Partition property: every trip in exactly one cluster.
    let mut seen = vec![false; store.trip_count()];
    for c in &clusters {
        for &i in c {
            assert!(!seen[i], "trip {i} in two clusters");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|s| *s));
    // Any multi-trip cluster must have temporally overlapping members.
    for c in &clusters {
        if c.len() < 2 {
            continue;
        }
        for w in c.windows(2) {
            let a = &store.trips()[w[0]];
            let b = &store.trips()[w[1]];
            // Single-link: not every pair overlaps directly, but the
            // cluster cannot consist solely of pairwise-disjoint spans.
            let overlap = a.departed.max(b.departed) <= a.arrived.min(b.arrived);
            let _ = overlap; // direct pair may be linked transitively
        }
    }
}
