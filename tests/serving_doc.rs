//! Keeps `SERVING.md` honest (`ISSUE` 8: operator handbook pinned by
//! tests).
//!
//! Three contracts:
//!
//! 1. **Flags, two-way**: every `surveil serve` / `surveil feed` flag in
//!    the binary's flag tables is documented, and every `--flag` the
//!    handbook mentions exists — an undocumented flag and a documented
//!    phantom both fail.
//! 2. **Wire protocol, golden**: the example event lines in the handbook
//!    are not prose — they are re-generated here from the real
//!    [`WireEncoder`] and must match byte for byte.
//! 3. **Controls, framing, endpoints**: the `#flush` / `#shutdown`
//!    control lines, the `<epoch-secs> <sentence>` framing template, and
//!    every HTTP route the server answers must appear.

use std::collections::BTreeSet;

use maritime::serve::cli::{FEED_FLAGS, SERVE_FLAGS, WATCH_FLAGS};
use maritime::serve::{sse_frame, WireEncoder, CONTROL_FLUSH, CONTROL_SHUTDOWN};
use maritime_cer::{Alert, AlertKind, RecognitionSummary};
use maritime_geo::AreaId;
use maritime_stream::Timestamp;

const HANDBOOK: &str = include_str!("../SERVING.md");

/// Backticked `--flag` tokens in the handbook.
fn documented_flags() -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for span in HANDBOOK.split('`').skip(1).step_by(2) {
        if span.starts_with("--") {
            let name: String = span
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-')
                .collect();
            if name.len() > 2 {
                found.insert(name);
            }
        }
    }
    found
}

fn table_flags() -> BTreeSet<String> {
    SERVE_FLAGS
        .iter()
        .chain(FEED_FLAGS)
        .chain(WATCH_FLAGS)
        .map(|f| f.name.to_string())
        .collect()
}

#[test]
fn every_cli_flag_is_documented() {
    let documented = documented_flags();
    let missing: Vec<String> = table_flags()
        .into_iter()
        .filter(|f| !documented.contains(f))
        .collect();
    assert!(
        missing.is_empty(),
        "flags the binary accepts but SERVING.md does not document: {missing:?}"
    );
}

#[test]
fn every_documented_flag_exists() {
    let tables = table_flags();
    let phantom: Vec<String> = documented_flags()
        .into_iter()
        .filter(|f| !tables.contains(f))
        .collect();
    assert!(
        phantom.is_empty(),
        "SERVING.md documents flags the binary does not accept: {phantom:?}"
    );
}

/// The worked protocol example in the handbook, regenerated from the
/// real encoder.
fn example_events() -> Vec<String> {
    let summary = RecognitionSummary {
        query_time: Timestamp(7200),
        suspicious: Vec::new(),
        illegal_fishing: Vec::new(),
        alerts: vec![(
            Timestamp(6505),
            Alert {
                kind: AlertKind::IllegalShipping,
                vessel: maritime_ais::Mmsi(237_000_001),
                area: AreaId(29),
            },
        )],
        ce_count: 1,
        working_memory: 42,
    };
    let mut events = WireEncoder::new().encode_summary(&summary);
    events.push(WireEncoder::flushed_marker(28_800));
    events
}

#[test]
fn wire_protocol_examples_are_golden() {
    for line in example_events() {
        assert!(
            HANDBOOK.contains(&line),
            "SERVING.md protocol example is stale; the encoder now emits:\n{line}"
        );
    }
}

#[test]
fn sse_example_is_golden() {
    let alert_line = example_events().remove(0);
    let frame = sse_frame(&alert_line);
    assert!(
        HANDBOOK.contains(&frame),
        "SERVING.md SSE example is stale; the encoder now frames:\n{frame}"
    );
}

#[test]
fn control_lines_and_framing_are_documented() {
    for needle in [CONTROL_FLUSH, CONTROL_SHUTDOWN, "<epoch-secs> <sentence>"] {
        assert!(
            HANDBOOK.contains(&format!("`{needle}`")),
            "SERVING.md must document `{needle}`"
        );
    }
}

#[test]
fn every_http_endpoint_is_documented() {
    // The route list of `serve`'s HTTP surface; extending the server
    // without extending the handbook fails here.
    for route in [
        "/metrics",
        "/metrics.json",
        "/metrics/history",
        "/sources",
        "/healthz",
        "/dashboard",
        "/events",
    ] {
        assert!(
            HANDBOOK.contains(&format!("`{route}`")),
            "SERVING.md must document the `{route}` endpoint"
        );
    }
}

#[test]
fn the_demo_transcript_commands_parse() {
    use maritime::serve::cli::{FeedCli, ServeCli};
    // The quick-start commands in SERVING.md, re-parsed with the real
    // parsers so the transcript cannot rot.
    let serve = ["--demo-fleet", "20", "--run-secs", "60"].map(String::from);
    ServeCli::parse(&serve).expect("quick-start serve command parses");
    let feed = ["--demo", "20", "6", "--to", "127.0.0.1:10110", "--flush"].map(String::from);
    FeedCli::parse(&feed).expect("quick-start feed command parses");
    let control = ["--control", "shutdown", "--to", "127.0.0.1:10110"].map(String::from);
    FeedCli::parse(&control).expect("quick-start control command parses");
}
