//! Kill/restore determinism (`ISSUE` satellite: checkpoint suite): run
//! the pipeline to time T, serialize every partition engine, drop them,
//! restore into fresh engines, continue — the recognized-CE stream must
//! be byte-identical to an uninterrupted run, under both evaluation
//! strategies and several band counts, at hand-picked and at random kill
//! points. A serve leg proves the resident server's `--checkpoint-dir`
//! restore-on-boot path carries recognition state across a restart.

use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration as StdDuration, Instant};

use maritime::serve::{self, ServeOptions, WireEncoder};
use maritime::{SurveillanceConfig, SurveillancePipeline};
use maritime_ais::{DataScanner, PositionTuple};
use maritime_cer::VesselInfo;
use maritime_chaos::{demo_sentences, StreamLine};
use maritime_geo::aegean::{generate_areas, AreaGenConfig};
use maritime_geo::Area;
use maritime_stream::{AdmissionBuffer, Duration, SlideBatches, Timestamp, WindowSpec};
use proptest::prelude::*;

/// The serve end-to-end world: badly behaved vessels whose stream raises
/// alerts as well as durative CEs.
fn world() -> &'static (Vec<StreamLine>, Vec<VesselInfo>) {
    static WORLD: OnceLock<(Vec<StreamLine>, Vec<VesselInfo>)> = OnceLock::new();
    WORLD.get_or_init(|| demo_sentences(0xC4A05, 30, 8))
}

fn areas() -> Vec<Area> {
    generate_areas(&AreaGenConfig::default())
}

/// Windows fast enough that 8 hours cross many recognition queries.
fn config(bands: usize, incremental: bool) -> SurveillanceConfig {
    let mut config = SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5))
            .expect("valid tracking window"),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30))
            .expect("valid recognition window"),
        incremental_recognition: incremental,
        ..SurveillanceConfig::default()
    };
    config.parallelism.recognition_bands = bands;
    config
}

/// Admission → decode, exactly the batch runner's preamble.
fn tuples(lines: &[StreamLine]) -> Vec<PositionTuple> {
    let mut admission: AdmissionBuffer<String> = AdmissionBuffer::new(Duration::secs(120));
    let mut scanner = DataScanner::new();
    let mut out: Vec<PositionTuple> = Vec::new();
    let drain = |scanner: &mut DataScanner,
                 out: &mut Vec<PositionTuple>,
                 batch: Vec<(Timestamp, String)>| {
        for (t, line) in batch {
            if let Some(tuple) = scanner.scan(&line, t) {
                out.push(tuple);
            }
        }
    };
    for (t, line) in lines {
        let released = admission.push(Timestamp(*t), line.clone());
        drain(&mut scanner, &mut out, released);
    }
    drain(&mut scanner, &mut out, admission.flush());
    out
}

/// Pre-sliced per-slide batches, mirroring `run_with_observer`'s batcher.
fn slide_batches(
    lines: &[StreamLine],
    cfg: &SurveillanceConfig,
) -> Vec<(Timestamp, Vec<PositionTuple>)> {
    let keyed = tuples(lines).into_iter().map(|t| (t.timestamp, t));
    SlideBatches::new(keyed, cfg.tracking_window, Timestamp::ZERO)
        .map(|b| (b.query_time, b.items.into_iter().map(|(_, t)| t).collect()))
        .collect()
}

/// Drives a fresh pipeline over the stream, producing the full wire event
/// sequence. Before every slide whose index is in `kills`: serialize the
/// recognition backend, drop it, restore from the bytes, and pin that the
/// restored backend re-checkpoints to identical bytes.
fn run_events(
    lines: &[StreamLine],
    vessels: &[VesselInfo],
    bands: usize,
    incremental: bool,
    kills: &[usize],
) -> Vec<String> {
    let cfg = config(bands, incremental);
    let mut pipeline =
        SurveillancePipeline::new(&cfg, vessels.to_vec(), areas()).expect("config validates");
    let mut encoder = WireEncoder::new();
    let mut events = Vec::new();
    let mut last_q = Timestamp::ZERO;
    for (i, (q, batch)) in slide_batches(lines, &cfg).iter().enumerate() {
        if kills.contains(&i) {
            let bytes = pipeline.checkpoint_recognizer();
            pipeline.restore_recognizer(&bytes).expect("restore from own checkpoint");
            assert_eq!(
                pipeline.checkpoint_recognizer(),
                bytes,
                "restored backend must re-checkpoint byte-identically \
                 (bands={bands} incremental={incremental} slide={i})"
            );
        }
        let outcome = pipeline.slide(*q, batch);
        events.extend(encoder.encode_outcome(&outcome));
        last_q = *q;
    }
    let final_outcome = pipeline.finish(last_q);
    events.extend(encoder.encode_outcome(&final_outcome));
    events
}

#[test]
fn kill_restore_is_byte_identical_across_bands_and_strategies() {
    let (lines, vessels) = world();
    let n = slide_batches(lines, &config(1, false)).len();
    assert!(n > 10, "world too small to place early/mid/late kills: {n} slides");
    // Early (before the first recognition boundary), mid-run, and on the
    // very last slide.
    let kills = [2, n / 2, n - 1];
    for bands in [1usize, 2, 4] {
        for incremental in [false, true] {
            let base = run_events(lines, vessels, bands, incremental, &[]);
            assert!(!base.is_empty(), "uninterrupted run produced no events");
            let got = run_events(lines, vessels, bands, incremental, &kills);
            assert_eq!(
                got, base,
                "kill/restore changed recognition (bands={bands} incremental={incremental})"
            );
        }
    }
}

/// The smaller proptest world and its cached uninterrupted baselines
/// (index 0 = from-scratch, 1 = incremental), so every random case pays
/// for one interrupted run only.
fn small_world() -> &'static (Vec<StreamLine>, Vec<VesselInfo>) {
    static WORLD: OnceLock<(Vec<StreamLine>, Vec<VesselInfo>)> = OnceLock::new();
    WORLD.get_or_init(|| demo_sentences(0x5EED, 12, 4))
}

fn small_baseline(incremental: bool) -> &'static Vec<String> {
    static BASE: [OnceLock<Vec<String>>; 2] = [OnceLock::new(), OnceLock::new()];
    BASE[usize::from(incremental)].get_or_init(|| {
        let (lines, vessels) = small_world();
        run_events(lines, vessels, 2, incremental, &[])
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// Crash-at-arbitrary-slide: a kill at ANY point of a 2-band run,
    /// under either strategy, never changes the wire event sequence.
    #[test]
    fn random_kill_points_never_change_output(kill in 0usize..1_000, incremental in any::<bool>()) {
        let (lines, vessels) = small_world();
        let n = slide_batches(lines, &config(2, incremental)).len();
        let got = run_events(lines, vessels, 2, incremental, &[kill % n]);
        prop_assert_eq!(&got, small_baseline(incremental), "kill at slide {}", kill % n);
    }
}

fn feed_lines(addr: std::net::SocketAddr, lines: &[StreamLine]) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("feed connects");
    let mut buf = String::new();
    for (t, line) in lines {
        buf.push_str(&format!("{t} {line}\n"));
    }
    stream.write_all(buf.as_bytes()).expect("feed writes");
    stream.flush().expect("feed flushes");
    stream
}

fn poll(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(60);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

#[test]
fn serve_restores_recognition_state_from_checkpoint_dir() {
    let (lines, vessels) = world();
    let dir = std::env::temp_dir().join(format!("maritime_serve_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = |vessels: Vec<VesselInfo>| ServeOptions {
        // Partitioned + incremental: the hardest backend to carry across
        // a restart.
        config: config(2, true),
        vessels,
        areas: areas(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..ServeOptions::default()
    };

    // First server: feed half the stream, let it slide, shut down (the
    // driver writes a final checkpoint on the way out).
    let handle = serve::start(options(vessels.clone())).expect("server starts");
    let split = lines.len() / 2;
    let _feed = feed_lines(handle.nmea_tcp.unwrap(), &lines[..split]);
    poll("first half to be ingested and queried", || {
        let s = handle.ingest_stats();
        s.lines == split as u64 && s.queries > 0
    });
    let before = handle.ingest_stats();
    handle.shutdown();
    handle.join();
    assert!(
        dir.join(serve::CHECKPOINT_FILE).exists(),
        "shutdown must leave a final checkpoint"
    );

    // Second server, same directory: boots from the checkpoint with the
    // first server's recognition state, then serves the rest.
    let handle = serve::start(options(vessels.clone())).expect("server restarts");
    let restored = handle.ingest_stats();
    assert_eq!(restored.lines, before.lines, "restored line count");
    assert_eq!(restored.accepted, before.accepted, "restored accepted count");
    assert_eq!(restored.queries, before.queries, "restored query count");
    assert_eq!(restored.ce_total, before.ce_total, "restored CE count");

    let mut feed = feed_lines(handle.nmea_tcp.unwrap(), &lines[split..]);
    feed.write_all(b"#flush\n").expect("flush control");
    feed.flush().expect("feed flush");
    poll("second half to be ingested and flushed", || {
        let s = handle.ingest_stats();
        s.lines == lines.len() as u64 && s.queries > before.queries
    });
    let after = handle.ingest_stats();
    assert!(
        after.ce_total >= before.ce_total,
        "recognition continued across the restart"
    );
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
