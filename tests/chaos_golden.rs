//! Golden chaos replay: a pinned hostile plan, replayed from its JSON
//! fixture, must perturb the pinned world to the same recognition output
//! forever. This freezes (1) plan JSON decoding, (2) every perturbation
//! op's RNG derivation, and (3) the pipeline's behaviour under the
//! perturbed stream — a change to any of them shows up as a fingerprint
//! mismatch here before it silently invalidates archived CI artifacts.
//!
//! To bless a deliberate change: `CHAOS_BLESS=1 cargo test -p maritime
//! --test chaos_golden`, then commit the rewritten fixture (see
//! `TESTING.md`).

use std::fs;
use std::path::Path;

use maritime::chaos::{ChaosEngine, ChaosHarness};
use maritime_chaos::ChaosPlan;

/// Relative to this test binary's CWD (`crates/core`).
const FIXTURE: &str = "../../tests/golden/chaos_plan.json";

/// FNV-1a 64-bit — tiny, dependency-free, and stable; collision
/// resistance is irrelevant for a regression pin.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn observed_fingerprint(plan: &ChaosPlan) -> u64 {
    let h = ChaosHarness::default();
    let (lines, vessels) = h.baseline();
    let (perturbed, _) = plan.apply(&lines);
    let run = h.run(&perturbed, &vessels, ChaosEngine::Serial);
    fnv1a64(run.observation.fingerprint().as_bytes())
}

#[test]
fn golden_plan_replays_to_the_pinned_fingerprint() {
    let fixture = Path::new(FIXTURE);
    if std::env::var_os("CHAOS_BLESS").is_some() {
        let plan = ChaosPlan::hostile(0x601D);
        let fp = observed_fingerprint(&plan);
        let body = format!(
            "{{\n  \"plan\": {},\n  \"fingerprint_fnv64\": \"{fp:#018x}\"\n}}\n",
            plan.to_json()
        );
        fs::write(fixture, body).expect("write golden fixture");
        return;
    }

    let body = fs::read_to_string(fixture)
        .expect("golden fixture missing — run once with CHAOS_BLESS=1");
    let value: serde_json::Value = serde_json::from_str(&body).expect("fixture is JSON");
    let plan_json = serde_json::to_string(value.get("plan").expect("fixture has a plan"))
        .expect("plan subtree re-serializes");
    let plan = ChaosPlan::from_json(&plan_json).expect("fixture plan decodes");
    assert!(!plan.ops.is_empty(), "golden plan has no ops");

    let pinned = match value.get("fingerprint_fnv64") {
        Some(serde_json::Value::String(s)) => s.clone(),
        other => panic!("fixture fingerprint missing or not a string: {other:?}"),
    };
    let pinned = u64::from_str_radix(pinned.trim_start_matches("0x"), 16)
        .expect("fingerprint is hex");

    let got = observed_fingerprint(&plan);
    assert_eq!(
        got, pinned,
        "golden chaos replay diverged (got {got:#018x}); if intentional, \
         re-bless with CHAOS_BLESS=1 (see TESTING.md)"
    );
}
