//! Shrinker acceptance: a deliberately seeded violation buried in a pile
//! of benign ops is minimized to a ≤ 5-op reproducing plan (`ISSUE`
//! acceptance criterion; in practice it lands on the single guilty op).

use maritime::chaos::{ChaosEngine, ChaosHarness};
use maritime_chaos::oracle::check_identical;
use maritime_chaos::{shrink_plan, ChaosOp, ChaosPlan};

#[test]
fn seeded_violation_minimizes_to_at_most_five_ops() {
    let h = ChaosHarness::default();
    let (lines, vessels) = h.baseline();
    let base = h.run(&lines, &vessels, ChaosEngine::Serial);

    // Eleven CE-preserving ops hiding one two-hour outage. The outage
    // must violate stream-equivalence; the duplicates never can.
    let mut ops: Vec<ChaosOp> = (0..11)
        .map(|i| ChaosOp::Duplicate { per_mille: 20 + 10 * i })
        .collect();
    ops.insert(
        6,
        ChaosOp::GapBurst { start_secs: 3_600, duration_secs: 7_200 },
    );
    let plan = ChaosPlan { seed: 0xBAD5EED, ops };

    let mut evaluations = 0u32;
    let fails = |candidate: &ChaosPlan| {
        evaluations += 1;
        let (perturbed, _) = candidate.apply(&lines);
        let got = h.run(&perturbed, &vessels, ChaosEngine::Serial);
        check_identical("stream-equivalence", &base.observation, &got.observation).is_err()
    };
    let shrunk = shrink_plan(&plan, fails);

    assert!(
        shrunk.ops.len() <= 5,
        "shrinker left {} ops: {}",
        shrunk.ops.len(),
        shrunk.to_json()
    );
    assert!(
        shrunk.ops.iter().any(|op| matches!(op, ChaosOp::GapBurst { .. })),
        "the guilty op was shrunk away: {}",
        shrunk.to_json()
    );
    // The minimized plan must still reproduce, from its JSON round-trip —
    // this is exactly what `surveil chaos --plan <artifact>` replays.
    let replayed = ChaosPlan::from_json(&shrunk.to_json()).expect("plan JSON round-trips");
    let (perturbed, _) = replayed.apply(&lines);
    let got = h.run(&perturbed, &vessels, ChaosEngine::Serial);
    assert!(
        check_identical("stream-equivalence", &base.observation, &got.observation).is_err(),
        "minimized plan no longer reproduces the violation"
    );
    assert!(evaluations > 2, "ddmin never actually searched");
}
