//! Fuzz-shaped robustness suite for the batch scanner.
//!
//! The zero-copy scanner slices sentences out of the input buffer and
//! reads bit fields straight off the armored bytes — which means framing
//! damage now hits pointer arithmetic instead of `String` machinery.
//! This suite feeds it deliberately damaged streams (the `maritime-chaos`
//! Corrupt/Truncate ops over several seeds, plus hand-built interleaved
//! and truncated multi-fragment messages) and demands that it never
//! panics and that every discarded sentence lands in exactly one
//! [`ScanStats`] bucket — the ledger invariant
//! `total == accepted + malformed + bad_checksum + bad_payload +
//! bad_position + voyage_declarations + fragments_pending`.

use maritime_ais::voyage::{encode_static_voyage, StaticVoyageData};
use maritime_ais::{DataScanner, Mmsi, ScanStats};
use maritime_chaos::{demo_sentences, ChaosOp, ChaosPlan};
use maritime_stream::Timestamp;

/// Every scan call increments `total` and exactly one outcome bucket.
fn assert_ledger(stats: &ScanStats) {
    let buckets = stats.accepted
        + stats.malformed
        + stats.bad_checksum
        + stats.bad_payload
        + stats.bad_position
        + stats.voyage_declarations
        + stats.fragments_pending;
    assert_eq!(
        stats.total, buckets,
        "scan outcomes must partition the sentence count: {stats:?}"
    );
}

fn scan_all(lines: &[(i64, String)]) -> (ScanStats, usize) {
    let mut scanner = DataScanner::new();
    let mut accepted = 0usize;
    let mut last = Timestamp::ZERO;
    for (t, line) in lines {
        last = Timestamp(*t);
        if scanner.scan(line, last).is_some() {
            accepted += 1;
        }
    }
    scanner.finish(last);
    let stats = scanner.stats();
    assert_ledger(&stats);
    assert_eq!(stats.accepted as usize, accepted);
    (stats, accepted)
}

#[test]
fn corrupt_and_truncated_streams_never_panic_and_balance_the_ledger() {
    let (clean, _) = demo_sentences(0xC0FFEE, 20, 2);
    let (clean_stats, clean_accepted) = scan_all(&clean);
    assert_eq!(clean_stats.bad_checksum, 0, "clean stream must scan clean");
    assert_eq!(clean_stats.malformed, 0);
    assert!(clean_accepted > 1_000, "demo stream too small to be probative");

    for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
        let plan = ChaosPlan::new(
            seed,
            vec![
                ChaosOp::Corrupt { per_mille: 120 },
                ChaosOp::Truncate { per_mille: 120 },
            ],
        );
        let (damaged, pstats) = plan.apply(&clean);
        assert!(pstats.corrupted > 0, "seed {seed} damaged nothing");
        let (stats, accepted) = scan_all(&damaged);

        // Damage only ever removes positions — and each damaged sentence
        // must land in a rejection bucket, not vanish.
        assert!(accepted <= clean_accepted, "seed {seed} gained positions");
        assert_eq!(stats.total as usize, damaged.len());
        let rejected = stats.bad_checksum + stats.malformed + stats.bad_payload;
        assert!(
            rejected > 0,
            "seed {seed}: {} damaged sentences, none rejected",
            pstats.corrupted
        );
    }
}

fn voyage(mmsi: u32, seq_id: u8) -> [String; 2] {
    encode_static_voyage(
        &StaticVoyageData {
            mmsi: Mmsi(mmsi),
            imo: 9_100_000 + mmsi % 1000,
            callsign: format!("RB{seq_id:02}"),
            name: format!("ROBUSTNESS {mmsi}"),
            ship_type: 70,
            draught_m: 6.5,
            destination: "PIRAEUS".to_string(),
        },
        seq_id,
    )
}

#[test]
fn interleaved_multi_fragment_messages_reassemble_with_pinned_stats() {
    // Two type-5 messages with *different* sequence ids interleaved:
    // A1 B1 A2 B2. Both must reassemble — four scans, two pending
    // fragments, two voyage declarations.
    let [a1, a2] = voyage(237_000_001, 1);
    let [b1, b2] = voyage(237_000_002, 2);
    let mut scanner = DataScanner::new();
    for line in [&a1, &b1, &a2, &b2] {
        assert!(scanner.scan(line, Timestamp(0)).is_none());
    }
    let stats = scanner.stats();
    assert_ledger(&stats);
    assert_eq!(stats.total, 4);
    assert_eq!(stats.fragments_pending, 2);
    assert_eq!(stats.voyage_declarations, 2);
    assert_eq!(stats.fragments_truncated, 0);
    assert_eq!(scanner.voyages().len(), 2);
}

#[test]
fn colliding_sequence_ids_count_the_squeezed_out_message_as_truncated() {
    // Two messages *sharing* a sequence id interleaved: A1 B1 B2 A2.
    // B1 overwrites A1's slot in the shared reassembly entry, so B
    // completes (with B's payload intact) and message A is lost; A's
    // orphan second fragment starts a new pending entry that can never
    // complete. Pinned deltas: 4 scans — 3 pending fragments (A1, B1,
    // A2), 1 declaration (B) — then draining at finish counts exactly
    // one abandoned message (A's orphan) as truncated.
    let [a1, a2] = voyage(237_000_001, 3);
    let [b1, b2] = voyage(237_000_002, 3);
    let mut scanner = DataScanner::new();
    for line in [&a1, &b1, &b2, &a2] {
        assert!(scanner.scan(line, Timestamp(5)).is_none());
    }
    let mid = scanner.stats();
    assert_ledger(&mid);
    assert_eq!(mid.total, 4);
    assert_eq!(mid.fragments_pending, 3);
    assert_eq!(mid.voyage_declarations, 1, "only B fully reassembles");
    assert_eq!(mid.fragments_truncated, 0, "the loss is invisible until drained");
    assert_eq!(scanner.voyages().len(), 1);

    let abandoned = scanner.finish(Timestamp(60));
    assert_eq!(abandoned, 1, "exactly one message (A) was squeezed out");
    let stats = scanner.stats();
    assert_ledger(&stats);
    assert_eq!(stats.fragments_truncated, 1);
    assert_eq!(scanner.voyages().len(), 1);
}

#[test]
fn truncated_final_fragment_is_flushed_at_finish() {
    // A first fragment whose sibling never arrives: invisible until the
    // defragmenter is drained, then counted as truncated.
    let [a1, _a2] = voyage(237_000_003, 4);
    let mut scanner = DataScanner::new();
    assert!(scanner.scan(&a1, Timestamp(0)).is_none());
    let before = scanner.stats();
    assert_eq!(before.fragments_pending, 1);
    assert_eq!(before.fragments_truncated, 0);
    let abandoned = scanner.finish(Timestamp(60));
    assert_eq!(abandoned, 1);
    let stats = scanner.stats();
    assert_ledger(&stats);
    assert_eq!(stats.fragments_truncated, 1);
    assert_eq!(scanner.voyages().len(), 0);
}

#[test]
fn mangled_fragment_headers_never_panic() {
    // Header damage targeted at the multi-fragment fields themselves:
    // fragment counts of 0, fragment numbers out of range, non-numeric
    // counts, missing fields — all must be rejected or buffered, never
    // panic, and keep the ledger balanced.
    let [a1, a2] = voyage(237_000_004, 5);
    let broken: Vec<String> = vec![
        a1.replace(",2,1,", ",0,1,"),
        a1.replace(",2,1,", ",2,9,"),
        a1.replace(",2,1,", ",x,1,"),
        a1.replace(",2,1,", ",2,,"),
        a1.chars().take(10).collect(),
        a2.replace(",2,2,", ",2,2"),
        String::new(),
        "!AIVDM".to_string(),
    ];
    let mut scanner = DataScanner::new();
    for line in &broken {
        let _ = scanner.scan(line, Timestamp(0));
    }
    scanner.finish(Timestamp(60));
    let stats = scanner.stats();
    assert_ledger(&stats);
    assert_eq!(stats.total, broken.len() as u64);
    assert_eq!(stats.accepted, 0);
    assert_eq!(scanner.voyages().len(), 0);
}
