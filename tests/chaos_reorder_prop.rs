//! Property: a random arrival-order perturbation whose skew stays within
//! the admission window is a no-op on recognized CEs, under **every**
//! engine configuration. The admission buffer restores canonical order
//! for any such permutation (stable sort by perturbed key preserves the
//! relative order of items further apart than the skew), so the whole
//! pipeline downstream must be order-blind to it.

use std::sync::OnceLock;

use maritime::chaos::{ChaosEngine, ChaosHarness, EngineRun};
use maritime_cer::VesselInfo;
use maritime_chaos::oracle::check_identical;
use maritime_chaos::{Perturbation, StreamLine};
use proptest::prelude::*;

fn harness() -> ChaosHarness {
    ChaosHarness::default()
}

fn world() -> &'static (Vec<StreamLine>, Vec<VesselInfo>) {
    static WORLD: OnceLock<(Vec<StreamLine>, Vec<VesselInfo>)> = OnceLock::new();
    WORLD.get_or_init(|| harness().baseline())
}

fn clean_runs() -> &'static Vec<(&'static str, EngineRun)> {
    static RUNS: OnceLock<Vec<(&'static str, EngineRun)>> = OnceLock::new();
    RUNS.get_or_init(|| {
        let (lines, vessels) = world();
        ChaosEngine::ALL
            .iter()
            .map(|&e| (e.label(), harness().run(lines, vessels, e)))
            .collect()
    })
}

proptest! {
    // Each case runs the full pipeline four times; keep the case count
    // low — the fixed-seed plans in chaos_oracles.rs carry the volume.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bounded_reorder_is_invisible_to_every_engine(
        seed in any::<u64>(),
        skew_secs in 1i64..=120,
    ) {
        let h = harness();
        prop_assert!(skew_secs <= h.admission_skew_secs);
        let (lines, vessels) = world();
        let (perturbed, stats) = Perturbation::reorder(seed, skew_secs).apply(lines);
        // The permutation must be genuine for most draws; `ops_applied`
        // counts the op even when the draw moves nothing.
        prop_assert_eq!(stats.ops_applied, 1);
        for (label, clean) in clean_runs() {
            let engine = ChaosEngine::ALL
                .iter()
                .copied()
                .find(|e| e.label() == *label)
                .expect("label maps back to engine");
            let got = h.run(&perturbed, vessels, engine);
            if let Err(v) = check_identical(
                "bounded-reorder-equivalence",
                &clean.observation,
                &got.observation,
            ) {
                return Err(TestCaseError::fail(format!(
                    "engine {label}, seed {seed}, skew {skew_secs}: {v}"
                )));
            }
        }
    }
}
