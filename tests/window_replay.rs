//! Windowed replay equivalence: slicing the stream into slide batches
//! must not change what the tracker detects, and the slide machinery must
//! deliver every tuple exactly once regardless of window geometry.

use maritime::prelude::*;
use maritime_ais::replay::to_tuple_stream;

fn stream(seed: u64) -> Vec<(Timestamp, PositionTuple)> {
    let sim = FleetSimulator::new(FleetConfig::tiny(seed));
    to_tuple_stream(&sim.generate())
}

/// Critical points from feeding the whole stream to one tracker.
fn oneshot_critical(stream: &[(Timestamp, PositionTuple)]) -> Vec<CriticalPoint> {
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut out = Vec::new();
    for (_, t) in stream {
        out.extend(tracker.process(*t));
    }
    out.extend(tracker.finish());
    out
}

/// Critical points from windowed batch processing.
fn windowed_critical(
    stream: Vec<(Timestamp, PositionTuple)>,
    spec: WindowSpec,
) -> Vec<CriticalPoint> {
    let mut wt = WindowedTracker::new(TrackerParams::default(), spec);
    let mut out = Vec::new();
    for batch in SlideBatches::new(stream.into_iter(), spec, Timestamp::ZERO) {
        let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
        let report = wt.slide(batch.query_time, &tuples);
        out.extend(report.fresh_critical);
    }
    let (final_cps, _) = wt.finish();
    out.extend(final_cps);
    out
}

fn fingerprint(cps: &[CriticalPoint]) -> Vec<(u32, i64, &'static str)> {
    let mut v: Vec<(u32, i64, &'static str)> = cps
        .iter()
        .map(|c| (c.mmsi.0, c.timestamp.as_secs(), c.annotation.label()))
        .collect();
    v.sort();
    v
}

#[test]
fn windowed_processing_equals_oneshot() {
    // The windowed tracker additionally sweeps for silent vessels on each
    // slide, so it may report a gap_start for a vessel that never returns
    // — which the oneshot run (no sweeps) cannot see. Equivalence is
    // therefore exact on non-gap events, and gap events of the oneshot run
    // are a subset of the windowed run's (with identical timestamps, since
    // a sweep back-dates the gap to the last fix).
    let s = stream(71);
    let oneshot = oneshot_critical(&s);
    for (range_h, slide_min) in [(1i64, 5i64), (1, 30), (2, 60), (6, 60)] {
        let spec =
            WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap();
        let windowed = windowed_critical(s.clone(), spec);
        let non_gap = |cps: &[CriticalPoint]| {
            let filtered: Vec<CriticalPoint> = cps
                .iter()
                .filter(|c| !c.annotation.label().starts_with("gap"))
                .copied()
                .collect();
            fingerprint(&filtered)
        };
        assert_eq!(
            non_gap(&oneshot),
            non_gap(&windowed),
            "ω={range_h}h β={slide_min}min diverged on non-gap events"
        );
        let gaps = |cps: &[CriticalPoint]| {
            let filtered: Vec<CriticalPoint> = cps
                .iter()
                .filter(|c| c.annotation.label().starts_with("gap"))
                .copied()
                .collect();
            fingerprint(&filtered)
        };
        let wg = gaps(&windowed);
        for g in gaps(&oneshot) {
            assert!(wg.contains(&g), "oneshot gap {g:?} missing from windowed run");
        }
    }
}

#[test]
fn slide_batches_deliver_exactly_once_for_any_geometry() {
    let s = stream(72);
    let total = s.len();
    for (range_s, slide_s) in [(600i64, 60i64), (3_600, 300), (3_600, 3_600), (7_200, 1_111)] {
        let spec = WindowSpec::new(Duration::secs(range_s), Duration::secs(slide_s)).unwrap();
        let delivered: usize =
            SlideBatches::new(s.clone().into_iter(), spec, Timestamp::ZERO)
                .map(|b| b.items.len())
                .sum();
        assert_eq!(delivered, total, "geometry ({range_s}, {slide_s})");
    }
}

#[test]
fn eviction_cutoff_is_exact() {
    let s = stream(73);
    let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(15)).unwrap();
    let mut wt = WindowedTracker::new(TrackerParams::default(), spec);
    for batch in SlideBatches::new(s.into_iter(), spec, Timestamp::ZERO) {
        let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
        let report = wt.slide(batch.query_time, &tuples);
        let cutoff = batch.query_time - Duration::hours(1);
        for cp in &report.evicted_delta {
            assert!(
                cp.timestamp <= cutoff,
                "evicted point at {} after cutoff {}",
                cp.timestamp,
                cutoff
            );
        }
    }
}

#[test]
fn rate_rescaled_stream_detects_same_event_mix() {
    // Figure 7 precondition: accelerating arrival (timestamp compression)
    // changes latency, not correctness — the same vessels yield the same
    // *kinds* of events even at 10x rate, although exact counts may shift
    // at second-granularity rounding.
    use maritime_ais::replay::at_rate;
    let s = stream(74);
    let original = oneshot_critical(&s);
    let rate = maritime_stream::rate::mean_rate(&s).unwrap();
    let fast = at_rate(&s, rate * 10.0);
    let accelerated = oneshot_critical(&fast);
    let kinds = |cps: &[CriticalPoint]| {
        let mut ks: Vec<&'static str> = cps.iter().map(|c| c.annotation.label()).collect();
        ks.sort();
        ks.dedup();
        ks
    };
    // Gap events may legitimately disappear at 10x compression (silence
    // shrinks below ΔT); everything else should survive.
    let orig_kinds: Vec<_> = kinds(&original)
        .into_iter()
        .filter(|k| !k.starts_with("gap"))
        .collect();
    let accel_kinds = kinds(&accelerated);
    for k in orig_kinds {
        assert!(accel_kinds.contains(&k), "{k} lost at 10x rate");
    }
}

#[test]
fn pipeline_slide_outcomes_are_monotone_in_time() {
    let sim = FleetSimulator::new(FleetConfig::tiny(75));
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let config = SurveillanceConfig::default();
    let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();
    let stream: Vec<(Timestamp, PositionTuple)> = to_tuple_stream(&sim.generate());
    let mut prev_q = Timestamp::ZERO;
    for batch in SlideBatches::new(stream.into_iter(), config.tracking_window, Timestamp::ZERO) {
        assert!(batch.query_time > prev_q);
        prev_q = batch.query_time;
        let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
        let outcome = pipeline.slide(batch.query_time, &tuples);
        assert_eq!(outcome.query_time, batch.query_time);
        for cp_t in outcome
            .recognition
            .iter()
            .flat_map(|s| s.alerts.iter().map(|(t, _)| *t))
        {
            assert!(cp_t <= batch.query_time);
        }
    }
}
