//! End-to-end `surveil serve`: real TCP sockets, live watermark-driven
//! sliding, broadcast fan-out — differentially pinned against the batch
//! pipeline (`ISSUE` 8 acceptance).
//!
//! The contract under test: streaming sentences over a socket into a
//! resident server yields the *byte-identical* wire event sequence that
//! the batch pipeline produces from the same log, a subscriber joining
//! mid-stream receives exactly a suffix of that sequence, `/metrics`
//! answers over HTTP while the server runs, and a connection cut
//! mid-sentence is discarded without disturbing recognition.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration as StdDuration, Instant};

use maritime::serve::{self, ServeOptions, WireEncoder};
use maritime::{SurveillanceConfig, SurveillancePipeline};
use maritime_ais::{DataScanner, PositionTuple};
use maritime_cer::VesselInfo;
use maritime_chaos::{demo_sentences, StreamLine};
use maritime_geo::aegean::{generate_areas, AreaGenConfig};
use maritime_stream::{AdmissionBuffer, Duration, Timestamp, WindowSpec};

/// A small but nontrivial world: badly behaved vessels whose stream
/// raises alerts as well as durative CEs (asserted below).
fn world() -> (Vec<StreamLine>, Vec<VesselInfo>) {
    demo_sentences(0xC4A05, 30, 8)
}

/// Windows fast enough that 6 hours cross several recognition queries.
fn config() -> SurveillanceConfig {
    SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5))
            .expect("valid tracking window"),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30))
            .expect("valid recognition window"),
        ..SurveillanceConfig::default()
    }
}

fn options(vessels: Vec<VesselInfo>) -> ServeOptions {
    ServeOptions {
        config: config(),
        vessels,
        areas: generate_areas(&AreaGenConfig::default()),
        ..ServeOptions::default()
    }
}

/// The batch side of the differential: admission → scan → pipeline →
/// the same `WireEncoder`, exactly what `surveil` batch mode renders.
fn batch_events(lines: &[StreamLine], vessels: &[VesselInfo]) -> Vec<String> {
    let mut pipeline = SurveillancePipeline::new(
        &config(),
        vessels.to_vec(),
        generate_areas(&AreaGenConfig::default()),
    )
    .expect("batch config validates");
    let mut admission: AdmissionBuffer<String> = AdmissionBuffer::new(Duration::secs(120));
    let mut scanner = DataScanner::new();
    let mut tuples: Vec<PositionTuple> = Vec::new();
    let drain = |scanner: &mut DataScanner,
                     tuples: &mut Vec<PositionTuple>,
                     batch: Vec<(Timestamp, String)>| {
        for (t, line) in batch {
            if let Some(tuple) = scanner.scan(&line, t) {
                tuples.push(tuple);
            }
        }
    };
    for (t, line) in lines {
        let released = admission.push(Timestamp(*t), line.clone());
        drain(&mut scanner, &mut tuples, released);
    }
    drain(&mut scanner, &mut tuples, admission.flush());

    let mut encoder = WireEncoder::new();
    let mut events = Vec::new();
    pipeline.run_with_observer(tuples, |outcome| {
        events.extend(encoder.encode_outcome(outcome));
    });
    events
}

/// Connects a CE-out subscriber and waits until the hub has registered it
/// (registration happens on a server thread after accept).
fn subscribe(handle: &maritime::ServerHandle, expect_count: usize) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(handle.subscribe.expect("subscribe port enabled"))
        .expect("subscriber connects");
    stream
        .set_read_timeout(Some(StdDuration::from_secs(60)))
        .expect("read timeout");
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while handle.hub().subscriber_count() < expect_count {
        assert!(Instant::now() < deadline, "hub never registered subscriber {expect_count}");
        std::thread::sleep(StdDuration::from_millis(5));
    }
    BufReader::new(stream)
}

/// Reads wire events until (and including) the `flushed` marker.
fn read_until_flushed(reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut events = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("subscriber read");
        assert!(n > 0, "stream ended before the flushed marker: {} events", events.len());
        let line = line.trim_end().to_string();
        let done = line.starts_with("{\"type\":\"flushed\"");
        events.push(line);
        if done {
            return events;
        }
    }
}

fn feed_lines(addr: std::net::SocketAddr, lines: &[StreamLine]) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("feed connects");
    let mut buf = String::new();
    for (t, line) in lines {
        buf.push_str(&format!("{t} {line}\n"));
    }
    stream.write_all(buf.as_bytes()).expect("feed writes");
    stream.flush().expect("feed flushes");
    stream
}

#[test]
fn tcp_streamed_sentences_match_the_batch_pipeline_byte_for_byte() {
    let (lines, vessels) = world();
    let expected = batch_events(&lines, &vessels);
    assert!(!expected.is_empty(), "batch run must produce events");
    assert!(
        expected.iter().any(|e| e.starts_with("{\"type\":\"alert\"")),
        "world must raise at least one alert or the test is vacuous"
    );

    let handle = serve::start(options(vessels)).expect("server starts");
    let mut sub = subscribe(&handle, 1);

    // A connection that dies mid-sentence before the real feed: the
    // unterminated partial must be discarded, never recognized.
    {
        let mut cut = TcpStream::connect(handle.nmea_tcp.unwrap()).expect("cut connects");
        cut.write_all(b"0 !AIVDM,1,1,,A,13u?etPv2;0n:dDPwUM1U1Cb069D").expect("partial write");
        cut.flush().expect("partial flush");
    } // dropped without a newline — a mid-sentence cut

    let mut feed = feed_lines(handle.nmea_tcp.unwrap(), &lines);
    feed.write_all(b"#flush\n").expect("flush control");
    feed.flush().expect("feed flush");

    let got = read_until_flushed(&mut sub);
    let (flushed, events) = got.split_last().expect("at least the marker");
    assert!(flushed.starts_with("{\"type\":\"flushed\",\"at\":"));
    assert_eq!(
        events,
        &expected[..],
        "live serve output must equal batch output byte for byte"
    );

    // /metrics answers over HTTP while the server is live, in both
    // encodings, and has seen the partial-line discard.
    let text = http_get(handle.http.unwrap(), "/metrics");
    assert!(text.contains("# TYPE serve_sentences_total counter"), "prometheus text:\n{text}");
    assert!(metric_value(&text, "serve_filtered_lines_total") >= 1, "partial line counted");
    assert!(metric_value(&text, "cer_ce_recognized_total") >= 1, "CEs visible live");
    let json = http_get(handle.http.unwrap(), "/metrics.json");
    assert!(json.contains("\"serve_sentences_total\""), "json encoding:\n{json}");
    assert!(http_get(handle.http.unwrap(), "/healthz").contains("ok"));
    let sources = http_get(handle.http.unwrap(), "/sources");
    assert!(sources.contains("\"accepted\""), "per-source stats:\n{sources}");

    let stats = handle.ingest_stats();
    assert_eq!(stats.lines, lines.len() as u64, "every fed sentence reached the driver");
    assert_eq!(
        stats.accepted + stats.duplicates,
        lines.len() as u64,
        "sentences are either admitted or deduped (never silently lost)"
    );
    assert!(stats.queries > 0 && stats.ce_total > 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn mid_stream_subscriber_receives_exactly_the_subsequent_events() {
    let (lines, vessels) = world();
    let handle = serve::start(options(vessels)).expect("server starts");
    let mut first = subscribe(&handle, 1);

    let split = lines.len() / 2;
    let _feed_a = feed_lines(handle.nmea_tcp.unwrap(), &lines[..split]);

    // Wait until the first half produced at least one event, so the late
    // subscriber verifiably joins mid-stream.
    let mut head = String::new();
    first.read_line(&mut head).expect("first event for early subscriber");
    assert!(head.starts_with("{\"type\":\""), "got: {head}");

    let mut second = subscribe(&handle, 2);
    let mut feed_b = feed_lines(handle.nmea_tcp.unwrap(), &lines[split..]);
    feed_b.write_all(b"#flush\n").expect("flush control");
    feed_b.flush().expect("feed flush");

    let mut early = vec![head.trim_end().to_string()];
    early.extend(read_until_flushed(&mut first));
    let late = read_until_flushed(&mut second);

    assert!(late.len() >= 2, "late subscriber saw the tail: {late:?}");
    assert!(
        late.len() < early.len(),
        "late subscriber joined mid-stream ({} vs {} events)",
        late.len(),
        early.len()
    );
    assert!(
        early.ends_with(&late),
        "a mid-stream join receives exactly a suffix of the full stream;\nearly tail: {:?}\nlate: {:?}",
        &early[early.len().saturating_sub(3)..],
        &late[..late.len().min(3)]
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_control_line_stops_the_server() {
    let (_, vessels) = world();
    let handle = serve::start(options(vessels)).expect("server starts");
    let mut feed = TcpStream::connect(handle.nmea_tcp.unwrap()).expect("feed connects");
    feed.write_all(b"#shutdown\n").expect("control write");
    feed.flush().expect("control flush");
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while !handle.is_shutdown() {
        assert!(Instant::now() < deadline, "#shutdown never took effect");
        std::thread::sleep(StdDuration::from_millis(10));
    }
    handle.join();
}

/// Minimal HTTP/1.0 GET, enough for the server's own endpoint surface.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connects");
    stream
        .set_read_timeout(Some(StdDuration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nhost: test\r\n\r\n").as_bytes())
        .expect("http request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("http response");
    assert!(body.starts_with("HTTP/1.0 200"), "{path} failed:\n{body}");
    body
}

/// The value of a counter in Prometheus text exposition.
fn metric_value(text: &str, name: &str) -> i64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(-1, |v| v as i64)
}
