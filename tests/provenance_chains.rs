//! End-to-end provenance guarantees of the tracing subsystem.
//!
//! Two contracts, checked over deterministic fixed-seed runs:
//!
//! 1. **Completeness & groundedness** — under `TraceMode::Full` every
//!    complex event the pipeline recognizes (interval CE or alert) carries
//!    a derivation chain, and every `"input"` leaf of every chain cites
//!    AIS sentence ids that exist in the admitted input stream, belong to
//!    the leaf's vessel, and were received at or before the leaf's
//!    timestamp. Sentence ids are admission ordinals, so "exists in the
//!    input" is an index check against the exact tuples fed in.
//!
//! 2. **Non-interference** — `TraceMode::Off` (the default) produces CE
//!    output *byte identical* under JSON serialization to the PR 2
//!    incremental-equivalence baseline: a provenance-enabled recognizer,
//!    a plain from-scratch recognizer, and an incremental recognizer all
//!    agree on every query's canonical summary.

use std::collections::BTreeSet;

use maritime::prelude::*;
use maritime_cer::{alert_id, visit_input_leaves, RecognitionSummary};

fn t(v: i64) -> Timestamp {
    Timestamp(v)
}

/// Canonical JSON of one query's full observable output — the exact form
/// used by `incremental_equivalence.rs` (PR 2's baseline). Vendored serde
/// implements tuples up to arity 4: nest pairs.
fn canon(s: &RecognitionSummary) -> String {
    serde_json::to_string(&(
        (s.query_time, &s.suspicious),
        (&s.illegal_fishing, &s.alerts),
        (s.ce_count, s.working_memory),
    ))
    .unwrap()
}

/// The stable chain ids a recognition summary implies: one per CE
/// interval, one per alert — mirroring `build_chains`' id scheme.
fn expected_chain_ids(s: &RecognitionSummary) -> BTreeSet<String> {
    let mut ids = BTreeSet::new();
    for (name, per_area) in [
        ("suspicious", &s.suspicious),
        ("illegalFishing", &s.illegal_fishing),
    ] {
        for (area, il) in per_area {
            for iv in il.intervals() {
                ids.insert(format!("{name}/area{}@{}", area.0, iv.since.0));
            }
        }
    }
    for (at, alert) in &s.alerts {
        ids.insert(alert_id(*at, alert));
    }
    ids
}

#[test]
fn every_recognized_ce_carries_a_chain_grounded_in_input_sentences() {
    // Seed 77 is the tiny-fleet seed known to produce CEs (an illegal
    // shipping alert); the run is fully deterministic.
    let sim = FleetSimulator::new(FleetConfig::tiny(77));
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let stream: Vec<PositionTuple> =
        sim.generate().into_iter().map(PositionTuple::from).collect();

    let config = SurveillanceConfig {
        trace: TraceMode::Full,
        ..SurveillanceConfig::default()
    };
    let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();

    let mut log = TraceLog::new();
    let mut expected: BTreeSet<String> = BTreeSet::new();
    let report = pipeline.run_with_observer(stream.iter().copied(), |o| {
        log.record(o.chains.clone());
        if let Some(summary) = &o.recognition {
            expected.extend(expected_chain_ids(summary));
        }
    });

    assert!(report.ce_total > 0, "seed 77 no longer produces CEs");
    assert!(!expected.is_empty());

    // Completeness: every CE the pipeline reported has a chain under its
    // stable id (durative CEs re-derived across queries collapse onto one
    // id — latest wins — so set inclusion is the right check).
    for id in &expected {
        assert!(
            log.get(id).is_some(),
            "recognized CE {id} has no provenance chain; have {:?}",
            log.ids().collect::<Vec<_>>()
        );
    }

    // Groundedness: every input leaf cites sentence ids that are valid
    // admission ordinals, for the right vessel, at or before the leaf.
    let mut leaves = 0usize;
    for chain in log.chains() {
        let label = chain.id.clone();
        let mut chain = chain.clone();
        visit_input_leaves(&mut chain, &mut |leaf| {
            leaves += 1;
            assert!(
                !leaf.sentences.is_empty(),
                "input leaf of {label} has no source sentences"
            );
            for &id in &leaf.sentences {
                let tuple = stream
                    .get(id as usize)
                    .unwrap_or_else(|| panic!("sentence id {id} out of range in {label}"));
                assert_eq!(
                    Some(tuple.mmsi.0),
                    leaf.mmsi,
                    "sentence {id} in {label} belongs to another vessel"
                );
                assert!(
                    tuple.timestamp.0 <= leaf.at,
                    "sentence {id} in {label} postdates the leaf ({} > {})",
                    tuple.timestamp.0,
                    leaf.at
                );
            }
        });
    }
    assert!(leaves > 0, "chains carry no input leaves");
}

#[test]
fn trace_off_output_is_byte_identical_to_incremental_baseline() {
    // The incremental_equivalence.rs world: three areas, ten vessels, a
    // deterministic synthetic stream of critical-point events.
    let areas = vec![
        Area::new(
            AreaId(0),
            "park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.2, 37.2)),
        ),
        Area::new(
            AreaId(1),
            "no-fish",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(24.0, 38.0), GeoPoint::new(24.2, 38.2)),
        ),
        Area::new(
            AreaId(2),
            "shoal",
            AreaKind::Shallow { depth_m: 4.0 },
            Polygon::rectangle(GeoPoint::new(26.5, 36.0), GeoPoint::new(26.7, 36.2)),
        ),
    ];
    let vessels: Vec<VesselInfo> = (0..10)
        .map(|i| VesselInfo {
            mmsi: Mmsi(100 + i),
            draft_m: if i % 2 == 0 { 8.0 } else { 3.0 },
            is_fishing: i % 3 == 0,
        })
        .collect();
    const HOTSPOTS: [(f64, f64); 4] = [(21.1, 37.1), (24.1, 38.1), (26.6, 36.1), (23.0, 39.9)];
    const KINDS: [InputKind; 5] = [
        InputKind::StopStart,
        InputKind::StopEnd,
        InputKind::SlowMotionStart,
        InputKind::SlowMotionEnd,
        InputKind::GapStart,
    ];
    let mut state = 0x5EED_CAFEu64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let span_secs = 26 * 3_600i64;
    let count = 600usize;
    let mut events: Vec<(Timestamp, InputEvent)> = (0..count)
        .map(|i| {
            let at = (i as i64 * span_secs) / count as i64 + (next() % 60) as i64;
            let vessel = (next() % 10) as u32;
            let kind = KINDS[(next() % KINDS.len() as u64) as usize];
            let (lon, lat) = HOTSPOTS[(next() % HOTSPOTS.len() as u64) as usize];
            (
                t(at),
                InputEvent {
                    mmsi: Mmsi(100 + vessel),
                    kind,
                    position: GeoPoint::new(lon, lat),
                    close_areas: None,
                },
            )
        })
        .collect();
    events.sort_by_key(|(at, _)| *at);

    let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
    let kb = || Knowledge::standard(vessels.clone(), areas.clone());

    // `plain` is TraceMode::Off's evaluation path; `traced` is the same
    // recognizer with provenance on; `inc` is PR 2's incremental baseline.
    let mut plain = MaritimeRecognizer::with_strategy(kb(), spec, EvalStrategy::FromScratch);
    let mut traced = MaritimeRecognizer::with_strategy(kb(), spec, EvalStrategy::FromScratch);
    traced.set_provenance(true);
    let mut inc = MaritimeRecognizer::with_strategy(kb(), spec, EvalStrategy::Incremental);

    let queries: Vec<Timestamp> = (1..=26).map(|h| t(h * 3_600)).collect();
    let mut fed = 0usize;
    let mut chains_seen = 0usize;
    for q in &queries {
        while fed < events.len() && events[fed].0 <= *q {
            plain.add_events([events[fed].clone()]);
            traced.add_events([events[fed].clone()]);
            inc.add_events([events[fed].clone()]);
            fed += 1;
        }
        let off = canon(&plain.recognize_and_summarize(*q));
        let on = canon(&traced.recognize_and_summarize(*q));
        let base = canon(&inc.recognize_and_summarize(*q));
        assert_eq!(off, base, "TraceMode::Off diverged from the baseline at {q:?}");
        assert_eq!(on, off, "provenance changed recognition output at {q:?}");
        chains_seen += traced.take_chains().len();
    }
    assert!(fed > 0 && chains_seen > 0, "stream produced no CEs to compare");
    assert!(
        plain.take_chains().is_empty(),
        "provenance-off recognizer must not assemble chains"
    );
}
