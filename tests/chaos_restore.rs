//! Crash-at-arbitrary-point restore under the metamorphic oracles
//! (`ISSUE` satellite: chaos `KillPartition` integration). A
//! `KillPartition` fault checkpoints a recognition band, drops it, and
//! rebuilds it from its own bytes mid-run; the oracles demand the cycle
//! is completely invisible — byte-identical recognition against the
//! uninterrupted baseline (equivalence) and across all four engine
//! configurations (agreement).

use std::sync::OnceLock;

use maritime::chaos::{kill_schedule, ChaosEngine, ChaosHarness, EngineRun};
use maritime_cer::VesselInfo;
use maritime_chaos::oracle::check_identical;
use maritime_chaos::{ChaosOp, ChaosPlan, StreamLine};

fn harness() -> ChaosHarness {
    // Two recognition bands so kills land on real partition engines, not
    // just the single-recognizer fallback path.
    ChaosHarness {
        recognition_bands: 2,
        ..ChaosHarness::default()
    }
}

fn world() -> &'static (Vec<StreamLine>, Vec<VesselInfo>) {
    static WORLD: OnceLock<(Vec<StreamLine>, Vec<VesselInfo>)> = OnceLock::new();
    WORLD.get_or_init(|| harness().baseline())
}

fn baseline() -> &'static EngineRun {
    static BASE: OnceLock<EngineRun> = OnceLock::new();
    BASE.get_or_init(|| {
        let (lines, vessels) = world();
        harness().run(lines, vessels, ChaosEngine::Serial)
    })
}

#[test]
fn kill_restore_is_invisible_at_fixed_points() {
    // Hand-placed crashes: early (first recognition boundary), mid-run,
    // and past the last slide (fires before the final flush), on both
    // bands and on an out-of-range band index (taken modulo).
    let h = harness();
    let (lines, vessels) = world();
    let plan = ChaosPlan::new(
        0,
        vec![
            ChaosOp::KillPartition { at_secs: 1_800, band: 0 },
            ChaosOp::KillPartition { at_secs: 6 * 3_600, band: 1 },
            ChaosOp::KillPartition { at_secs: 9 * 3_600, band: 7 },
            ChaosOp::KillPartition { at_secs: 400 * 3_600, band: 0 },
        ],
    );
    let kills = kill_schedule(&plan);
    assert_eq!(kills.len(), 4, "schedule extraction lost a kill");
    for engine in ChaosEngine::ALL {
        let got = h.run_with_kills(lines, vessels, engine, &kills);
        if let Err(v) = check_identical(
            "kill-restore-equivalence",
            &baseline().observation,
            &got.observation,
        ) {
            panic!("engine {}: {v}", engine.label());
        }
    }
}

#[test]
fn seeded_kill_plans_pass_every_oracle() {
    // The nightly-sweep shape: generated kill_restore plans routed
    // through the same `check_plan` dispatcher CI and the shrinker use.
    // Every op is CE-preserving, so this exercises equivalence (baseline
    // never crashes, perturbed run does) plus four-engine agreement.
    let h = harness();
    let horizon = h.hours * 3_600;
    for seed in 0..6u64 {
        let plan = ChaosPlan::kill_restore(seed, horizon);
        assert!(
            plan.ops.iter().all(|op| op.preserves_ces(h.admission_skew_secs)),
            "kill_restore generated a non-preserving op: {plan:?}"
        );
        assert!(
            !kill_schedule(&plan).is_empty(),
            "seed {seed}: plan contains no kills — vacuous"
        );
        if let Err(v) = h.check_plan(&plan) {
            panic!("seed {seed}, plan {}: {v}", plan.to_json());
        }
    }
}

#[test]
fn kills_compose_with_stream_chaos() {
    // A crash schedule layered on a hostile stream: engines may diverge
    // from the clean baseline (the stream is damaged) but all four must
    // still agree with each other, and with the same hostile stream run
    // *without* kills — the fault is orthogonal to stream damage.
    let h = harness();
    let (lines, vessels) = world();
    let hostile = ChaosPlan::hostile(3);
    let (perturbed, stats) = hostile.apply(lines);
    assert!(stats.ops_applied > 0, "hostile plan did not touch the stream");
    let kills = [(2 * 3_600, 0u32), (7 * 3_600, 1u32)];
    let without = h.run(&perturbed, vessels, ChaosEngine::Serial);
    for engine in ChaosEngine::ALL {
        let with = h.run_with_kills(&perturbed, vessels, engine, &kills);
        if let Err(v) = check_identical(
            "kill-under-stream-chaos",
            &without.observation,
            &with.observation,
        ) {
            panic!("engine {}: {v}", engine.label());
        }
    }
}

#[test]
fn single_band_kills_restart_the_whole_recognizer() {
    // recognition_bands = 1 routes kills through the single-recognizer
    // backend (whole-engine checkpoint/restore, band index ignored).
    let h = ChaosHarness::default();
    assert_eq!(h.recognition_bands, 1);
    let (lines, vessels) = h.baseline();
    let base = h.run(&lines, &vessels, ChaosEngine::Serial);
    let kills = [(3 * 3_600, 5u32)];
    for engine in [ChaosEngine::Serial, ChaosEngine::Incremental] {
        let got = h.run_with_kills(&lines, &vessels, engine, &kills);
        if let Err(v) = check_identical(
            "single-band-kill",
            &base.observation,
            &got.observation,
        ) {
            panic!("engine {}: {v}", engine.label());
        }
    }
}
