//! End-to-end observability: a full pipeline run (NMEA decode included)
//! must light up the metric registry across every stage, and the
//! MMSI-sharded tracker must account for exactly the same work as the
//! serial one.
//!
//! Both tests read *deltas* of the process-global registry, so they hold
//! a shared lock to serialize against each other within this binary.

use std::sync::Mutex;

use maritime::prelude::*;
use maritime_ais::nmea::encode_report;
use maritime_obs::names;

/// Serializes tests that measure global-registry deltas.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Decodes the simulated fleet through the real NMEA scanner (so the
/// `ais_*` counters move too) and runs the full pipeline.
fn run_pipeline(seed: u64, shards: usize) -> RunReport {
    let sim = FleetSimulator::new(FleetConfig::tiny(seed));
    let mut scanner = DataScanner::new();
    let tuples: Vec<PositionTuple> = sim
        .generate()
        .iter()
        .filter_map(|r| scanner.scan(&encode_report(r), r.timestamp))
        .collect();
    assert!(!tuples.is_empty(), "scanner must decode the synthetic fleet");

    let areas = maritime_geo::aegean::generate_areas(&maritime_geo::aegean::AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
    let config = SurveillanceConfig {
        parallelism: Parallelism {
            tracker_shards: shards,
            recognition_bands: 1,
        },
        ..SurveillanceConfig::default()
    };
    let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();
    pipeline.run(tuples)
}

#[test]
fn full_run_lights_up_every_stage() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let before = maritime_obs::snapshot();
    run_pipeline(41, 1);
    let after = maritime_obs::snapshot();

    // Count metrics whose reading moved during the run (counter/histogram
    // growth; gauges excluded — they may legitimately return to their
    // starting level).
    let mut moved: Vec<&str> = Vec::new();
    for entry in &after.entries {
        let name = entry.descriptor.name;
        let grew = match (before.get(name).map(|e| e.value), entry.value) {
            (Some(maritime_obs::MetricValue::Counter(b)), maritime_obs::MetricValue::Counter(a)) => {
                a > b
            }
            (
                Some(maritime_obs::MetricValue::Histogram(b)),
                maritime_obs::MetricValue::Histogram(a),
            ) => a.count > b.count,
            _ => false,
        };
        if grew {
            moved.push(name);
        }
    }
    assert!(
        moved.len() >= 20,
        "expected >= 20 metrics to move in a full run, got {}: {moved:?}",
        moved.len()
    );
    for prefix in ["ais_", "tracker_", "stream_", "rtec_", "cer_", "modstore_", "pipeline_"] {
        assert!(
            moved.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* metric moved during a full pipeline run: {moved:?}"
        );
    }
}

/// Counters the sharded tracker must account for identically to the
/// serial one: shards partition the fleet by MMSI, so per-vessel work is
/// invariant under sharding.
const SHARD_INVARIANT: &[&str] = &[
    names::TRACKER_POINTS_INGESTED,
    names::TRACKER_CRITICAL_POINTS,
    names::TRACKER_NOISE_DROPS,
    names::TRACKER_EVICTED_POINTS,
    names::CER_INPUT_EVENTS,
];

#[test]
fn sharded_counter_deltas_match_serial() {
    let _guard = REGISTRY_LOCK.lock().unwrap();

    let deltas = |shards: usize| -> Vec<u64> {
        let before = maritime_obs::snapshot();
        let report = run_pipeline(42, shards);
        let after = maritime_obs::snapshot();
        assert!(report.critical_points > 0);
        SHARD_INVARIANT
            .iter()
            .map(|n| after.counter(n) - before.counter(n))
            .collect()
    };

    let serial = deltas(1);
    let sharded = deltas(4);
    for ((name, s), p) in SHARD_INVARIANT.iter().zip(&serial).zip(&sharded) {
        assert!(*s > 0, "{name} did not move in the serial run");
        assert_eq!(s, p, "{name}: serial delta {s} != sharded delta {p}");
    }
}
