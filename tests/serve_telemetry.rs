//! Live telemetry end to end: the sample ring accumulates under real
//! socket load, `/metrics/history` and `/dashboard` serve it, and the
//! SLO health engine drives `/healthz` ok → degraded → ok on a
//! half-open (connected but silent) source, with machine-readable ops
//! lines on the subscriber wire.
//!
//! Both tests run servers against the *global* metrics registry, so
//! they serialize on a mutex: the health test's rate-collapse rule
//! keys on "zero lines arrived this interval", which a concurrently
//! feeding test would mask.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration as StdDuration, Instant};

use maritime::serve::{self, ServeOptions, SloThresholds};
use maritime::SurveillanceConfig;
use maritime_cer::VesselInfo;
use maritime_chaos::{demo_sentences, StreamLine};
use maritime_geo::aegean::{generate_areas, AreaGenConfig};
use maritime_stream::{Duration, WindowSpec};

static SERIAL: Mutex<()> = Mutex::new(());

/// The proven-nontrivial world of `serve_end_to_end`: raises alerts,
/// so the per-rule CE families are guaranteed to gain members.
fn world() -> (Vec<StreamLine>, Vec<VesselInfo>) {
    demo_sentences(0xC4A05, 30, 8)
}

fn config() -> SurveillanceConfig {
    SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5))
            .expect("valid tracking window"),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30))
            .expect("valid recognition window"),
        ..SurveillanceConfig::default()
    }
}

fn options(vessels: Vec<VesselInfo>, sample_ms: u64, slo: SloThresholds) -> ServeOptions {
    ServeOptions {
        config: config(),
        vessels,
        areas: generate_areas(&AreaGenConfig::default()),
        sample_interval: StdDuration::from_millis(sample_ms),
        history_capacity: 64,
        slo,
        ..ServeOptions::default()
    }
}

/// HTTP/1.0 GET returning (status line, body) — `/healthz` answers 503
/// when critical, so unlike the end-to-end suite this helper must not
/// assert 200.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("http connects");
    stream
        .set_read_timeout(Some(StdDuration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nhost: test\r\n\r\n").as_bytes())
        .expect("http request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("http response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Polls `/healthz` until its first body line equals `want`.
fn await_health(addr: std::net::SocketAddr, want: &str, secs: u64) {
    let deadline = Instant::now() + StdDuration::from_secs(secs);
    loop {
        let (_, body) = http_get(addr, "/healthz");
        let state = body.lines().next().unwrap_or_default();
        if state == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "/healthz never reached {want:?}; last answer:\n{body}"
        );
        std::thread::sleep(StdDuration::from_millis(30));
    }
}

#[test]
fn sample_ring_accumulates_and_serves_history_under_load() {
    let _serial = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (lines, vessels) = world();
    let handle =
        serve::start(options(vessels, 100, SloThresholds::default())).expect("server starts");
    let baseline = handle
        .telemetry()
        .ring()
        .latest()
        .expect("the driver seeds the ring before accepting traffic");
    let fed_at = baseline.snapshot.counter("serve_sentences_total");

    let mut feed = TcpStream::connect(handle.nmea_tcp.unwrap()).expect("feed connects");
    let mut buf = String::new();
    for (t, line) in &lines {
        buf.push_str(&format!("{t} {line}\n"));
    }
    feed.write_all(buf.as_bytes()).expect("feed writes");
    feed.write_all(b"#flush\n").expect("flush control");
    feed.flush().expect("feed flush");

    // The ring must record the traffic within a few sampling periods.
    let deadline = Instant::now() + StdDuration::from_secs(30);
    loop {
        let latest = handle.telemetry().ring().latest().expect("ring seeded");
        let sentences = latest.snapshot.counter("serve_sentences_total");
        if sentences >= fed_at + lines.len() as u64 && handle.telemetry().ring().len() >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ring never recorded the fed traffic: {} samples, {} sentences (wanted {})",
            handle.telemetry().ring().len(),
            sentences,
            fed_at + lines.len() as u64
        );
        std::thread::sleep(StdDuration::from_millis(50));
    }

    // Samples are strictly ordered and sentence counts are monotone.
    let samples = handle.telemetry().ring().samples();
    for pair in samples.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sample seq must increase");
        assert!(pair[0].at_ns <= pair[1].at_ns, "sample time must not go backwards");
        assert!(
            pair[0].snapshot.counter("serve_sentences_total")
                <= pair[1].snapshot.counter("serve_sentences_total"),
            "counters are monotone across samples"
        );
    }

    // The HTTP surfaces serve the same ring.
    let http = handle.http.unwrap();
    let (status, history) = http_get(http, "/metrics/history");
    assert!(status.contains("200"), "history status: {status}");
    assert!(
        history.matches("\"seq\":").count() >= 3,
        "history must carry several samples:\n{}",
        &history[..history.len().min(400)]
    );
    assert!(history.contains("\"serve_sentences_total\""));

    let (status, page) = http_get(http, "/dashboard");
    assert!(status.contains("200"), "dashboard status: {status}");
    assert!(page.contains("health: ok"), "server-rendered health line");
    assert!(page.contains("/metrics/history"), "dashboard polls the ring");

    // The sampler mirrored per-source verdicts into labeled families,
    // and recognition populated the per-rule families (the world is
    // guaranteed to raise alerts).
    let (_, metrics) = http_get(http, "/metrics");
    assert!(
        metrics.contains("serve_source_lines_total{source="),
        "per-source family missing:\n{}",
        &metrics[..metrics.len().min(400)]
    );
    assert!(
        metrics.contains("cer_rule_recognized_total{rule="),
        "per-rule family missing"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn half_open_source_degrades_health_and_recovery_is_announced() {
    let _serial = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (lines, vessels) = world();
    // Tight staleness so the test turns around fast; critical pushed out
    // of reach so the probe exercises ok <-> degraded specifically.
    let slo = SloThresholds {
        stale_intervals: 2,
        critical_after: 10_000,
        ..SloThresholds::default()
    };
    let handle = serve::start(options(vessels, 120, slo)).expect("server starts");
    let http = handle.http.unwrap();

    // An ops-line observer on the ordinary subscriber wire.
    let sub = TcpStream::connect(handle.subscribe.unwrap()).expect("subscriber connects");
    sub.set_read_timeout(Some(StdDuration::from_millis(200))).expect("read timeout");
    let mut sub = BufReader::new(sub);

    // A half-open source: connects, says a few lines, then goes silent
    // while holding the socket open.
    let mut feed = TcpStream::connect(handle.nmea_tcp.unwrap()).expect("feed connects");
    for (t, line) in &lines[..4] {
        writeln!(feed, "{t} {line}").expect("feed writes");
    }
    feed.flush().expect("feed flush");

    await_health(http, "degraded", 30);
    let (status, body) = http_get(http, "/healthz");
    assert!(status.contains("200"), "degraded must stay 200 (liveness), got {status}");
    assert!(body.contains("rate_collapse"), "breach detail names the rule:\n{body}");

    // Resume traffic — keep lines flowing while polling so the state
    // holds long enough to observe (a stopped feed re-degrades).
    let mut resumed = lines[4..].iter().cycle();
    let deadline = Instant::now() + StdDuration::from_secs(30);
    loop {
        let (t, line) = resumed.next().expect("cycle never ends");
        writeln!(feed, "{t} {line}").expect("feed resumes");
        feed.flush().expect("feed flush");
        let (_, body) = http_get(http, "/healthz");
        if body.lines().next() == Some("ok") {
            break;
        }
        assert!(Instant::now() < deadline, "health never recovered:\n{body}");
        std::thread::sleep(StdDuration::from_millis(30));
    }

    // Both transitions were announced on the subscriber wire.
    let mut saw_degraded = false;
    let mut saw_recovered = false;
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while !(saw_degraded && saw_recovered) && Instant::now() < deadline {
        let mut line = String::new();
        match sub.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.starts_with("{\"type\":\"ops\"") => {
                saw_degraded |= line.contains("\"state\":\"degraded\"");
                saw_recovered |= line.contains("\"state\":\"ok\"");
            }
            Ok(_) => {}    // ordinary wire events interleave freely
            Err(_) => {}   // poll timeout; transitions may still be coming
        }
    }
    assert!(saw_degraded, "no ops line announced the degradation");
    assert!(saw_recovered, "no ops line announced the recovery");

    // The transition counters reach the ring one tick after the
    // transition itself (the snapshot is taken before evaluation), so
    // allow a few sampling periods.
    let deadline = Instant::now() + StdDuration::from_secs(10);
    loop {
        let latest = handle.telemetry().ring().latest().expect("ring seeded");
        if latest.snapshot.counter("serve_health_transitions_total") >= 2
            && latest.snapshot.counter("serve_ops_alerts_total") >= 2
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "transitions never reached the sampled counters: {} transitions, {} ops alerts",
            latest.snapshot.counter("serve_health_transitions_total"),
            latest.snapshot.counter("serve_ops_alerts_total")
        );
        std::thread::sleep(StdDuration::from_millis(50));
    }

    handle.shutdown();
    handle.join();
}
