//! Guard bench: the metrics opt-out must be (nearly) free.
//!
//! `SurveillanceConfig { metrics: MetricsMode::Off, .. }` flips a global
//! `AtomicBool` that every counter/gauge/histogram update checks first,
//! so the disabled path is one relaxed load and a predicted branch per
//! would-be update. This harness measures tracker throughput — the
//! hottest instrumented path (two counter updates per positional tuple) —
//! with metrics enabled and disabled, interleaved, and **asserts** that
//! the disabled path is within 1 % of the enabled one on min-of-K timing
//! (the disabled path does strictly less work, so the bound holds with
//! plenty of margin; a regression here means the opt-out stopped
//! short-circuiting).
//!
//! Custom `main` instead of criterion: the point is a pass/fail guard,
//! not a statistics report.
//!
//! ```text
//! cargo bench -p maritime-bench --bench obs_overhead
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

use maritime::prelude::*;
use maritime_bench::{Scale, Workload};
use maritime_obs::SpanTimer;

/// One full-stream tracking pass; returns critical-point count so the
/// work cannot be optimized away.
fn track_stream(tuples: &[PositionTuple]) -> usize {
    let mut tracker = MobilityTracker::new(TrackerParams::default());
    let mut n = 0usize;
    for t in tuples {
        n += tracker.process(*t).len();
    }
    n + tracker.finish().len()
}

/// One timed tracking pass under the given metrics switch.
fn timed_pass(tuples: &[PositionTuple], enabled: bool) -> (Duration, usize) {
    maritime_obs::set_enabled(enabled);
    let t0 = Instant::now();
    let checksum = track_stream(tuples);
    (t0.elapsed(), checksum)
}

fn main() {
    const TRIALS: usize = 9;

    let workload = Workload::build(Scale::Small);
    let tuples = workload.tuples();
    println!(
        "tracker overhead guard: {} tuples, interleaved min-of-{TRIALS} per mode",
        tuples.len()
    );

    // Warm-up (page-in, lazy metric registration).
    let _ = track_stream(&tuples);

    // Interleave on/off trials so clock drift, frequency scaling, and
    // cache warm-up hit both modes equally; take the per-mode minimum —
    // the standard low-noise estimator for a fixed workload, since every
    // source of interference only ever adds time.
    let mut enabled = Duration::MAX;
    let mut disabled = Duration::MAX;
    let mut n_on = 0usize;
    let mut n_off = 0usize;
    for _ in 0..TRIALS {
        let (t, n) = timed_pass(&tuples, true);
        enabled = enabled.min(t);
        n_on = n;
        let (t, n) = timed_pass(&tuples, false);
        disabled = disabled.min(t);
        n_off = n;
    }
    maritime_obs::set_enabled(true);
    assert_eq!(n_on, n_off, "metrics switch must not change tracker output");

    let ratio = disabled.as_secs_f64() / enabled.as_secs_f64();
    println!(
        "  metrics on : {enabled:>10.3?}\n  metrics off: {disabled:>10.3?}\n  off/on ratio: {ratio:.4}"
    );
    assert!(
        ratio <= 1.01,
        "disabled-metrics path is {:.2}% slower than enabled — the opt-out \
         no longer short-circuits (expected < 1%)",
        (ratio - 1.0) * 100.0
    );
    println!("  OK: disabled path within 1% of enabled");

    disabled_span_guard();
}

/// Guard: `SpanTimer::disabled()` must never touch the clock. A live span
/// pays two `Instant::now()` calls (construction and drop); the disabled
/// constructor carries no `Instant` at all, so a construct+finish cycle
/// must be decisively cheaper than a live one — not merely "within 1%".
fn disabled_span_guard() {
    const SPANS: usize = 1_000_000;
    const TRIALS: usize = 9;
    let sink = maritime_obs::histogram("bench_span_guard_ns");

    let mut live = Duration::MAX;
    let mut dead = Duration::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..SPANS {
            black_box(SpanTimer::from_histogram(sink)).finish();
        }
        live = live.min(t0.elapsed());

        let t0 = Instant::now();
        for _ in 0..SPANS {
            black_box(SpanTimer::disabled()).finish();
        }
        dead = dead.min(t0.elapsed());
    }

    let ratio = dead.as_secs_f64() / live.as_secs_f64();
    println!(
        "disabled-span guard: {SPANS} spans, min-of-{TRIALS}\n  live span : {live:>10.3?}\n  \
         disabled  : {dead:>10.3?}\n  disabled/live ratio: {ratio:.4}"
    );
    assert!(
        ratio <= 0.5,
        "a disabled span costs {:.0}% of a live one — it is reading the \
         clock again (expected the branch-only fast path, < 50%)",
        ratio * 100.0
    );
    println!("  OK: disabled span skips the clock entirely");
}
