//! Criterion benches for the geospatial substrate, including the
//! grid-index vs linear-scan ablation for the `close/3` predicate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maritime::prelude::*;
use maritime_geo::{destination, haversine_distance_m, GridIndex};

fn probe_points(n: usize) -> Vec<GeoPoint> {
    // Deterministic scatter across the Aegean extent.
    (0..n)
        .map(|i| {
            let lon = 20.0 + (i * 7919 % 1_000) as f64 / 1_000.0 * 8.0;
            let lat = 35.0 + (i * 104_729 % 1_000) as f64 / 1_000.0 * 5.5;
            GeoPoint::new(lon, lat)
        })
        .collect()
}

fn bench_close_predicate(c: &mut Criterion) {
    let areas = generate_areas(&AreaGenConfig::default());
    let index = GridIndex::build(areas, 0.2, 2_000.0);
    let probes = probe_points(10_000);

    let mut group = c.benchmark_group("close_predicate");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("grid_index", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| index.close_area_ids(*p).len())
                .sum::<usize>()
        });
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| index.close_area_ids_linear(*p).len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_candidate_lookup(c: &mut Criterion) {
    let areas = generate_areas(&AreaGenConfig::default());
    let index = GridIndex::build(areas, 0.2, 2_000.0);
    let probes = probe_points(10_000);

    let mut group = c.benchmark_group("candidate_lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));
    // Borrowed-slice lookup: no allocation per probe (see the
    // `candidate_lookup_allocates_nothing` test in maritime-geo).
    group.bench_function("borrowed_slice", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| index.candidates(*p).len())
                .sum::<usize>()
        });
    });
    // The pre-refactor behavior: clone the cell's candidate list into a
    // fresh Vec on every probe.
    group.bench_function("cloned_vec", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| index.candidates(*p).to_vec().len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let probes = probe_points(10_000);
    let mut group = c.benchmark_group("geo_primitives");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("haversine", |b| {
        b.iter(|| {
            probes
                .windows(2)
                .map(|w| haversine_distance_m(w[0], w[1]))
                .sum::<f64>()
        });
    });
    group.bench_function("destination", |b| {
        b.iter(|| {
            probes
                .iter()
                .enumerate()
                .map(|(i, p)| destination(*p, (i % 360) as f64, 1_000.0).lon)
                .sum::<f64>()
        });
    });
    let polygon = Polygon::circle(GeoPoint::new(24.0, 37.5), 10_000.0, 32);
    group.bench_function("polygon_contains", |b| {
        b.iter(|| probes.iter().filter(|p| polygon.contains(**p)).count());
    });
    group.finish();
}

criterion_group!(benches, bench_close_predicate, bench_candidate_lookup, bench_primitives);
criterion_main!(benches);
