//! Criterion bench for the full trajectory-maintenance pipeline
//! (Figure 10): tracking + staging + reconstruction + loading.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maritime::prelude::*;
use maritime_bench::{Scale, Workload};

fn bench_pipeline_maintenance(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let mut group = c.benchmark_group("fig10_maintenance");
    group.sample_size(10);
    for (range_h, slide_min, label) in
        [(1i64, 10i64, "w1h_b10m"), (6, 60, "w6h_b1h"), (24, 60, "w24h_b1h")]
    {
        let config = SurveillanceConfig {
            tracking_window: WindowSpec::new(
                Duration::hours(range_h),
                Duration::minutes(slide_min),
            )
            .unwrap(),
            recognition_window: WindowSpec::new(
                Duration::hours(range_h.max(6)),
                Duration::minutes(slide_min.max(60)),
            )
            .unwrap(),
            ..SurveillanceConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let mut pipeline =
                    SurveillancePipeline::new(config, w.vessels.clone(), w.areas.clone())
                        .unwrap();
                let report = pipeline.run(w.tuples());
                report.critical_points
            });
        });
    }
    group.finish();
}

/// Archive loading and analytics in isolation.
fn bench_archive_analytics(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let config = SurveillanceConfig::default();
    let mut pipeline =
        SurveillancePipeline::new(&config, w.vessels.clone(), w.areas.clone()).unwrap();
    pipeline.run(w.tuples());
    let trips: Vec<Trip> = pipeline.archive().trips().to_vec();

    let mut group = c.benchmark_group("archive_analytics");
    group.sample_size(10);
    group.bench_function("load_trips", |b| {
        b.iter(|| {
            let mut store = TrajectoryStore::new();
            store.load(trips.clone());
            store.trip_count()
        });
    });
    let store = pipeline.archive();
    group.bench_function("od_matrix", |b| {
        b.iter(|| store.od_matrix().len());
    });
    group.bench_function("cluster_trips", |b| {
        b.iter(|| maritime_modstore::cluster::cluster_trips(store, 3_000.0, 8).len());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_maintenance, bench_archive_analytics);
criterion_main!(benches);
