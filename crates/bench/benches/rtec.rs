//! Criterion benches for the RTEC engine: interval construction (maximal
//! intervals vs naive per-timepoint evaluation) and windowed recognition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maritime_rtec::{
    Duration, Engine, EventDescription, FluentDef, IntervalList, Timestamp, Trigger, WindowSpec,
};

fn alternating_points(n: usize) -> (Vec<Timestamp>, Vec<Timestamp>) {
    let inits = (0..n).map(|i| Timestamp((i * 20) as i64)).collect();
    let terms = (0..n).map(|i| Timestamp((i * 20 + 10) as i64)).collect();
    (inits, terms)
}

/// Maximal-interval construction vs the naive alternative of answering
/// every holdsAt probe by scanning the point lists.
fn bench_interval_construction(c: &mut Criterion) {
    let (inits, terms) = alternating_points(5_000);
    let probes: Vec<Timestamp> = (0..10_000).map(|i| Timestamp(i * 10 + 5)).collect();

    let mut group = c.benchmark_group("interval_representation");
    group.throughput(Throughput::Elements(probes.len() as u64));

    group.bench_function("maximal_intervals_then_binary_search", |b| {
        b.iter(|| {
            let il = IntervalList::from_points(&inits, &terms, None);
            probes.iter().filter(|t| il.holds_at(**t)).count()
        });
    });

    group.bench_function("naive_per_timepoint_scan", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|t| {
                    // holdsAt by definition: last initiation before t not
                    // followed by a termination in (ts, t].
                    let last_init = inits.iter().rev().find(|i| **i < **t);
                    match last_init {
                        None => false,
                        Some(ts) => !terms.iter().any(|f| f > ts && *f <= **t),
                    }
                })
                .count()
        });
    });
    group.finish();
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    On(u32),
    Off(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Active(u32);

fn description() -> EventDescription<(), Ev, Active, ()> {
    EventDescription::new().fluent(
        FluentDef::new("active")
            .initiated(|_, _, trig: Trigger<'_, Ev, Active>, _| match trig.input() {
                Some(Ev::On(id)) => vec![Active(*id)],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Active>, _| match trig.input() {
                Some(Ev::Off(id)) => vec![Active(*id)],
                _ => vec![],
            }),
    )
}

/// Engine recognition cost as a function of working-memory size.
fn bench_engine_recognition(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_recognition");
    group.sample_size(20);
    for n_events in [1_000usize, 10_000, 50_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_events}_events")),
            &n_events,
            |b, &n| {
                let events: Vec<(Timestamp, Ev)> = (0..n)
                    .map(|i| {
                        let id = (i % 100) as u32;
                        let t = Timestamp(i as i64);
                        if (i / 100) % 2 == 0 {
                            (t, Ev::On(id))
                        } else {
                            (t, Ev::Off(id))
                        }
                    })
                    .collect();
                b.iter(|| {
                    let spec =
                        WindowSpec::new(Duration::secs(n as i64 + 1), Duration::secs(100))
                            .unwrap();
                    let mut engine = Engine::new((), description(), spec);
                    engine.add_events(events.iter().cloned());
                    let r = engine.recognize_at(Timestamp(n as i64));
                    r.fluents.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interval_construction, bench_engine_recognition);
criterion_main!(benches);
