//! Criterion benches for the trajectory detection component (Figures 6–7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maritime::prelude::*;
use maritime_bench::{Scale, Workload};

/// Per-tuple tracker throughput: the hot path of the whole system.
fn bench_tracker_throughput(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let tuples = w.tuples();
    let mut group = c.benchmark_group("tracker_throughput");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.sample_size(10);
    group.bench_function("process_full_stream", |b| {
        b.iter(|| {
            let mut tracker = MobilityTracker::new(TrackerParams::default());
            let mut n = 0usize;
            for t in &tuples {
                n += tracker.process(*t).len();
            }
            n + tracker.finish().len()
        });
    });
    group.finish();
}

/// Figure 6 analogue: per-slide cost for different window geometries.
fn bench_windowed_slides(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let mut group = c.benchmark_group("fig6_tracking_per_window");
    group.sample_size(10);
    for (range_h, slide_min) in [(1i64, 5i64), (1, 30), (6, 60)] {
        let spec =
            WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{range_h}h_b{slide_min}m")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut wt = WindowedTracker::new(TrackerParams::default(), *spec);
                    let mut total = 0usize;
                    for batch in
                        SlideBatches::new(w.stream.iter().cloned(), *spec, Timestamp::ZERO)
                    {
                        let tuples: Vec<PositionTuple> =
                            batch.items.into_iter().map(|(_, t)| t).collect();
                        total += wt.slide(batch.query_time, &tuples).fresh_critical.len();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// Figure 7 analogue: the same stream compressed to higher arrival rates.
fn bench_arrival_rates(c: &mut Criterion) {
    use maritime_ais::replay::at_rate;
    let w = Workload::build(Scale::Small);
    let spec = WindowSpec::new(Duration::minutes(10), Duration::minutes(1)).unwrap();
    let mut group = c.benchmark_group("fig7_arrival_rates");
    group.sample_size(10);
    for rate in [1_000.0, 5_000.0, 10_000.0] {
        let fast = at_rate(&w.stream, rate);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rate}pos_per_s")),
            &fast,
            |b, stream| {
                b.iter(|| {
                    let mut wt = WindowedTracker::new(TrackerParams::default(), spec);
                    let mut total = 0usize;
                    for batch in SlideBatches::new(stream.iter().cloned(), spec, Timestamp::ZERO)
                    {
                        let tuples: Vec<PositionTuple> =
                            batch.items.into_iter().map(|(_, t)| t).collect();
                        total += wt.slide(batch.query_time, &tuples).fresh_critical.len();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// Sharded-tracker scaling: the same windowed workload fanned out over
/// 1, 2, 4, and 8 MMSI-hash shards. One shard measures the channel and
/// merge overhead against the serial `WindowedTracker` baseline above;
/// the higher counts measure parallel speed-up.
fn bench_sharded_tracking(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(30)).unwrap();
    let mut group = c.benchmark_group("sharded_tracking");
    group.throughput(Throughput::Elements(w.stream.len() as u64));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}shards")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut st = ShardedTracker::new(TrackerParams::default(), spec, shards);
                    let mut total = 0usize;
                    for batch in
                        SlideBatches::new(w.stream.iter().cloned(), spec, Timestamp::ZERO)
                    {
                        let tuples: Vec<PositionTuple> =
                            batch.items.into_iter().map(|(_, t)| t).collect();
                        total += st.slide(batch.query_time, &tuples).merged.fresh_critical.len();
                    }
                    total + st.finish().0.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tracker_throughput,
    bench_windowed_slides,
    bench_arrival_rates,
    bench_sharded_tracking
);
criterion_main!(benches);
