//! Criterion benches for complex event recognition (Figure 11) and the
//! compression ablation (critical points vs raw-position-sized input).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maritime::prelude::*;
use maritime_bench::{Scale, Workload};
use maritime_cer::{partition, spatial, Knowledge, MaritimeRecognizer, SpatialMode};

fn recognize_all(
    events: &[(Timestamp, maritime_cer::InputEvent)],
    w: &Workload,
    spec: WindowSpec,
    mode: SpatialMode,
    queries: &[Timestamp],
) -> usize {
    let kb = Knowledge::new(w.vessels.iter().copied(), w.areas.clone(), 2_000.0, mode);
    let mut r = MaritimeRecognizer::new(kb, spec);
    r.add_events(events.iter().cloned());
    queries
        .iter()
        .map(|q| r.recognize_and_summarize(*q).ce_count)
        .sum()
}

/// Figure 11(a)/(b): recognition cost per window range, both spatial modes.
fn bench_recognition_modes(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let me_stream = w.me_stream(TrackerParams::default());
    let span_end = Timestamp::ZERO + w.span();

    let mut group = c.benchmark_group("fig11_recognition");
    group.sample_size(10);
    for range_h in [1i64, 6] {
        let spec = WindowSpec::new(Duration::hours(range_h), Duration::hours(1)).unwrap();
        let queries = spec.query_times(Timestamp::ZERO, span_end);

        group.bench_with_input(
            BenchmarkId::from_parameter(format!("on_demand_w{range_h}h")),
            &spec,
            |b, spec| {
                b.iter(|| recognize_all(&me_stream, &w, *spec, SpatialMode::OnDemand, &queries));
            },
        );

        let mut annotated = me_stream.clone();
        let kb = Knowledge::standard(w.vessels.iter().copied(), w.areas.clone());
        spatial::annotate_with_spatial_facts(&mut annotated, &kb);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("precomputed_w{range_h}h")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    recognize_all(&annotated, &w, *spec, SpatialMode::Precomputed, &queries)
                });
            },
        );
    }
    group.finish();
}

/// Figure 11 parallel panel: 1 vs 2 vs 4 geographic partitions.
fn bench_partitioned(c: &mut Criterion) {
    let w = Workload::build(Scale::Small);
    let me_stream = w.me_stream(TrackerParams::default());
    let span_end = Timestamp::ZERO + w.span();
    let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
    let queries = spec.query_times(Timestamp::ZERO, span_end);

    let mut group = c.benchmark_group("fig11_partitioning");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        let partitioner = if n == 2 {
            partition::GeoPartitioner::east_west()
        } else {
            partition::GeoPartitioner::balanced(n, &me_stream)
        };
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}proc")), &n, |b, _| {
            b.iter(|| {
                let merged = partition::recognize_partitioned(
                    &partitioner,
                    &w.vessels,
                    &w.areas,
                    &me_stream,
                    spec,
                    &queries,
                    SpatialMode::OnDemand,
                );
                merged
                    .iter()
                    .map(partition::MergedSummary::ce_count)
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

/// Ablation: the CE recognizer fed the compressed ME stream versus an
/// uncompressed-size stream (one synthetic ME per raw position) — the
/// load reduction the trajectory detection component buys.
fn bench_compression_ablation(c: &mut Criterion) {
    use maritime_cer::{InputEvent, InputKind};
    let w = Workload::build(Scale::Small);
    let me_stream = w.me_stream(TrackerParams::default());
    // Raw-sized stream: every position becomes a Turn ME (worst case for
    // recognition input volume; rules mostly ignore turns, as in the real
    // input mix).
    let raw_stream: Vec<(Timestamp, InputEvent)> = w
        .stream
        .iter()
        .map(|(t, p)| {
            (
                *t,
                InputEvent {
                    mmsi: p.mmsi,
                    kind: InputKind::Turn,
                    position: p.position,
                    close_areas: None,
                },
            )
        })
        .collect();
    let span_end = Timestamp::ZERO + w.span();
    let spec = WindowSpec::new(Duration::hours(2), Duration::hours(1)).unwrap();
    let queries = spec.query_times(Timestamp::ZERO, span_end);

    let mut group = c.benchmark_group("compression_ablation");
    group.sample_size(10);
    group.bench_function(format!("critical_points_{}", me_stream.len()), |b| {
        b.iter(|| recognize_all(&me_stream, &w, spec, SpatialMode::OnDemand, &queries));
    });
    group.bench_function(format!("raw_positions_{}", raw_stream.len()), |b| {
        b.iter(|| recognize_all(&raw_stream, &w, spec, SpatialMode::OnDemand, &queries));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_recognition_modes,
    bench_partitioned,
    bench_compression_ablation
);
criterion_main!(benches);
