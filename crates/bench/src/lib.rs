//! Shared workload builders for the benchmark harness.
//!
//! Every experiment of §5 (Figures 6–11, Table 4) draws on the same
//! ingredients: a simulated fleet stream (the dataset substitute), the
//! 35 synthetic surveillance areas, the per-vessel static facts, and the
//! critical-movement-event stream the tracker derives. The builders here
//! are deterministic — the same scale and seed always produce the same
//! workload — so bench results are comparable across runs.

#![warn(missing_docs)]

use maritime::prelude::*;
use maritime_ais::replay::to_tuple_stream;
use maritime_cer::InputEvent;
use maritime_tracker::compression::measure_compression;

/// Workload scale for the figures harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick smoke runs (CI): 60 vessels, 12 h.
    Small,
    /// Default evaluation: 200 vessels, 48 h.
    Medium,
    /// Extended: 400 vessels, 72 h.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "large" => Some(Self::Large),
            _ => None,
        }
    }

    /// The fleet configuration at this scale.
    #[must_use]
    pub fn fleet_config(self) -> FleetConfig {
        let (vessels, hours) = match self {
            Self::Small => (60, 12),
            Self::Medium => (200, 48),
            Self::Large => (400, 72),
        };
        FleetConfig {
            vessels,
            duration: Duration::hours(hours),
            seed: 0xEDB7_2015,
            ..FleetConfig::default()
        }
    }
}

/// A fully-built evaluation workload.
pub struct Workload {
    /// The simulator (for vessel profiles).
    pub sim: FleetSimulator,
    /// The raw positional stream, time-sorted.
    pub stream: Vec<(Timestamp, PositionTuple)>,
    /// The 35 synthetic areas plus port basins.
    pub areas: Vec<Area>,
    /// Per-vessel static facts.
    pub vessels: Vec<VesselInfo>,
}

impl Workload {
    /// Builds the workload at a scale.
    #[must_use]
    pub fn build(scale: Scale) -> Self {
        let sim = FleetSimulator::new(scale.fleet_config());
        let stream = to_tuple_stream(&sim.generate());
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels = sim.profiles().iter().map(VesselInfo::from).collect();
        Self {
            sim,
            stream,
            areas,
            vessels,
        }
    }

    /// Raw tuples without timestamps keys.
    #[must_use]
    pub fn tuples(&self) -> Vec<PositionTuple> {
        self.stream.iter().map(|(_, t)| *t).collect()
    }

    /// The critical-point stream the tracker derives with `params` —
    /// the ME input of the CE recognition experiments.
    #[must_use]
    pub fn critical_points(&self, params: TrackerParams) -> Vec<CriticalPoint> {
        let (_, critical) = measure_compression(&self.tuples(), params);
        critical
    }

    /// The ME stream as recognizer input events.
    #[must_use]
    pub fn me_stream(&self, params: TrackerParams) -> Vec<(Timestamp, InputEvent)> {
        InputEvent::from_critical_batch(&self.critical_points(params))
    }

    /// Stream span in seconds.
    #[must_use]
    pub fn span(&self) -> Duration {
        match (self.stream.first(), self.stream.last()) {
            (Some((a, _)), Some((b, _))) => *b - *a,
            _ => Duration::ZERO,
        }
    }
}

/// Inflates a stream by replicating the fleet `factor` times with remapped
/// MMSIs — the cheap way to synthesize the position volumes of the
/// Figure 7 stress test ("every ship appears as reporting almost twice per
/// second") without simulating a six-thousand-vessel fleet from scratch.
/// Replicas are independent vessels to the tracker, so work scales
/// linearly and realistically.
#[must_use]
pub fn inflate_fleet(
    stream: &[(Timestamp, PositionTuple)],
    factor: usize,
) -> Vec<(Timestamp, PositionTuple)> {
    let mut out = Vec::with_capacity(stream.len() * factor.max(1));
    for k in 0..factor.max(1) {
        let offset = (k as u32) * 1_000_000;
        out.extend(stream.iter().map(|(t, p)| {
            (
                *t,
                PositionTuple {
                    mmsi: Mmsi(p.mmsi.0 % 1_000_000 + offset),
                    ..*p
                },
            )
        }));
    }
    out.sort_by_key(|(t, p)| (*t, p.mmsi));
    out
}

/// Simple fixed-width text table for harness output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn small_workload_builds() {
        let w = Workload::build(Scale::Small);
        assert!(!w.stream.is_empty());
        assert_eq!(w.vessels.len(), 60);
        assert!(w.areas.len() > 35);
        assert!(w.span() > Duration::hours(10));
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
