//! Hot-path throughput regression gate.
//!
//! Compares the most recent `figures` runs against every committed floor
//! trajectory (`BENCH_<name>.json` at the repo root, one per gated
//! benchmark) and fails if throughput fell below a floor by more than the
//! tolerance band. Five benchmarks are gated today: `hotpath` (the
//! decode→track stage, `figures hotpath`), `recognition` (the CE
//! stage, `figures recognition`), `ingest` (the `surveil serve`
//! driver path, `figures ingest`), `telemetry` (the sampler +
//! health-engine overhead leg, `figures telemetry`), and `partition`
//! (the coordinated multi-band scale table + checkpoint round trip,
//! `figures partition`).
//!
//! ```text
//! cargo run --release -p maritime-bench --bin figures -- hotpath
//! cargo run --release -p maritime-bench --bin figures -- recognition
//! cargo run --release -p maritime-bench --bin figures -- ingest
//! cargo run --release -p maritime-bench --bin perf_gate
//! PERF_BLESS=1 cargo run --release -p maritime-bench --bin perf_gate
//! ```
//!
//! Semantics, per benchmark:
//!
//! * **No committed floor yet** — the current run becomes the floor, a
//!   warning is printed, and the gate passes (warn-only first run). Commit
//!   the created `BENCH_<name>.json` to arm the gate.
//! * **Floor present** — the floor entry matching the current run's scale
//!   is compared field by field: every numeric field ending in `_per_sec`
//!   must be at least `floor × tolerance` (default 0.70 — absorbs
//!   runner-class variance between CI hosts while still failing a change
//!   that gives back the headline speedup), and every `critical` /
//!   `ce_count` field must match *exactly* — counts are workload
//!   invariants, independent of machine speed, so any drift is a
//!   correctness regression and fails the gate regardless of throughput.
//! * **`PERF_BLESS=1`** — append the current run as a new trajectory entry
//!   (the new floor) instead of comparing. Use after an intentional
//!   performance change; see TESTING.md.

use std::process::ExitCode;

use serde_json::{json, Value};

/// Gated benchmarks: floor `BENCH_<name>.json`, result
/// `bench-results/<name>.json`, both produced by `figures <name>`.
const BENCHES: [&str; 5] = ["hotpath", "recognition", "ingest", "telemetry", "partition"];
const DEFAULT_TOLERANCE: f64 = 0.70;

fn read_json(path: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_json(path: &str, value: &Value) {
    let text = serde_json::to_string_pretty(value).unwrap();
    std::fs::write(path, text + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Numeric field, whatever integer/float shape the writer chose.
fn num(v: Option<&Value>) -> Option<f64> {
    match v? {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn text(v: Option<&Value>) -> Option<&str> {
    match v? {
        Value::String(s) => Some(s),
        _ => None,
    }
}

/// Recursively compares a floor entry against the current run.
///
/// The walk follows the floor's object structure, so the gate needs no
/// per-benchmark schema: `*_per_sec` leaves are throughput floors
/// (`current ≥ floor × tolerance`), `critical`/`ce_count` leaves are
/// exact workload invariants, and everything else is informational.
fn check_entry(prefix: &str, floor: &Value, current: &Value, tolerance: f64, ok: &mut bool) {
    let Value::Object(fields) = floor else {
        return;
    };
    for (name, fval) in fields {
        let label = if prefix.is_empty() {
            name.clone()
        } else {
            format!("{prefix}.{name}")
        };
        match fval {
            Value::Object(_) => {
                let cur = current.get(name).cloned().unwrap_or(Value::Null);
                check_entry(&label, fval, &cur, tolerance, ok);
            }
            _ if name.ends_with("_per_sec") => {
                let f = num(Some(fval)).unwrap_or(0.0);
                let min = f * tolerance;
                let now = num(current.get(name)).unwrap_or(0.0);
                let pass = now >= min;
                *ok &= pass;
                println!(
                    "  {label:<34} floor {f:>12.0}  min {min:>12.0}  now {now:>12.0}  {}",
                    if pass { "ok" } else { "FAIL" }
                );
            }
            _ if name == "critical" || name == "ce_count" => {
                let want = num(Some(fval));
                let got = num(current.get(name));
                if want == got {
                    println!("  {label:<34} {} (exact match)", want.unwrap_or(0.0));
                } else {
                    *ok = false;
                    println!(
                        "  {label:<34} changed: floor {want:?}, now {got:?} — this is a \
                         correctness regression, not noise"
                    );
                }
            }
            _ => {}
        }
    }
}

/// Gates one benchmark; returns false on failure.
fn gate(name: &str, bless: bool) -> bool {
    let floor_path = format!("BENCH_{name}.json");
    let result_path = format!("bench-results/{name}.json");
    let Some(current) = read_json(&result_path) else {
        eprintln!("perf gate [{name}]: no {result_path} — run `figures {name}` first");
        return false;
    };
    let scale = text(current.get("scale")).unwrap_or("?").to_string();

    let Some(mut floor_file) = read_json(&floor_path) else {
        // First run: create the floor, warn, pass.
        write_json(
            &floor_path,
            &json!({ "tolerance": DEFAULT_TOLERANCE, "entries": [current] }),
        );
        println!(
            "perf gate [{name}]: no committed floor — created {floor_path} from this \
             run (warn-only). Commit it to arm the gate."
        );
        return true;
    };

    if bless {
        let Value::Object(fields) = &mut floor_file else {
            eprintln!("perf gate [{name}]: {floor_path} is not a JSON object");
            return false;
        };
        let Some(Value::Array(entries)) =
            fields.iter_mut().find(|(k, _)| k == "entries").map(|(_, v)| v)
        else {
            eprintln!("perf gate [{name}]: {floor_path} has no `entries` array");
            return false;
        };
        entries.push(current);
        write_json(&floor_path, &floor_file);
        println!(
            "perf gate [{name}]: PERF_BLESS=1 — appended this run to {floor_path} as \
             the new floor"
        );
        return true;
    }

    let tolerance = num(floor_file.get("tolerance")).unwrap_or(DEFAULT_TOLERANCE);
    let entries: &[Value] = match floor_file.get("entries") {
        Some(Value::Array(a)) => a,
        _ => &[],
    };
    let Some(floor) = entries
        .iter()
        .rev()
        .find(|e| text(e.get("scale")) == Some(scale.as_str()))
    else {
        println!("perf gate [{name}]: no floor entry at scale `{scale}` — passing (warn-only)");
        return true;
    };

    let mut ok = true;
    println!("perf gate [{name}]: scale `{scale}`, tolerance {tolerance:.2}");
    check_entry("", floor, &current, tolerance, &mut ok);
    ok
}

fn main() -> ExitCode {
    let bless = std::env::var("PERF_BLESS").is_ok_and(|v| v == "1");
    let mut ok = true;
    for name in BENCHES {
        ok &= gate(name, bless);
    }
    if ok {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate: FAIL — if this throughput change is intentional, re-bless \
             the floor with PERF_BLESS=1 (see TESTING.md)"
        );
        ExitCode::FAILURE
    }
}
