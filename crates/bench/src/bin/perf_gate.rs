//! Hot-path throughput regression gate.
//!
//! Compares the most recent `figures hotpath` run
//! (`bench-results/hotpath.json`) against the committed floor trajectory
//! (`BENCH_hotpath.json` at the repo root) and fails if throughput fell
//! below the floor by more than the tolerance band.
//!
//! ```text
//! cargo run --release -p maritime-bench --bin figures -- hotpath
//! cargo run --release -p maritime-bench --bin perf_gate
//! PERF_BLESS=1 cargo run --release -p maritime-bench --bin perf_gate
//! ```
//!
//! Semantics:
//!
//! * **No committed floor yet** — the current run becomes the floor, a
//!   warning is printed, and the gate passes (warn-only first run). Commit
//!   the created `BENCH_hotpath.json` to arm the gate.
//! * **Floor present** — each leg's `pos_per_sec` must be at least
//!   `floor × tolerance`. The tolerance band (default 0.70) absorbs
//!   runner-class variance between CI hosts while still failing a change
//!   that gives back the headline speedup. The end-to-end critical-point
//!   count is compared *exactly*: it is a workload invariant, independent
//!   of machine speed, so any drift is a correctness regression and fails
//!   the gate regardless of throughput.
//! * **`PERF_BLESS=1`** — append the current run as a new trajectory entry
//!   (the new floor) instead of comparing. Use after an intentional
//!   performance change; see TESTING.md.

use std::process::ExitCode;

use serde_json::{json, Value};

const FLOOR_PATH: &str = "BENCH_hotpath.json";
const RESULT_PATH: &str = "bench-results/hotpath.json";
const DEFAULT_TOLERANCE: f64 = 0.70;
const LEGS: [&str; 3] = ["decode", "track", "e2e"];

fn read_json(path: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_json(path: &str, value: &Value) {
    let text = serde_json::to_string_pretty(value).unwrap();
    std::fs::write(path, text + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Numeric field, whatever integer/float shape the writer chose.
fn num(v: Option<&Value>) -> Option<f64> {
    match v? {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn text(v: Option<&Value>) -> Option<&str> {
    match v? {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn pos_per_sec(entry: &Value, leg: &str) -> f64 {
    num(entry.get(leg).and_then(|l| l.get("pos_per_sec"))).unwrap_or(0.0)
}

fn e2e_critical(entry: &Value) -> Option<f64> {
    num(entry.get("e2e").and_then(|l| l.get("critical")))
}

fn main() -> ExitCode {
    let Some(current) = read_json(RESULT_PATH) else {
        eprintln!("perf gate: no {RESULT_PATH} — run `figures hotpath` first");
        return ExitCode::FAILURE;
    };
    let scale = text(current.get("scale")).unwrap_or("?").to_string();

    let floor_file = read_json(FLOOR_PATH);
    let bless = std::env::var("PERF_BLESS").is_ok_and(|v| v == "1");

    let Some(mut floor_file) = floor_file else {
        // First run: create the floor, warn, pass.
        write_json(
            FLOOR_PATH,
            &json!({ "tolerance": DEFAULT_TOLERANCE, "entries": [current] }),
        );
        println!(
            "perf gate: no committed floor — created {FLOOR_PATH} from this run \
             (warn-only). Commit it to arm the gate."
        );
        return ExitCode::SUCCESS;
    };

    if bless {
        let Value::Object(fields) = &mut floor_file else {
            eprintln!("perf gate: {FLOOR_PATH} is not a JSON object");
            return ExitCode::FAILURE;
        };
        let Some(Value::Array(entries)) =
            fields.iter_mut().find(|(k, _)| k == "entries").map(|(_, v)| v)
        else {
            eprintln!("perf gate: {FLOOR_PATH} has no `entries` array");
            return ExitCode::FAILURE;
        };
        entries.push(current);
        write_json(FLOOR_PATH, &floor_file);
        println!("perf gate: PERF_BLESS=1 — appended this run to {FLOOR_PATH} as the new floor");
        return ExitCode::SUCCESS;
    }

    let tolerance = num(floor_file.get("tolerance")).unwrap_or(DEFAULT_TOLERANCE);
    let entries: &[Value] = match floor_file.get("entries") {
        Some(Value::Array(a)) => a,
        _ => &[],
    };
    let Some(floor) = entries
        .iter()
        .rev()
        .find(|e| text(e.get("scale")) == Some(scale.as_str()))
    else {
        println!("perf gate: no floor entry at scale `{scale}` — passing (warn-only)");
        return ExitCode::SUCCESS;
    };

    let mut ok = true;
    println!("perf gate: scale `{scale}`, tolerance {tolerance:.2}");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>6}",
        "leg", "floor pos/s", "min pos/s", "now pos/s", ""
    );
    for leg in LEGS {
        let f = pos_per_sec(floor, leg);
        let min = f * tolerance;
        let now = pos_per_sec(&current, leg);
        let pass = now >= min;
        ok &= pass;
        println!(
            "{leg:<8} {f:>14.0} {min:>14.0} {now:>14.0} {:>6}",
            if pass { "ok" } else { "FAIL" }
        );
    }

    // Machine-independent invariant: the e2e critical-point count.
    let want = e2e_critical(floor);
    let got = e2e_critical(&current);
    if want != got {
        ok = false;
        println!(
            "e2e critical-point count changed: floor {want:?}, now {got:?} — \
             this is a correctness regression, not noise"
        );
    } else {
        println!("e2e critical points: {} (exact match)", got.unwrap_or(0.0));
    }

    if ok {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate: FAIL — if this throughput change is intentional, re-bless \
             the floor with PERF_BLESS=1 (see TESTING.md)"
        );
        ExitCode::FAILURE
    }
}
