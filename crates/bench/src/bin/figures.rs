//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p maritime-bench --release --bin figures            # all
//! cargo run -p maritime-bench --release --bin figures -- fig6    # one
//! cargo run -p maritime-bench --release --bin figures -- --scale small
//! ```
//!
//! Experiments: `fig6` (tracking cost vs window), `fig7` (arrival-rate
//! stress), `fig8` (trajectory RMSE), `fig9` (compression), `fig10`
//! (maintenance cost split), `table4` (archive statistics), `fig11`
//! (CE recognition, 1 vs 2 processors, with/without spatial facts),
//! `sharded` (tracker throughput at 1-8 MMSI-hash shards).
//!
//! Absolute times will differ from the paper (different hardware, a
//! simulated dataset at reduced scale); the *shapes* — linear growth in
//! β and ω, who wins, crossovers — are the reproduction targets. Results
//! are also written as JSON under `bench-results/`.

use std::time::Instant;

use maritime::prelude::*;
use maritime_bench::{Scale, TextTable, Workload};
use maritime_cer::{partition, spatial, Knowledge, MaritimeRecognizer, SpatialMode};
use maritime_tracker::accuracy::evaluate_accuracy;
use maritime_tracker::compression::measure_compression;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = it.next().expect("--scale needs a value");
            scale = Scale::parse(v).unwrap_or_else(|| panic!("unknown scale {v}"));
        } else {
            selected.push(a.clone());
        }
    }
    let all = [
        "fig6", "fig7", "fig8", "fig9", "fig10", "table4", "fig11", "baselines", "sharded",
        "incremental", "chaos", "hotpath", "recognition", "ingest", "telemetry", "partition",
    ];
    let run_list: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected.iter().map(String::as_str).collect()
    };

    std::fs::create_dir_all("bench-results").ok();
    // Record every stage span on the Chrome-trace timeline so the run
    // ships with a Perfetto-loadable profile of itself.
    maritime_obs::chrome::install();
    println!("building workload at {scale:?} scale ...");
    let t = Instant::now();
    let workload = Workload::build(scale);
    println!(
        "  {} vessels, {} positions over {:.1} h (built in {:.1?})\n",
        workload.vessels.len(),
        workload.stream.len(),
        workload.span().as_hours_f64(),
        t.elapsed()
    );

    for exp in run_list {
        match exp {
            "fig6" => fig6(&workload),
            "fig7" => fig7(&workload),
            "fig8" => fig8(&workload),
            "fig9" => fig9(&workload),
            "fig10" => fig10(&workload),
            "table4" => table4(&workload),
            "fig11" => fig11(&workload),
            "baselines" => baselines(&workload),
            "sharded" => sharded(&workload),
            "incremental" => incremental(&workload),
            "chaos" => chaos(),
            "hotpath" => hotpath(&workload, scale),
            "recognition" => recognition(&workload, scale),
            "ingest" => ingest(scale),
            "telemetry" => telemetry(scale),
            "partition" => partition_scale(&workload, scale),
            other => eprintln!("unknown experiment: {other}"),
        }
    }

    // The experiments above exercised every pipeline stage; dump the
    // accumulated metrics registry (see OBSERVABILITY.md) alongside the
    // figure data so a run's operational profile ships with its results.
    let snapshot = maritime_obs::snapshot();
    let path = "bench-results/metrics.json";
    if let Err(e) = std::fs::write(path, maritime_obs::encode::json(&snapshot)) {
        eprintln!("  (could not write {path}: {e})");
    } else {
        println!("metrics registry snapshot written to {path}");
    }

    // Stage-span timeline of the whole run, Chrome Trace Event format.
    let path = "bench-results/trace.json";
    if let Err(e) = std::fs::write(path, maritime_obs::chrome::export_json()) {
        eprintln!("  (could not write {path}: {e})");
    } else {
        println!("Chrome-trace timeline written to {path} (load in Perfetto)");
    }

    // Forced flight-recorder dump: exercises the anomaly-dump path on
    // every figures run so the artifact is always available from CI.
    let path = std::path::Path::new("bench-results/flight-dump.json");
    if let Err(e) = maritime_obs::flight::dump_to(path, "figures-forced") {
        eprintln!("  (could not write {}: {e})", path.display());
    } else {
        println!("flight recorder dumped to {}", path.display());
    }
}

fn save_json(name: &str, value: &serde_json::Value) {
    let path = format!("bench-results/{name}.json");
    if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
        eprintln!("  (could not write {path}: {e})");
    }
}

/// Average per-slide tracking cost for one window geometry.
fn tracking_cost_per_slide(
    stream: &[(Timestamp, PositionTuple)],
    spec: WindowSpec,
) -> (f64, usize) {
    let mut tracker = WindowedTracker::new(TrackerParams::default(), spec);
    let mut slides = 0usize;
    let t0 = Instant::now();
    for batch in SlideBatches::new(stream.iter().cloned(), spec, Timestamp::ZERO) {
        let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
        tracker.slide(batch.query_time, &tuples);
        slides += 1;
    }
    let total = t0.elapsed().as_secs_f64();
    (total / slides.max(1) as f64 * 1_000.0, slides)
}

/// Figure 6: online mobility tracking cost per window slide.
fn fig6(w: &Workload) {
    println!("== Figure 6: online tracking cost per window ==");
    let mut json = Vec::new();

    let mut small = TextTable::new(&["ω", "β (min)", "slides", "avg cost/slide (ms)"]);
    for range_h in [1i64, 2] {
        for slide_min in [5i64, 10, 15, 20, 30] {
            let spec =
                WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap();
            let (ms, slides) = tracking_cost_per_slide(&w.stream, spec);
            small.row(vec![
                format!("{range_h}h"),
                slide_min.to_string(),
                slides.to_string(),
                format!("{ms:.3}"),
            ]);
            json.push(serde_json::json!({
                "panel": "a", "range_h": range_h, "slide_min": slide_min,
                "slides": slides, "avg_ms": ms
            }));
        }
    }
    println!("-- (a) small window ranges --\n{}", small.render());

    let mut large = TextTable::new(&["ω", "β (h)", "slides", "avg cost/slide (ms)"]);
    for range_h in [6i64, 24] {
        for slide_min in [30i64, 60, 90, 120, 240] {
            let spec =
                WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap();
            let (ms, slides) = tracking_cost_per_slide(&w.stream, spec);
            large.row(vec![
                format!("{range_h}h"),
                format!("{:.1}", slide_min as f64 / 60.0),
                slides.to_string(),
                format!("{ms:.3}"),
            ]);
            json.push(serde_json::json!({
                "panel": "b", "range_h": range_h, "slide_min": slide_min,
                "slides": slides, "avg_ms": ms
            }));
        }
    }
    println!("-- (b) large window ranges --\n{}", large.render());
    println!("expected shape: cost grows ~linearly with β (more fresh positions per slide)\nand with ω; sub-second per slide at small ranges.\n");
    save_json("fig6", &serde_json::Value::Array(json));
}

/// Figure 7: tracking latency at increased arrival rates.
fn fig7(w: &Workload) {
    use maritime_ais::replay::at_rate;
    use maritime_bench::inflate_fleet;
    println!("== Figure 7: varying arrival rates (ω = 10 min, β = 1 min) ==");
    let spec = WindowSpec::new(Duration::minutes(10), Duration::minutes(1)).unwrap();
    let mut table = TextTable::new(&["ρ (pos/s)", "positions", "slides", "avg cost/slide (ms)"]);
    let mut json = Vec::new();
    for rate in [1_000.0, 2_000.0, 5_000.0, 10_000.0] {
        // Replicate the fleet so the rescaled stream still spans at least
        // ~10 slides of 1 minute at this rate (the paper compresses a
        // three-month stream; we compress a replicated multi-day one).
        let needed = (rate * 600.0) as usize;
        let factor = needed.div_ceil(w.stream.len()).max(1);
        let inflated = inflate_fleet(&w.stream, factor);
        let fast = at_rate(&inflated, rate);
        let (ms, slides) = tracking_cost_per_slide(&fast, spec);
        table.row(vec![
            format!("{rate}"),
            fast.len().to_string(),
            slides.to_string(),
            format!("{ms:.3}"),
        ]);
        json.push(serde_json::json!({
            "rate": rate, "positions": fast.len(), "slides": slides, "avg_ms": ms
        }));
    }
    println!("{}", table.render());
    println!("expected shape: latency grows with ρ but stays well below the 60 s slide.\n");
    save_json("fig7", &serde_json::Value::Array(json));
}

/// Figure 8: trajectory approximation RMSE vs Δθ.
fn fig8(w: &Workload) {
    println!("== Figure 8: trajectory approximation error ==");
    let tuples = w.tuples();
    let mut table = TextTable::new(&["Δθ (deg)", "avg RMSE (m)", "max RMSE (m)"]);
    let mut json = Vec::new();
    for dtheta in [5.0, 10.0, 15.0, 20.0] {
        let (_, critical) =
            measure_compression(&tuples, TrackerParams::with_turn_threshold(dtheta));
        let acc = evaluate_accuracy(&tuples, &critical);
        table.row(vec![
            format!("{dtheta}"),
            format!("{:.1}", acc.avg_rmse_m),
            format!("{:.1}", acc.max_rmse_m),
        ]);
        json.push(serde_json::json!({
            "dtheta": dtheta, "avg_rmse_m": acc.avg_rmse_m, "max_rmse_m": acc.max_rmse_m
        }));
    }
    println!("{}", table.render());
    println!("expected shape: both curves grow with Δθ (paper: avg ≤ 16 m, max 182 m on\nthe denser real dataset — our synthetic traces are sparser, so absolute\nerrors are larger, but the monotone trend must hold).\n");
    save_json("fig8", &serde_json::Value::Array(json));
}

/// Figure 9: compression ratio and critical-point counts vs Δθ.
fn fig9(w: &Workload) {
    println!("== Figure 9: compression for varying Δθ ==");
    let tuples = w.tuples();
    let mut table = TextTable::new(&["Δθ (deg)", "critical points", "compression ratio"]);
    let mut json = Vec::new();
    for dtheta in [5.0, 10.0, 15.0, 20.0] {
        let (rep, _) = measure_compression(&tuples, TrackerParams::with_turn_threshold(dtheta));
        table.row(vec![
            format!("{dtheta}"),
            rep.critical_points.to_string(),
            format!("{:.3}", rep.ratio),
        ]);
        json.push(serde_json::json!({
            "dtheta": dtheta, "critical": rep.critical_points, "ratio": rep.ratio
        }));
    }
    println!("{}", table.render());
    println!("expected shape: every +5° in Δθ drops the critical-point count; the ratio\nstays near ~94-97% (paper: ~94%).\n");
    save_json("fig9", &serde_json::Value::Array(json));
}

/// Figure 10: trajectory maintenance cost split by phase.
fn fig10(w: &Workload) {
    println!("== Figure 10: trajectory maintenance cost per slide ==");
    let mut table = TextTable::new(&[
        "window",
        "slides",
        "tracking (ms)",
        "staging (ms)",
        "reconstruction (ms)",
        "loading (ms)",
    ]);
    let mut json = Vec::new();
    for (range_h, slide_min, label) in
        [(1i64, 10i64, "ω=1h β=10min"), (6, 60, "ω=6h β=1h"), (24, 60, "ω=24h β=1h")]
    {
        let config = SurveillanceConfig {
            tracking_window: WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min))
                .unwrap(),
            recognition_window: WindowSpec::new(
                Duration::hours(range_h.max(6)),
                Duration::minutes(slide_min.max(60)),
            )
            .unwrap(),
            ..SurveillanceConfig::default()
        };
        let mut pipeline =
            SurveillancePipeline::new(&config, w.vessels.clone(), w.areas.clone()).unwrap();
        let mut slides = 0usize;
        let mut sums = [0.0f64; 4];
        for batch in
            SlideBatches::new(w.stream.iter().cloned(), config.tracking_window, Timestamp::ZERO)
        {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            let outcome = pipeline.slide(batch.query_time, &tuples);
            sums[0] += outcome.timings.tracking.as_secs_f64();
            sums[1] += outcome.timings.staging.as_secs_f64();
            sums[2] += outcome.timings.reconstruction.as_secs_f64();
            sums[3] += outcome.timings.loading.as_secs_f64();
            slides += 1;
        }
        let avg = |s: f64| s / slides.max(1) as f64 * 1_000.0;
        table.row(vec![
            label.to_string(),
            slides.to_string(),
            format!("{:.3}", avg(sums[0])),
            format!("{:.3}", avg(sums[1])),
            format!("{:.3}", avg(sums[2])),
            format!("{:.3}", avg(sums[3])),
        ]);
        json.push(serde_json::json!({
            "label": label, "slides": slides,
            "tracking_ms": avg(sums[0]), "staging_ms": avg(sums[1]),
            "reconstruction_ms": avg(sums[2]), "loading_ms": avg(sums[3])
        }));
    }
    println!("{}", table.render());
    println!("expected shape: tracking dominates and grows with window size; staging,\nreconstruction and loading stay small and roughly flat (paper: ≤ 260 ms,\n163 ms and 390 ms respectively on their hardware).\n");
    save_json("fig10", &serde_json::Value::Array(json));
}

/// Table 4: statistics from compressed trajectories.
fn table4(w: &Workload) {
    println!("== Table 4: statistics from compressed trajectories ==");
    let config = SurveillanceConfig::default();
    let mut pipeline =
        SurveillancePipeline::new(&config, w.vessels.clone(), w.areas.clone()).unwrap();
    let report = pipeline.run(w.tuples());
    println!("{}", report.archive);
    println!(
        "(raw positions: {}, compression: {:.1}%)\n",
        report.raw_positions,
        report.compression_ratio * 100.0
    );
    let a = &report.archive;
    save_json(
        "table4",
        &serde_json::json!({
            "points_in_trajectories": a.points_in_trajectories,
            "points_in_staging": a.points_in_staging,
            "trips": a.trips,
            "avg_trips_per_vessel": a.avg_trips_per_vessel,
            "avg_points_per_trip": a.avg_points_per_trip,
            "avg_travel_time_secs": a.avg_travel_time.as_secs(),
            "avg_distance_km": a.avg_distance_km,
            "raw_positions": report.raw_positions,
            "compression_ratio": report.compression_ratio,
        }),
    );
}

/// Extension: compression-vs-accuracy frontier against the related-work
/// baselines of §6 (Douglas-Peucker error-bounded simplification, online
/// dead reckoning).
fn baselines(w: &Workload) {
    use maritime_tracker::baselines::compare_methods;
    println!("== Baselines: compression vs accuracy frontier (paper §6 related work) ==");
    let tuples = w.tuples();
    let mut table = TextTable::new(&[
        "method",
        "retained",
        "compression",
        "avg RMSE (m)",
        "max RMSE (m)",
        "annotated MEs",
    ]);
    let mut json = Vec::new();
    let results = compare_methods(&tuples, TrackerParams::default(), 100.0, 200.0);
    for r in &results {
        table.row(vec![
            r.method.to_string(),
            r.retained.to_string(),
            format!("{:.3}", r.compression_ratio),
            format!("{:.1}", r.accuracy.avg_rmse_m),
            format!("{:.1}", r.accuracy.max_rmse_m),
            if r.method == "critical_points" { "yes" } else { "no" }.to_string(),
        ]);
        json.push(serde_json::json!({
            "method": r.method, "retained": r.retained,
            "compression": r.compression_ratio,
            "avg_rmse_m": r.accuracy.avg_rmse_m, "max_rmse_m": r.accuracy.max_rmse_m,
        }));
    }
    println!("{}", table.render());
    println!(
        "note: only critical points carry movement-event annotations, which is what\n\
         the CE recognition stage consumes - the baselines reduce data but discard\n\
         the semantics (\"we annotate reduced representations according to\n\
         particular movement events\", section 6).\n"
    );
    save_json("baselines", &serde_json::Value::Array(json));
}

/// Extension: sharded-tracker scaling — the full windowed tracking run
/// at 1, 2, 4 and 8 MMSI-hash shards against the serial baseline.
fn sharded(w: &Workload) {
    use maritime_tracker::ShardedTracker;
    println!("== Sharded tracking: MMSI-hash fan-out (omega = 1 h, beta = 30 min) ==");
    let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(30)).unwrap();

    let run_serial = || {
        let mut wt = WindowedTracker::new(TrackerParams::default(), spec);
        let t0 = Instant::now();
        let mut critical = 0usize;
        for batch in SlideBatches::new(w.stream.iter().cloned(), spec, Timestamp::ZERO) {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            critical += wt.slide(batch.query_time, &tuples).fresh_critical.len();
        }
        critical += wt.finish().0.len();
        (t0.elapsed().as_secs_f64(), critical)
    };
    let run_sharded = |shards: usize| {
        let mut st = ShardedTracker::new(TrackerParams::default(), spec, shards);
        let t0 = Instant::now();
        let mut critical = 0usize;
        for batch in SlideBatches::new(w.stream.iter().cloned(), spec, Timestamp::ZERO) {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            critical += st.slide(batch.query_time, &tuples).merged.fresh_critical.len();
        }
        critical += st.finish().0.len();
        (t0.elapsed().as_secs_f64(), critical)
    };

    // Warm-up pass so page faults and lazy allocation hit nobody's clock.
    let _ = run_serial();
    let (serial_secs, serial_critical) = run_serial();
    let positions = w.stream.len() as f64;

    let mut table = TextTable::new(&[
        "backend",
        "critical",
        "total (s)",
        "pos/s",
        "speedup",
    ]);
    table.row(vec![
        "serial".to_string(),
        serial_critical.to_string(),
        format!("{serial_secs:.3}"),
        format!("{:.0}", positions / serial_secs),
        "1.00x".to_string(),
    ]);
    let mut json = vec![serde_json::json!({
        "backend": "serial", "shards": 0, "critical": serial_critical,
        "secs": serial_secs, "pos_per_sec": positions / serial_secs, "speedup": 1.0,
    })];
    for shards in [1usize, 2, 4, 8] {
        let (secs, critical) = run_sharded(shards);
        assert_eq!(
            critical, serial_critical,
            "sharded backend diverged from serial at {shards} shard(s)"
        );
        table.row(vec![
            format!("{shards} shard(s)"),
            critical.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", positions / secs),
            format!("{:.2}x", serial_secs / secs),
        ]);
        json.push(serde_json::json!({
            "backend": "sharded", "shards": shards, "critical": critical,
            "secs": secs, "pos_per_sec": positions / secs,
            "speedup": serial_secs / secs,
        }));
    }
    println!("{}", table.render());
    println!("expected shape: one shard pays the channel/merge tax against serial; the
critical-point count is identical everywhere (differential invariant); the
speedup climbs with shards until per-shard batches get too small.
");
    save_json("sharded", &serde_json::Value::Array(json));
}

/// Extension: checkpointed incremental recognition — per-query cost of
/// from-scratch vs delta evaluation over the same sliding queries, for
/// overlapping windows (where the prefix is redundant work) and the
/// tumbling window (where there is no prefix to reuse).
fn incremental(w: &Workload) {
    use maritime_cer::EvalStrategy;
    println!("== Incremental recognition: from-scratch vs checkpointed delta ==");
    // Replay in timestamp order: the tracker stamps a few MEs
    // retroactively (a communication-gap start carries the *last contact*
    // time), and feeding those after a query is a genuine late arrival,
    // which correctly — but uninformatively — forces a full recompute.
    // The differential tests cover that path; this experiment measures
    // the steady-state delta cost of an in-order stream.
    let mut me_stream = w.me_stream(TrackerParams::default());
    me_stream.sort_by_key(|(t, _)| *t);
    println!(
        "  ME stream: {} critical movement events from {} raw positions",
        me_stream.len(),
        w.stream.len()
    );
    let span_end = Timestamp::ZERO + w.span();

    // Streaming replay: feed each query only the MEs since the previous
    // one, then recognize — the cadence an online pipeline runs at.
    let run = |spec: WindowSpec, strategy: EvalStrategy| {
        let kb = Knowledge::standard(w.vessels.iter().copied(), w.areas.clone());
        let mut recognizer = MaritimeRecognizer::with_strategy(kb, spec, strategy);
        let queries = spec.query_times(Timestamp::ZERO, span_end);
        let mut fed = 0usize;
        let mut ces = 0usize;
        let t0 = Instant::now();
        for q in &queries {
            while fed < me_stream.len() && me_stream[fed].0 <= *q {
                recognizer.add_events([me_stream[fed].clone()]);
                fed += 1;
            }
            ces += recognizer.recognize_and_summarize(*q).ce_count;
        }
        let avg_ms = t0.elapsed().as_secs_f64() / queries.len().max(1) as f64 * 1_000.0;
        (avg_ms, ces, queries.len(), recognizer.incremental_stats())
    };

    let mut table = TextTable::new(&[
        "ω (h)",
        "β (h)",
        "queries",
        "CEs",
        "from-scratch (ms/q)",
        "incremental (ms/q)",
        "rules run",
        "fallbacks",
        "speedup",
    ]);
    let mut json = Vec::new();
    for (range_h, slide_h) in [(2i64, 1i64), (6, 1), (9, 1), (6, 6)] {
        let spec = WindowSpec::new(Duration::hours(range_h), Duration::hours(slide_h)).unwrap();
        let (full_ms, full_ces, queries, full_stats) = run(spec, EvalStrategy::FromScratch);
        let (inc_ms, inc_ces, _, stats) = run(spec, EvalStrategy::Incremental);
        assert_eq!(
            full_ces, inc_ces,
            "incremental recognition diverged at ω={range_h}h β={slide_h}h"
        );
        let speedup = full_ms / inc_ms.max(1e-9);
        table.row(vec![
            range_h.to_string(),
            slide_h.to_string(),
            queries.to_string(),
            full_ces.to_string(),
            format!("{full_ms:.3}"),
            format!("{inc_ms:.3}"),
            format!(
                "{}k vs {}k",
                full_stats.triggers_evaluated / 1_000,
                stats.triggers_evaluated / 1_000
            ),
            format!("{}/{}", stats.full, stats.full + stats.incremental),
            format!("{speedup:.2}x"),
        ]);
        json.push(serde_json::json!({
            "range_h": range_h, "slide_h": slide_h, "queries": queries,
            "ces": full_ces, "full_ms": full_ms, "incremental_ms": inc_ms,
            "full_rules_run": full_stats.triggers_evaluated,
            "incremental_rules_run": stats.triggers_evaluated,
            "entries_replayed": stats.triggers_reused,
            "fallback_queries": stats.full, "delta_queries": stats.incremental,
            "speedup": speedup,
        }));
    }
    println!("{}", table.render());
    println!("expected shape: the wider the overlap (ω ≫ β) the larger the speedup —\n≥2x at ω=6h β=1h; the tumbling window (ω=β) has no reusable prefix, so\nthe two modes should be within noise of each other.\n");
    save_json("incremental", &serde_json::Value::Array(json));
}

/// Figure 11: CE recognition times, 1 vs 2 processors, on-demand spatial
/// reasoning (a) vs precomputed spatial facts (b).
fn fig11(w: &Workload) {
    println!("== Figure 11: complex event recognition ==");
    let me_stream = w.me_stream(TrackerParams::default());
    println!(
        "  ME stream: {} critical movement events from {} raw positions",
        me_stream.len(),
        w.stream.len()
    );

    let span_end = Timestamp::ZERO + w.span();
    let mut json = Vec::new();

    for (panel, mode) in [
        ("a", SpatialMode::OnDemand),
        ("b", SpatialMode::Precomputed),
        ("c", SpatialMode::OnDemandIndexed),
    ] {
        let mut events = me_stream.clone();
        let facts = if mode == SpatialMode::Precomputed {
            let kb = Knowledge::standard(w.vessels.iter().copied(), w.areas.clone());
            spatial::annotate_with_spatial_facts(&mut events, &kb)
        } else {
            0
        };
        let label = match mode {
            SpatialMode::OnDemand => "on-demand spatial reasoning (paper: linear over areas)",
            SpatialMode::Precomputed => "precomputed spatial facts",
            SpatialMode::OnDemandIndexed => "on-demand with grid index (extension beyond the paper)",
        };
        println!("-- ({panel}) {label}{} --", if facts > 0 {
            format!(" ({facts} spatial facts)")
        } else {
            String::new()
        });

        let mut table = TextTable::new(&[
            "ω (h)",
            "MEs/window",
            "CEs",
            "1 proc (ms/query)",
            "2 procs (ms/query)",
            "speedup",
        ]);
        for range_h in [1i64, 2, 6, 9] {
            let spec = WindowSpec::new(Duration::hours(range_h), Duration::hours(1)).unwrap();
            let queries = spec.query_times(Timestamp::ZERO, span_end);

            // Single processor.
            let t0 = Instant::now();
            let kb = Knowledge::new(
                w.vessels.iter().copied(),
                w.areas.clone(),
                2_000.0,
                mode,
            );
            let mut single = MaritimeRecognizer::new(kb, spec);
            single.add_events(events.iter().cloned());
            let mut ce_single = 0usize;
            let mut wm_sum = 0usize;
            for q in &queries {
                let s = single.recognize_and_summarize(*q);
                ce_single += s.ce_count;
                wm_sum += s.working_memory;
            }
            let single_ms = t0.elapsed().as_secs_f64() / queries.len().max(1) as f64 * 1_000.0;

            // Two processors (geographic east/west partitioning).
            let t1 = Instant::now();
            let merged = partition::recognize_partitioned(
                &partition::GeoPartitioner::east_west(),
                &w.vessels,
                &w.areas,
                &events,
                spec,
                &queries,
                mode,
            );
            let ce_two: usize = merged.iter().map(partition::MergedSummary::ce_count).sum();
            let two_ms = t1.elapsed().as_secs_f64() / queries.len().max(1) as f64 * 1_000.0;

            table.row(vec![
                range_h.to_string(),
                (wm_sum / queries.len().max(1)).to_string(),
                format!("{ce_single}/{ce_two}"),
                format!("{single_ms:.3}"),
                format!("{two_ms:.3}"),
                format!("{:.2}x", single_ms / two_ms.max(1e-9)),
            ]);
            json.push(serde_json::json!({
                "panel": panel, "range_h": range_h,
                "avg_mes_per_window": wm_sum / queries.len().max(1),
                "ce_single": ce_single, "ce_two": ce_two,
                "single_ms": single_ms, "two_ms": two_ms,
            }));
        }
        println!("{}", table.render());
    }
    println!("expected shape: times grow with ω; two processors are faster (paper: ~1.6x);\nprecomputed facts (b) are faster than on-demand reasoning (a) despite the\nlarger input stream; CE counts match between 1 and 2 processors.\n");
    save_json("fig11", &serde_json::Value::Array(json));
}

/// Chaos overhead: pipeline throughput on the clean deterministic chaos
/// world vs the same world under hostile fault-injection plans. The
/// interesting number is the *relative* cost of absorbing a damaged
/// stream (admission repair, defragmenter churn, discarded sentences) —
/// recognition output itself is guarded by the oracle tests, not here.
fn chaos() {
    use maritime::chaos::{ChaosEngine, ChaosHarness};
    use maritime_chaos::ChaosPlan;

    println!("== Chaos: clean vs fault-injected stream throughput ==");
    let harness = ChaosHarness::default();
    let (lines, vessels) = harness.baseline();
    println!(
        "  world: {} vessels, {} h, {} sentences, admission skew {} s",
        harness.vessels,
        harness.hours,
        lines.len(),
        harness.admission_skew_secs
    );

    let mut table = TextTable::new(&[
        "stream", "sentences", "discarded", "late", "CEs", "ms", "Msent/s",
    ]);
    let mut json = Vec::new();
    let mut measure = |label: &str, stream: &[(i64, String)]| {
        let t0 = Instant::now();
        let run = harness.run(stream, &vessels, ChaosEngine::Serial);
        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let discarded = run.scan.malformed
            + run.scan.bad_checksum
            + run.scan.bad_payload
            + run.scan.bad_position
            + run.scan.fragments_truncated;
        table.row(vec![
            label.to_string(),
            run.scan.total.to_string(),
            discarded.to_string(),
            run.admission.late.to_string(),
            run.observation.ce_total.to_string(),
            format!("{ms:.1}"),
            format!("{:.3}", stream.len() as f64 / ms / 1_000.0),
        ]);
        json.push(serde_json::json!({
            "stream": label, "sentences": run.scan.total, "discarded": discarded,
            "late": run.admission.late, "ces": run.observation.ce_total, "ms": ms,
        }));
    };

    measure("clean", &lines);
    for seed in 0..3u64 {
        let plan = ChaosPlan::hostile(seed);
        let (perturbed, _) = plan.apply(&lines);
        measure(&format!("hostile[{seed}] ({} ops)", plan.ops.len()), &perturbed);
    }
    println!("{}", table.render());
    println!("expected shape: hostile streams cost within ~2x of clean — fault\nabsorption is bookkeeping, not recomputation; discarded/late counts are\nnonzero exactly on the perturbed rows.\n");
    save_json("chaos", &serde_json::Value::Array(json));
}

/// Extension: raw-speed measurement of the decode→track hot path — the
/// trajectory entry behind the `BENCH_hotpath.json` perf gate. Three
/// legs, each on the fixed workload at the selected scale:
///
/// * **decode** — the zero-copy batch scanner over a pre-rendered NMEA
///   buffer (table-driven six-bit cursor, no per-sentence allocation);
/// * **track** — the mobility tracker alone over the decoded tuples,
///   critical points appended to one reused buffer;
/// * **e2e** — the serial windowed run (ω = 1 h, β = 30 min), identical
///   to the `sharded` experiment's serial baseline so the speedup is
///   comparable against the EXPERIMENTS.md table.
fn hotpath(w: &Workload, scale: Scale) {
    use maritime_ais::nmea::encode_report;

    println!("== Hot path: decode / track / end-to-end throughput ==");
    let scale_label = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    };
    let positions = w.stream.len() as f64;

    // ---- decode-only: scanner over a pre-rendered sentence buffer ------
    let reports = w.sim.generate();
    let mut buf = String::new();
    for r in &reports {
        buf.push_str(&encode_report(r));
        buf.push('\n');
    }
    let run_decode = || {
        let mut scanner = DataScanner::new();
        let mut out = Vec::with_capacity(reports.len());
        let t0 = Instant::now();
        scanner.scan_buffer(&buf, |i| reports[i].timestamp, &mut out);
        scanner.finish(reports.last().map_or(Timestamp::ZERO, |r| r.timestamp));
        (t0.elapsed().as_secs_f64(), out.len())
    };
    let _ = run_decode(); // warm-up
    let (decode_secs, decoded) = run_decode();

    // ---- track-only: mobility tracker over decoded tuples --------------
    let tuples = w.tuples();
    let run_track = || {
        let mut tracker = MobilityTracker::new(TrackerParams::default());
        let mut out = Vec::new();
        let t0 = Instant::now();
        tracker.process_batch_into(tuples.iter(), &mut out);
        let critical = out.len() + tracker.finish().len();
        (t0.elapsed().as_secs_f64(), critical)
    };
    let _ = run_track();
    let (track_secs, track_critical) = run_track();

    // ---- end-to-end: serial windowed run (the EXPERIMENTS.md baseline) -
    let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(30)).unwrap();
    let run_e2e = || {
        let mut wt = WindowedTracker::new(TrackerParams::default(), spec);
        let t0 = Instant::now();
        let mut critical = 0usize;
        for batch in SlideBatches::new(w.stream.iter().cloned(), spec, Timestamp::ZERO) {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            critical += wt.slide(batch.query_time, &tuples).fresh_critical.len();
        }
        critical += wt.finish().0.len();
        (t0.elapsed().as_secs_f64(), critical)
    };
    let _ = run_e2e();
    let (e2e_secs, e2e_critical) = run_e2e();

    let mut table = TextTable::new(&["leg", "items", "total (s)", "pos/s"]);
    table.row(vec![
        "decode".to_string(),
        format!("{} sentences", reports.len()),
        format!("{decode_secs:.3}"),
        format!("{:.0}", decoded as f64 / decode_secs),
    ]);
    table.row(vec![
        "track".to_string(),
        format!("{} critical", track_critical),
        format!("{track_secs:.3}"),
        format!("{:.0}", positions / track_secs),
    ]);
    table.row(vec![
        "e2e".to_string(),
        format!("{} critical", e2e_critical),
        format!("{e2e_secs:.3}"),
        format!("{:.0}", positions / e2e_secs),
    ]);
    println!("{}", table.render());
    println!("expected shape: decode and track each run well above the e2e rate
(the e2e leg pays for both plus windowing); the critical-point counts are
workload invariants, so any drift there is a correctness bug, not noise.
");

    save_json(
        "hotpath",
        &serde_json::json!({
            "scale": scale_label,
            "positions": w.stream.len(),
            "decode": {
                "sentences": reports.len(),
                "accepted": decoded,
                "secs": decode_secs,
                "pos_per_sec": decoded as f64 / decode_secs,
            },
            "track": {
                "critical": track_critical,
                "secs": track_secs,
                "pos_per_sec": positions / track_secs,
            },
            "e2e": {
                "critical": e2e_critical,
                "secs": e2e_secs,
                "pos_per_sec": positions / e2e_secs,
            },
        }),
    );
}

/// Extension: raw-speed measurement of the CE recognition stage — the
/// trajectory entry behind the `BENCH_recognition.json` perf gate, the
/// recognition counterpart of [`hotpath`]. All legs replay the Figure 11
/// geometry (ω = 6 h, β = 1 h) as a streaming run: events are fed up to
/// each query time, then the window is recognized — the cadence an online
/// pipeline runs at.
///
/// * **ondemand / facts** — the Figure 11(a)/(b) spatial ablation,
///   each measured from scratch and incrementally;
/// * **bands1/2/4** — the Figure 11 parallel axis: longitude-band
///   partitioned recognition over balanced quantile boundaries.
///
/// Every leg reports an exact CE count next to its throughput; the perf
/// gate pins those counts, so a speedup that changes recognition output
/// fails CI even if it is faster.
fn recognition(w: &Workload, scale: Scale) {
    use maritime_cer::EvalStrategy;

    println!("== Recognition hot path: CE stage throughput ==");
    let scale_label = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    };
    // In-order replay, as in the `incremental` experiment: the tracker
    // stamps a few MEs retroactively, and feeding those after a query is
    // a genuine late arrival that would force uninformative fallbacks.
    let mut me_stream = w.me_stream(TrackerParams::default());
    me_stream.sort_by_key(|(t, _)| *t);
    let mes = me_stream.len();
    println!(
        "  ME stream: {mes} critical movement events from {} raw positions",
        w.stream.len()
    );
    let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
    let span_end = Timestamp::ZERO + w.span();
    let queries = spec.query_times(Timestamp::ZERO, span_end);

    // Per-leg passes are a few tens of milliseconds, where scheduler noise
    // swings a single measurement by ±40%. Each leg therefore runs one
    // warm-up pass plus `FIG_REPS` timed passes (default 5) and reports
    // the fastest — the standard minimum-of-N estimator for the leg's
    // noise-free cost. The CE count must be identical across passes.
    let reps: usize = std::env::var("FIG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let best_of = move |run: &dyn Fn() -> (f64, usize)| {
        let _ = run(); // warm-up
        let (mut best, ces) = run();
        for _ in 1..reps {
            let (secs, c) = run();
            assert_eq!(c, ces, "CE count varied across timed passes");
            best = best.min(secs);
        }
        (best, ces)
    };

    // Streaming single-engine leg.
    let serial = |mode: SpatialMode, strategy: EvalStrategy| {
        let events = match mode {
            SpatialMode::Precomputed => {
                let kb = Knowledge::standard(w.vessels.iter().copied(), w.areas.clone());
                let mut annotated = me_stream.clone();
                spatial::annotate_with_spatial_facts(&mut annotated, &kb);
                annotated
            }
            _ => me_stream.clone(),
        };
        let run = || {
            let kb =
                Knowledge::new(w.vessels.iter().copied(), w.areas.clone(), 2_000.0, mode);
            let mut recognizer = MaritimeRecognizer::with_strategy(kb, spec, strategy);
            let mut fed = 0usize;
            let mut ces = 0usize;
            let t0 = Instant::now();
            for q in &queries {
                while fed < events.len() && events[fed].0 <= *q {
                    recognizer.add_events([events[fed].clone()]);
                    fed += 1;
                }
                ces += recognizer.recognize_and_summarize(*q).ce_count;
            }
            (t0.elapsed().as_secs_f64(), ces)
        };
        best_of(&run)
    };

    // Partitioned leg: n longitude bands over the whole stream, the
    // Figure 11 two-processor axis extended to four.
    let banded = |n: usize| {
        let partitioner = partition::GeoPartitioner::balanced(n, &me_stream);
        let run = || {
            let t0 = Instant::now();
            let merged = partition::recognize_partitioned(
                &partitioner,
                &w.vessels,
                &w.areas,
                &me_stream,
                spec,
                &queries,
                SpatialMode::OnDemand,
            );
            let ces: usize = merged.iter().map(partition::MergedSummary::ce_count).sum();
            (t0.elapsed().as_secs_f64(), ces)
        };
        best_of(&run)
    };

    let legs: Vec<(&str, f64, usize)> = vec![
        {
            let (s, c) = serial(SpatialMode::OnDemand, EvalStrategy::FromScratch);
            ("ondemand_scratch", s, c)
        },
        {
            let (s, c) = serial(SpatialMode::OnDemand, EvalStrategy::Incremental);
            ("ondemand_incremental", s, c)
        },
        {
            let (s, c) = serial(SpatialMode::Precomputed, EvalStrategy::FromScratch);
            ("facts_scratch", s, c)
        },
        {
            let (s, c) = serial(SpatialMode::Precomputed, EvalStrategy::Incremental);
            ("facts_incremental", s, c)
        },
        {
            let (s, c) = banded(1);
            ("bands1", s, c)
        },
        {
            let (s, c) = banded(2);
            ("bands2", s, c)
        },
        {
            let (s, c) = banded(4);
            ("bands4", s, c)
        },
    ];

    let mut table = TextTable::new(&["leg", "CEs", "total (s)", "ms/query", "ME/s"]);
    let mut json_legs: Vec<(String, serde_json::Value)> = Vec::new();
    for (name, secs, ces) in &legs {
        table.row(vec![
            (*name).to_string(),
            ces.to_string(),
            format!("{secs:.3}"),
            format!("{:.3}", secs / queries.len().max(1) as f64 * 1_000.0),
            format!("{:.0}", mes as f64 / secs),
        ]);
        json_legs.push((
            (*name).to_string(),
            serde_json::json!({
                "ce_count": ces,
                "secs": secs,
                "me_per_sec": mes as f64 / secs,
            }),
        ));
    }
    println!("{}", table.render());
    println!("expected shape: incremental beats from-scratch at this overlap (ω ≫ β);\nprecomputed facts beat on-demand; bands scale like Figure 11's processors.\nThe CE counts are workload invariants pinned by the perf gate.\n");

    save_json(
        "recognition",
        &serde_json::json!({
            "scale": scale_label,
            "mes": mes,
            "queries": queries.len(),
            "legs": serde_json::Value::Object(json_legs),
        }),
    );
}

/// Partition-coordination scale table: the `CoordinatedRecognizer`
/// (sticky homes + migration, border-strip replication) streamed over
/// the Figure 11 geometry at 1/2/4 longitude bands, plus the cost of a
/// whole-fleet checkpoint/restore round trip mid-stream. One trajectory
/// entry behind the `BENCH_partition.json` perf gate.
///
/// The coordinator's merge is exact by construction, so every band
/// count must recognize the serial engine's CE count to the event —
/// asserted here and pinned by the gate (`ce_count` is an exact
/// invariant). Migration counts and checkpoint size are informational;
/// `me_per_sec` / `roundtrips_per_sec` are gated throughput floors.
fn partition_scale(w: &Workload, scale: Scale) {
    use maritime_cer::CoordinatedRecognizer;

    println!("== Partition coordination: migration + checkpoint scale ==");
    let scale_label = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    };
    let mut me_stream = w.me_stream(TrackerParams::default());
    me_stream.sort_by_key(|(t, _)| *t);
    let mes = me_stream.len();
    let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
    let span_end = Timestamp::ZERO + w.span();
    let queries = spec.query_times(Timestamp::ZERO, span_end);

    let reps: usize = std::env::var("FIG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let best_of = move |run: &dyn Fn() -> (f64, usize, u64)| {
        let _ = run(); // warm-up
        let (mut best, ces, migrations) = run();
        for _ in 1..reps {
            let (secs, c, m) = run();
            assert_eq!(c, ces, "CE count varied across timed passes");
            assert_eq!(m, migrations, "migration count varied across timed passes");
            best = best.min(secs);
        }
        (best, ces, migrations)
    };

    let coord_leg = |n: usize| {
        let partitioner = partition::GeoPartitioner::balanced(n, &me_stream);
        let run = || {
            let mut coord = CoordinatedRecognizer::new(
                partitioner.clone(),
                &w.vessels,
                &w.areas,
                2_000.0,
                SpatialMode::OnDemand,
                spec,
            );
            let mut fed = 0usize;
            let mut ces = 0usize;
            let t0 = Instant::now();
            for q in &queries {
                while fed < me_stream.len() && me_stream[fed].0 <= *q {
                    coord.add_events([me_stream[fed].clone()]);
                    fed += 1;
                }
                ces += coord.recognize_and_summarize(*q).ce_count;
            }
            (t0.elapsed().as_secs_f64(), ces, coord.migrations())
        };
        best_of(&run)
    };

    let legs: Vec<(String, f64, usize, u64)> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            let (secs, ces, migrations) = coord_leg(n);
            (format!("coord{n}"), secs, ces, migrations)
        })
        .collect();
    let serial_ces = legs[0].2;
    for (name, _, ces, _) in &legs {
        assert_eq!(
            *ces, serial_ces,
            "{name}: partitioned CE count diverged from 1-band — the merge is no longer exact"
        );
    }

    // Checkpoint round trip on the hardest configuration (4 bands), taken
    // mid-stream so the bytes carry real window state.
    let (ckpt_bytes, roundtrips_per_sec) = {
        let partitioner = partition::GeoPartitioner::balanced(4, &me_stream);
        let mut coord = CoordinatedRecognizer::new(
            partitioner,
            &w.vessels,
            &w.areas,
            2_000.0,
            SpatialMode::OnDemand,
            spec,
        );
        let half = &queries[..queries.len().div_ceil(2)];
        let mut fed = 0usize;
        for q in half {
            while fed < me_stream.len() && me_stream[fed].0 <= *q {
                coord.add_events([me_stream[fed].clone()]);
                fed += 1;
            }
            coord.recognize_and_summarize(*q);
        }
        let bytes = coord.checkpoint();
        const ROUNDS: usize = 20;
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            let b = coord.checkpoint();
            coord = CoordinatedRecognizer::restore(&w.vessels, &w.areas, &b)
                .expect("mid-stream checkpoint restores");
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(coord.checkpoint(), bytes, "restore drifted from the original state");
        (bytes.len(), ROUNDS as f64 / secs)
    };

    let mut table =
        TextTable::new(&["leg", "CEs", "migrations", "total (s)", "ms/query", "ME/s"]);
    let mut json_legs: Vec<(String, serde_json::Value)> = Vec::new();
    for (name, secs, ces, migrations) in &legs {
        table.row(vec![
            name.clone(),
            ces.to_string(),
            migrations.to_string(),
            format!("{secs:.3}"),
            format!("{:.3}", secs / queries.len().max(1) as f64 * 1_000.0),
            format!("{:.0}", mes as f64 / secs),
        ]);
        json_legs.push((
            name.clone(),
            serde_json::json!({
                "ce_count": ces,
                "migrations": migrations,
                "secs": secs,
                "me_per_sec": mes as f64 / secs,
            }),
        ));
    }
    json_legs.push((
        "ckpt".to_string(),
        serde_json::json!({
            "bytes": ckpt_bytes,
            "roundtrips_per_sec": roundtrips_per_sec,
        }),
    ));
    println!("{}", table.render());
    println!(
        "checkpoint: {ckpt_bytes} bytes at 4 bands mid-stream, {roundtrips_per_sec:.0} \
         checkpoint+restore round trips/s"
    );
    println!(
        "expected shape: CE counts identical at every band count (the merge is exact);\n\
         migrations grow with bands; per-query cost amortizes the handoffs.\n"
    );

    save_json(
        "partition",
        &serde_json::json!({
            "scale": scale_label,
            "mes": mes,
            "queries": queries.len(),
            "legs": serde_json::Value::Object(json_legs),
        }),
    );
}

/// Sustained live-ingestion throughput: the `surveil serve` driver path
/// (source mux → admission buffer → data scanner → live batcher →
/// pipeline → wire encoder) driven from raw NMEA lines as fast as one
/// thread can push them. This is the serve counterpart of `hotpath`:
/// where `hotpath` times the batch legs in isolation, `ingest` times the
/// resident server's whole per-line cost, sockets excluded.
///
/// Lines round-robin over three sources, and a slice of them is
/// re-offered on a second source to exercise the cross-source duplicate
/// suppression the server runs on every sentence. The wire event count
/// must be identical across timed passes — a throughput number that
/// changed recognition output is a bug, not a speedup.
fn ingest(scale: Scale) {
    use maritime::serve::LiveIngest;
    use maritime_chaos::demo_sentences;
    use maritime_stream::SourceId;

    println!("== Live ingestion: `surveil serve` driver-path throughput ==");
    let (scale_label, vessels_n, hours) = match scale {
        Scale::Small => ("small", 30, 8),
        Scale::Medium => ("medium", 40, 12),
        Scale::Large => ("large", 80, 24),
    };
    let (lines, vessels) = demo_sentences(0xC4A05, vessels_n, hours);
    let areas = generate_areas(&AreaGenConfig::default());
    // The serve end-to-end test's windows: fast enough that the log
    // crosses several recognition queries and emits CEs on the wire.
    let config = SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5)).unwrap(),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30)).unwrap(),
        ..SurveillanceConfig::default()
    };
    println!(
        "  demo log: {} sentences, {} vessels over {hours} h",
        lines.len(),
        vessels.len()
    );

    // Every 64th line is re-offered on another source: two receivers
    // relaying the same transponder, the dedup window's everyday case.
    let run = || {
        let mut live = LiveIngest::new(
            &config,
            vessels.clone(),
            areas.clone(),
            Duration::secs(120),
            Duration::secs(10),
        )
        .expect("serve config validates");
        let mut events = 0usize;
        let t0 = Instant::now();
        for (i, (t, line)) in lines.iter().enumerate() {
            let src = SourceId((i % 3) as u32);
            events += live.push_line(src, Timestamp(*t), line).len();
            if i % 64 == 0 {
                events += live.push_line(SourceId(3), Timestamp(*t), line).len();
            }
        }
        events += live.flush().len();
        let secs = t0.elapsed().as_secs_f64();
        (secs, events, live.stats())
    };

    let reps: usize = std::env::var("FIG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let _ = run(); // warm-up
    let (mut best, events, stats) = run();
    for _ in 1..reps {
        let (secs, e, _) = run();
        assert_eq!(e, events, "wire event count varied across timed passes");
        best = best.min(secs);
    }

    let fed = stats.lines;
    let lps = fed as f64 / best;
    let mut table = TextTable::new(&["fed", "accepted", "deduped", "wire events", "CEs", "total (s)", "lines/s"]);
    table.row(vec![
        fed.to_string(),
        stats.accepted.to_string(),
        stats.duplicates.to_string(),
        events.to_string(),
        stats.ce_total.to_string(),
        format!("{best:.3}"),
        format!("{lps:.0}"),
    ]);
    println!("{}", table.render());
    println!("expected shape: sustained lines/s far above any real AIS receiver's\nrate (the demo fleet averages a few lines/s of wall-clock time); every\nre-offered duplicate is dropped by the mux, and the wire event count is\na workload invariant across passes.\n");

    save_json(
        "ingest",
        &serde_json::json!({
            "scale": scale_label,
            "lines_fed": fed,
            "accepted": stats.accepted,
            "duplicates": stats.duplicates,
            "wire_events": events,
            "ce_count": stats.ce_total,
            "secs": best,
            "lines_per_sec": lps,
        }),
    );
}

/// Telemetry overhead: the `ingest` driver path with and without the
/// serve telemetry machinery running against it — a background sampler
/// snapshotting the whole registry into a `SampleRing`, evaluating the
/// SLO health engine, and bumping labeled family counters, at a 50 ms
/// cadence (40x the production 2 s default, so the measured cost
/// generously bounds the deployed one). The sampler runs off the driver
/// thread by design; the assertion here is that it stays that way:
/// the sampled leg must keep ≥ 99% of the quiet leg's throughput.
fn telemetry(scale: Scale) {
    use maritime::serve::{HealthEngine, LiveIngest, SloThresholds};
    use maritime_chaos::demo_sentences;
    use maritime_obs::timeseries::SampleRing;
    use maritime_obs::{names, MetricsRegistry};
    use maritime_stream::SourceId;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    println!("== Telemetry overhead: sampler + health engine vs the quiet driver path ==");
    let (scale_label, vessels_n, hours) = match scale {
        Scale::Small => ("small", 30, 8),
        Scale::Medium => ("medium", 40, 12),
        Scale::Large => ("large", 80, 24),
    };
    let (lines, vessels) = demo_sentences(0xC4A05, vessels_n, hours);
    let areas = generate_areas(&AreaGenConfig::default());
    let config = SurveillanceConfig {
        tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5)).unwrap(),
        recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30)).unwrap(),
        ..SurveillanceConfig::default()
    };
    println!(
        "  demo log: {} sentences, {} vessels over {hours} h; sampler at 50 ms",
        lines.len(),
        vessels.len()
    );

    // The same per-line work as the `ingest` leg.
    let drive = || {
        let mut live = LiveIngest::new(
            &config,
            vessels.clone(),
            areas.clone(),
            Duration::secs(120),
            Duration::secs(10),
        )
        .expect("serve config validates");
        let mut events = 0usize;
        let t0 = Instant::now();
        for (i, (t, line)) in lines.iter().enumerate() {
            let src = SourceId((i % 3) as u32);
            events += live.push_line(src, Timestamp(*t), line).len();
        }
        events += live.flush().len();
        (t0.elapsed().as_secs_f64(), events, live.stats().ce_total)
    };

    // The serve sampler's tick, off-thread: full-registry snapshot into
    // the ring, SLO evaluation over the last two samples, and the
    // per-source family mirroring (four cached labeled counters).
    let sampled_run = |drive: &dyn Fn() -> (f64, usize, u64)| {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let sampler = std::thread::spawn(move || {
            let ring = SampleRing::new(256);
            let mut engine = HealthEngine::new(SloThresholds::default());
            let registry = MetricsRegistry::global();
            let mirrored = [
                registry.labeled_counter(&names::SERVE_SOURCE_LINES, "bench"),
                registry.labeled_counter(&names::SERVE_SOURCE_ACCEPTED, "bench"),
                registry.labeled_counter(&names::SERVE_SOURCE_FILTERED, "bench"),
                registry.labeled_counter(&names::SERVE_SOURCE_DUPLICATES, "bench"),
            ];
            let mut prev = None;
            let mut ticks = 0u64;
            while !flag.load(Ordering::Relaxed) {
                for counter in &mirrored {
                    counter.add(1);
                }
                ring.record(maritime_obs::snapshot());
                let cur = ring.latest().expect("just recorded");
                if let Some(prev) = prev.replace(Arc::clone(&cur)) {
                    let _ = engine.evaluate(&prev, &cur);
                }
                ticks += 1;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            ticks
        });
        let result = drive();
        stop.store(true, Ordering::Relaxed);
        let ticks = sampler.join().expect("sampler thread");
        (result, ticks)
    };

    let reps: usize = std::env::var("FIG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    // Interleave the legs so slow machine drift hits both equally.
    let _ = drive(); // warm-up
    let (mut quiet_best, events, ces) = drive();
    let ((mut sampled_best, e, c), mut ticks) = sampled_run(&drive);
    assert_eq!((e, c), (events, ces), "telemetry must not change output");
    for _ in 1..reps {
        let (secs, e, c) = drive();
        assert_eq!((e, c), (events, ces), "wire output varied across passes");
        quiet_best = quiet_best.min(secs);
        let ((secs, e, c), t) = sampled_run(&drive);
        assert_eq!((e, c), (events, ces), "telemetry must not change output");
        sampled_best = sampled_best.min(secs);
        ticks = ticks.max(t);
    }

    let fed = lines.len() as f64;
    let quiet_lps = fed / quiet_best;
    let sampled_lps = fed / sampled_best;
    let overhead_pct = (1.0 - sampled_lps / quiet_lps) * 100.0;
    let mut table = TextTable::new(&["leg", "total (s)", "lines/s", "overhead"]);
    table.row(vec![
        "quiet".to_string(),
        format!("{quiet_best:.3}"),
        format!("{quiet_lps:.0}"),
        "—".to_string(),
    ]);
    table.row(vec![
        "sampled".to_string(),
        format!("{sampled_best:.3}"),
        format!("{sampled_lps:.0}"),
        format!("{overhead_pct:.2}%"),
    ]);
    println!("{}", table.render());
    println!("  ({ticks} sampler ticks in the longest sampled pass)");
    println!("expected shape: the sampler runs off the driver thread, so the sampled\nleg keeps ≥ 99% of quiet throughput even at a 40x-production cadence.\n");
    assert!(
        overhead_pct < 1.0,
        "telemetry overhead {overhead_pct:.2}% breaches the 1% budget \
         (quiet {quiet_lps:.0} lines/s, sampled {sampled_lps:.0} lines/s)"
    );

    save_json(
        "telemetry",
        &serde_json::json!({
            "scale": scale_label,
            "lines_fed": lines.len(),
            "ce_count": ces,
            "sampler_ticks": ticks,
            "overhead_pct": overhead_pct,
            "quiet": { "secs": quiet_best, "lines_per_sec": quiet_lps },
            "sampled": { "secs": sampled_best, "lines_per_sec": sampled_lps },
        }),
    );
}
