//! Sliding-window stream infrastructure.
//!
//! §2 of the paper: "this online process necessitates the use of a sliding
//! window, which abstracts the time period of interest ... Typically, a
//! window looks for phenomena that occurred in a recent range ω ... This
//! window moves forward ... at a specific slide step every β units."
//!
//! This crate provides the time model ([`Timestamp`], [`Duration`]), window
//! specifications ([`WindowSpec`]), a per-item sliding buffer
//! ([`SlidingWindow`]), a batch replayer that turns a recorded stream into
//! per-slide batches ([`SlideBatches`]), arrival-rate rescaling used by
//! the stress test of Figure 7 ([`rate`]), a bounded-disorder
//! admission buffer for out-of-order feeds ([`AdmissionBuffer`]), and a
//! multi-feed line mux with per-source accounting and cross-source
//! duplicate suppression for live serving ([`SourceMux`]).

#![warn(missing_docs)]

pub mod admission;
pub mod rate;
pub mod shard;
pub mod slider;
pub mod source;
pub mod time;
pub mod window;

pub use admission::{AdmissionBuffer, AdmissionStats};
pub use shard::ShardRouter;
pub use source::{SourceId, SourceMux, SourceStats, SourceVerdict};
pub use slider::SlideBatches;
pub use time::{Duration, Timestamp};
pub use window::{SlidingWindow, WindowSpec, WindowSpecError};
