//! Replaying a recorded stream as per-slide batches.
//!
//! §5 of the paper: "We simulated a streaming behavior by consuming this
//! positional data little by little, i.e., reading small chunks periodically
//! according to window specifications ... the window keeps in pace with the
//! reported timestamps and not the actual time of each simulation."

use maritime_obs::{names, LazyCounter};

use crate::time::Timestamp;
use crate::window::WindowSpec;

/// Batches formed across every [`SlideBatches`] instance in the process.
static OBS_BATCHES: LazyCounter = LazyCounter::new(names::STREAM_BATCHES);

/// Iterator adaptor that cuts a time-sorted stream into batches, one per
/// window slide: batch *i* holds the items with timestamps in
/// `(Qᵢ₋₁, Qᵢ]` where `Qᵢ = origin + i·β`.
pub struct SlideBatches<T, I: Iterator<Item = (Timestamp, T)>> {
    source: std::iter::Peekable<I>,
    spec: WindowSpec,
    next_q: Timestamp,
    done: bool,
}

/// One batch of stream items delivered at a query time.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<T> {
    /// The query time `Qᵢ` at which this batch is processed.
    pub query_time: Timestamp,
    /// Items with timestamps in `(Qᵢ − β, Qᵢ]`, in stream order.
    pub items: Vec<(Timestamp, T)>,
}

impl<T, I: Iterator<Item = (Timestamp, T)>> SlideBatches<T, I> {
    /// Starts batching `source` (which must be sorted by timestamp) from
    /// `origin`: the first batch covers `(origin, origin + β]`.
    pub fn new(source: I, spec: WindowSpec, origin: Timestamp) -> Self {
        Self {
            source: source.peekable(),
            spec,
            next_q: origin + spec.slide,
            done: false,
        }
    }
}

impl<T, I: Iterator<Item = (Timestamp, T)>> Iterator for SlideBatches<T, I> {
    type Item = Batch<T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let q = self.next_q;
        let mut items = Vec::new();
        loop {
            match self.source.peek() {
                Some((t, _)) if *t <= q => {
                    items.push(self.source.next().expect("peeked"));
                }
                Some(_) => break,
                None => {
                    // Source exhausted: emit the final (possibly empty)
                    // batch, then stop.
                    self.done = true;
                    break;
                }
            }
        }
        self.next_q = q + self.spec.slide;
        OBS_BATCHES.inc();
        Some(Batch {
            query_time: q,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn spec(range_s: i64, slide_s: i64) -> WindowSpec {
        WindowSpec::new(Duration::secs(range_s), Duration::secs(slide_s)).unwrap()
    }

    fn stream(ts: &[i64]) -> Vec<(Timestamp, i64)> {
        ts.iter().map(|&t| (Timestamp(t), t)).collect()
    }

    #[test]
    fn batches_cover_half_open_slide_intervals() {
        let s = stream(&[1, 10, 11, 20, 25]);
        let batches: Vec<_> =
            SlideBatches::new(s.into_iter(), spec(30, 10), Timestamp::ZERO).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].query_time, Timestamp(10));
        assert_eq!(
            batches[0].items.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 10]
        );
        assert_eq!(
            batches[1].items.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![11, 20]
        );
        assert_eq!(
            batches[2].items.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![25]
        );
    }

    #[test]
    fn empty_intermediate_batches_are_emitted() {
        // A gap between t=1 and t=35 produces empty batches in between:
        // the window still slides even when no vessel reports.
        let s = stream(&[1, 35]);
        let batches: Vec<_> =
            SlideBatches::new(s.into_iter(), spec(30, 10), Timestamp::ZERO).collect();
        assert_eq!(batches.len(), 4);
        assert!(batches[1].items.is_empty());
        assert!(batches[2].items.is_empty());
        assert_eq!(batches[3].items.len(), 1);
    }

    #[test]
    fn empty_source_yields_single_empty_batch() {
        let batches: Vec<_> = SlideBatches::new(
            std::iter::empty::<(Timestamp, ())>(),
            spec(30, 10),
            Timestamp::ZERO,
        )
        .collect();
        assert_eq!(batches.len(), 1);
        assert!(batches[0].items.is_empty());
    }

    #[test]
    fn all_items_are_delivered_exactly_once() {
        let ts: Vec<i64> = (0..500).map(|i| i * 7 % 301).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        let s = stream(&sorted);
        let batches: Vec<_> =
            SlideBatches::new(s.into_iter(), spec(60, 13), Timestamp::ZERO).collect();
        let delivered: Vec<i64> = batches
            .iter()
            .flat_map(|b| b.items.iter().map(|(_, v)| *v))
            .collect();
        assert_eq!(delivered, sorted);
        // And each item's timestamp is within its batch's slide interval.
        // (Items at exactly the origin land in the first batch, which is
        // the only place the lower bound does not apply.)
        for (i, b) in batches.iter().enumerate() {
            for (t, _) in &b.items {
                assert!(*t <= b.query_time);
                if i > 0 {
                    assert!(*t > b.query_time - Duration::secs(13));
                }
            }
        }
    }
}
