//! Bounded-disorder admission for out-of-order streams.
//!
//! Real AIS feeds are not time-sorted: radio relays, satellite hops, and
//! store-and-forward base stations deliver sentences displaced from their
//! report timestamps. The pipeline's windowing, however, is cheapest on a
//! (mostly) sorted stream. [`AdmissionBuffer`] reconciles the two with the
//! classic watermark scheme: items are buffered and released in timestamp
//! order once the watermark (the maximum timestamp seen) has advanced past
//! them by more than the configured `skew`, while items arriving *later*
//! than the skew allows are admitted immediately, flagged as late, and
//! left for downstream consumers to handle (the tracker ignores stale
//! per-vessel fixes; the recognizer treats them as genuine late arrivals).
//!
//! The central guarantee, which the chaos harness's bounded-reorder oracle
//! is built on: **any arrival-order permutation whose timestamp
//! displacement is at most `skew` produces byte-identical output** — the
//! canonical `(timestamp, item)` order of the input multiset. Duplicates
//! are preserved (the buffer keys a multiplicity map, not a set), so
//! duplicate-idempotence is decided downstream, where it belongs.

use std::collections::BTreeMap;

use maritime_obs::{names, LazyCounter, LazyGauge, LazyHistogram};

use crate::time::{Duration, Timestamp};

/// Sentences admitted past the watermark (see `OBSERVABILITY.md`).
static OBS_LATE: LazyCounter = LazyCounter::new(names::STREAM_LATE_ADMISSIONS);
/// Event-time lag (watermark − timestamp) of each released item, in ns of
/// event time — the live watermark-lag distribution.
static OBS_LAG: LazyHistogram = LazyHistogram::new(names::STREAM_ADMISSION_LAG_NS);
/// Items currently held back waiting for the watermark.
static OBS_BUFFERED: LazyGauge = LazyGauge::new(names::STREAM_ADMISSION_BUFFERED);

/// Event-time seconds to nanoseconds, saturating (lag is never negative
/// by construction, but a clamp keeps hostile inputs harmless).
fn lag_ns(watermark: Timestamp, t: Timestamp) -> u64 {
    let secs = watermark.as_secs().saturating_sub(t.as_secs()).max(0);
    (secs as u64).saturating_mul(1_000_000_000)
}

/// Counters describing what the buffer saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Items pushed in.
    pub pushed: u64,
    /// Items released (in order or late); equals `pushed` after `flush`.
    pub released: u64,
    /// Items admitted immediately because they arrived later than the
    /// skew allows (their timestamp was below the watermark minus skew).
    pub late: u64,
    /// Largest number of items buffered at once.
    pub peak_buffered: usize,
}

/// Reorders a stream with bounded timestamp skew into canonical
/// `(timestamp, item)` order; see the module docs for the contract.
#[derive(Debug)]
pub struct AdmissionBuffer<T> {
    skew: Duration,
    /// Multiplicity map: identical `(timestamp, item)` pairs are counted,
    /// not collapsed, so duplicates survive admission untouched.
    buffered: BTreeMap<(Timestamp, T), usize>,
    buffered_count: usize,
    watermark: Option<Timestamp>,
    stats: AdmissionStats,
}

impl<T: Ord + Clone> AdmissionBuffer<T> {
    /// A buffer tolerating arrival displacement up to `skew`.
    #[must_use]
    pub fn new(skew: Duration) -> Self {
        Self {
            skew,
            buffered: BTreeMap::new(),
            buffered_count: 0,
            watermark: None,
            stats: AdmissionStats::default(),
        }
    }

    /// The configured skew tolerance.
    #[must_use]
    pub fn skew(&self) -> Duration {
        self.skew
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Items currently held back.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffered_count
    }

    /// Pushes one item, returning everything releasable now, in canonical
    /// order. A late item (timestamp strictly below watermark − skew) is
    /// returned immediately — out of order, by construction — and counted.
    pub fn push(&mut self, t: Timestamp, item: T) -> Vec<(Timestamp, T)> {
        self.stats.pushed += 1;
        if let Some(w) = self.watermark {
            if t < w - self.skew {
                self.stats.late += 1;
                self.stats.released += 1;
                OBS_LATE.inc();
                OBS_LAG.record(lag_ns(w, t));
                return vec![(t, item)];
            }
        }
        *self.buffered.entry((t, item)).or_insert(0) += 1;
        self.buffered_count += 1;
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered_count);
        if self.watermark.is_none_or(|w| t > w) {
            self.watermark = Some(t);
        }
        let out = self.release();
        OBS_BUFFERED.set(self.buffered_count as i64);
        out
    }

    /// Releases everything still buffered, in canonical order. Call at
    /// end of stream.
    pub fn flush(&mut self) -> Vec<(Timestamp, T)> {
        let mut out = Vec::with_capacity(self.buffered_count);
        let w = self.watermark;
        for ((t, item), n) in std::mem::take(&mut self.buffered) {
            for _ in 0..n {
                if let Some(w) = w {
                    OBS_LAG.record(lag_ns(w, t));
                }
                out.push((t, item.clone()));
            }
        }
        self.buffered_count = 0;
        OBS_BUFFERED.set(0);
        self.stats.released += out.len() as u64;
        out
    }

    /// Pops every buffered entry whose timestamp has fallen behind the
    /// watermark by more than the skew.
    fn release(&mut self) -> Vec<(Timestamp, T)> {
        let Some(w) = self.watermark else {
            return Vec::new();
        };
        let bound = w - self.skew;
        let mut out = Vec::new();
        while let Some(((t, _), _)) = self.buffered.first_key_value() {
            if *t >= bound {
                break;
            }
            let ((t, item), n) = self.buffered.pop_first().expect("non-empty");
            self.buffered_count -= n;
            for _ in 0..n {
                OBS_LAG.record(lag_ns(w, t));
                out.push((t, item.clone()));
            }
        }
        self.stats.released += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(buf: &mut AdmissionBuffer<u32>, input: &[(i64, u32)]) -> Vec<(i64, u32)> {
        let mut out = Vec::new();
        for &(t, x) in input {
            out.extend(buf.push(Timestamp(t), x));
        }
        out.extend(buf.flush());
        out.into_iter().map(|(t, x)| (t.as_secs(), x)).collect()
    }

    #[test]
    fn sorted_stream_passes_through_in_order() {
        let mut buf = AdmissionBuffer::new(Duration::secs(60));
        let input: Vec<(i64, u32)> = (0..20).map(|i| (i * 10, i as u32)).collect();
        assert_eq!(drain(&mut buf, &input), input);
        assert_eq!(buf.stats().late, 0);
        assert_eq!(buf.stats().pushed, 20);
        assert_eq!(buf.stats().released, 20);
    }

    #[test]
    fn bounded_disorder_is_fully_repaired() {
        // Displacements of up to 60 s; skew 60 s: output must be the
        // canonical sort of the input multiset.
        let mut buf = AdmissionBuffer::new(Duration::secs(60));
        let input = vec![(30, 1u32), (0, 0), (60, 3), (40, 2), (100, 5), (70, 4)];
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(drain(&mut buf, &input), expect);
        assert_eq!(buf.stats().late, 0);
    }

    #[test]
    fn duplicates_are_preserved_with_multiplicity() {
        let mut buf = AdmissionBuffer::new(Duration::secs(10));
        let input = vec![(5, 7u32), (5, 7), (5, 7), (50, 1)];
        let out = drain(&mut buf, &input);
        assert_eq!(out, vec![(5, 7), (5, 7), (5, 7), (50, 1)]);
    }

    #[test]
    fn late_items_are_admitted_immediately_and_counted() {
        let mut buf = AdmissionBuffer::new(Duration::secs(30));
        assert!(buf.push(Timestamp(0), 0u32).is_empty());
        // Watermark 100: everything below 70 is now late.
        let released = buf.push(Timestamp(100), 1);
        assert_eq!(released, vec![(Timestamp(0), 0)]);
        let late = buf.push(Timestamp(10), 2);
        assert_eq!(late, vec![(Timestamp(10), 2)], "late item emitted at once");
        assert_eq!(buf.stats().late, 1);
        // A borderline item (exactly watermark − skew) is NOT late.
        assert!(buf.push(Timestamp(70), 3).is_empty());
        assert_eq!(buf.stats().late, 1);
        let rest = buf.flush();
        assert_eq!(rest, vec![(Timestamp(70), 3), (Timestamp(100), 1)]);
        assert_eq!(buf.stats().pushed, buf.stats().released);
    }

    #[test]
    fn watermark_never_regresses() {
        let mut buf = AdmissionBuffer::new(Duration::secs(10));
        buf.push(Timestamp(100), 0u32);
        buf.push(Timestamp(95), 1); // within skew: buffered, watermark stays 100
        let out = buf.push(Timestamp(101), 2);
        assert!(out.is_empty(), "nothing below 91 yet: {out:?}");
        let rest = buf.flush();
        assert_eq!(
            rest,
            vec![(Timestamp(95), 1), (Timestamp(100), 0), (Timestamp(101), 2)]
        );
    }

    #[test]
    fn peak_buffered_tracks_high_water_mark() {
        let mut buf = AdmissionBuffer::new(Duration::secs(1_000));
        for i in 0..50 {
            buf.push(Timestamp(i), i as u32);
        }
        assert_eq!(buf.buffered(), 50);
        assert_eq!(buf.stats().peak_buffered, 50);
        buf.flush();
        assert_eq!(buf.buffered(), 0);
    }
}
