//! Arrival-rate rescaling for the stress test of Figure 7.
//!
//! The original dataset has a mean arrival rate ρ of ~50 positions/sec. For
//! the stress test the paper admits "bigger chunks of data for processing at
//! considerably increased arrival rates up to ρ = 10,000 positions/sec" —
//! i.e. it compresses stream time so the same positions arrive faster. This
//! module implements that timestamp rescaling.

use crate::time::Timestamp;

/// Measures the mean arrival rate of a time-sorted stream in items/second.
/// Returns `None` for streams spanning zero time.
pub fn mean_rate<T>(items: &[(Timestamp, T)]) -> Option<f64> {
    let first = items.first()?.0;
    let last = items.last()?.0;
    let span = (last.0 - first.0) as f64;
    if span <= 0.0 {
        return None;
    }
    Some(items.len() as f64 / span)
}

/// Rescales timestamps so the stream's mean arrival rate becomes
/// `target_rate` items/second, preserving relative order and the relative
/// spacing of reports. The first timestamp is preserved.
pub fn rescale_to_rate<T: Clone>(
    items: &[(Timestamp, T)],
    target_rate: f64,
) -> Vec<(Timestamp, T)> {
    assert!(target_rate > 0.0, "target rate must be positive");
    let Some(current) = mean_rate(items) else {
        return items.to_vec();
    };
    let factor = current / target_rate;
    let origin = items[0].0 .0;
    items
        .iter()
        .map(|(t, v)| {
            let scaled = origin as f64 + (t.0 - origin) as f64 * factor;
            (Timestamp(scaled.round() as i64), v.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(ts: &[i64]) -> Vec<(Timestamp, u32)> {
        ts.iter()
            .enumerate()
            .map(|(i, &t)| (Timestamp(t), i as u32))
            .collect()
    }

    #[test]
    fn mean_rate_of_uniform_stream() {
        // 11 items over 100 seconds -> 0.11 items/sec.
        let s = stream(&(0..=10).map(|i| i * 10).collect::<Vec<_>>());
        let r = mean_rate(&s).unwrap();
        assert!((r - 0.11).abs() < 1e-9);
    }

    #[test]
    fn mean_rate_of_instant_stream_is_none() {
        assert!(mean_rate(&stream(&[5, 5, 5])).is_none());
        assert!(mean_rate::<u32>(&[]).is_none());
    }

    #[test]
    fn rescale_achieves_target_rate() {
        let s = stream(&(0..1_000).map(|i| i * 20).collect::<Vec<_>>());
        let fast = rescale_to_rate(&s, 100.0);
        let r = mean_rate(&fast).unwrap();
        assert!((r - 100.0).abs() / 100.0 < 0.01, "got {r}");
    }

    #[test]
    fn rescale_preserves_order_and_origin() {
        let s = stream(&[100, 160, 220, 400]);
        let fast = rescale_to_rate(&s, 1.0);
        assert_eq!(fast[0].0, Timestamp(100));
        for w in fast.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Values (payloads) untouched.
        assert_eq!(
            fast.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn rescale_slowdown_also_works() {
        let s = stream(&(0..100).collect::<Vec<_>>()); // ~1 item/sec
        let slow = rescale_to_rate(&s, 0.1);
        let r = mean_rate(&slow).unwrap();
        assert!((r - 0.1).abs() / 0.1 < 0.05, "got {r}");
    }
}
