//! Key-based shard routing for parallel stream operators.
//!
//! A sharded operator splits its keyed input across `n` workers so that
//! every key is always handled by the same worker. For per-vessel state
//! machines (the mobility tracker's) this is the *only* invariant needed
//! for equivalence with serial execution: each vessel's tuples arrive at
//! one worker, in order, so its critical-point subsequence is identical.
//!
//! Routing must be a pure function of the key — stable across calls,
//! processes, and platforms — so that replays, differential tests, and
//! distributed deployments all agree. It should also spread real-world
//! key populations (MMSIs share long country-code prefixes) evenly, hence
//! the 64-bit finalizer mix rather than a bare modulo.

/// Stable 64-bit mixing function (the SplitMix64 finalizer). Bijective,
/// with high avalanche: flipping any input bit flips ~half the output
/// bits, so consecutive or prefix-sharing keys land in unrelated shards.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Routes 64-bit keys to one of `n` shards, stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards ≥ 1` shards.
    ///
    /// # Panics
    /// If `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a router needs at least one shard");
        Self { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`. Pure: the same key always routes to the
    /// same shard for a given shard count.
    #[must_use]
    pub fn route(&self, key: u64) -> usize {
        (mix64(key) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for key in 0..10_000u64 {
            let s = r.route(key);
            assert!(s < 4);
            assert_eq!(s, r.route(key), "routing must be pure");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1);
        for key in [0u64, 1, u64::MAX, 240_000_123] {
            assert_eq!(r.route(key), 0);
        }
    }

    #[test]
    fn prefix_sharing_keys_spread_evenly() {
        // MMSIs share 3-digit country prefixes; a bare modulo would pile
        // consecutive registrations onto few shards in pathological ways.
        let r = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for suffix in 0..8_000u64 {
            counts[r.route(237_000_000 + suffix)] += 1;
        }
        let expected = 1_000.0;
        for (shard, &c) in counts.iter().enumerate() {
            let deviation = (c as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "shard {shard} holds {c} of 8000 keys (>{:.0}% off uniform)",
                deviation * 100.0
            );
        }
    }

    #[test]
    fn mix64_is_deterministic_reference() {
        // Pinned outputs: routing feeds golden fixtures, so the mix must
        // never change silently.
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0x5692_161D_100B_05E5);
        assert_eq!(mix64(240_000_123), 0xCD7F_2D5A_6CAB_C056);
    }
}
