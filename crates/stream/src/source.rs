//! Per-source admission control for multi-feed live ingestion.
//!
//! `surveil serve` drains many physical feeds at once — TCP connections
//! and UDP peers, each a [`SourceId`]. Real NMEA routers sit exactly here:
//! they tag, filter, and de-duplicate sentences per input before the
//! merged stream reaches any consumer. [`SourceMux`] is that layer: a
//! cheap syntactic filter (only AIVDM/AIVDO sentences of plausible length
//! pass), a cross-source duplicate suppressor (two receivers hearing the
//! same transmission forward byte-identical sentences seconds apart), and
//! per-source counters for the operator's `/sources` endpoint.
//!
//! The mux is deliberately *upstream* of the
//! [`AdmissionBuffer`](crate::AdmissionBuffer): it judges raw lines, not
//! decoded positions, so junk never costs a decode and duplicates never
//! occupy admission slots.

use std::collections::{BTreeMap, HashMap};

use crate::{Duration, Timestamp};

/// Identifies one physical feed (a TCP connection or a UDP peer) for the
/// lifetime of that feed. Ids are never reused within a server run: a
/// reconnecting client is a *new* source, which is what keeps per-source
/// defragmenter state from mixing pre- and post-reconnect fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

/// The mux's ruling on one raw line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceVerdict {
    /// Forward to admission/decoding.
    Accepted,
    /// Dropped by the syntactic filter: not an AIVDM/AIVDO sentence, or
    /// implausibly long for one.
    Filtered,
    /// Dropped as a cross-source duplicate: the identical sentence was
    /// already accepted within the dedup window.
    Duplicate,
}

/// Per-source counters, snapshot for the `/sources` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Raw lines presented by this source.
    pub lines: u64,
    /// Lines forwarded to the pipeline.
    pub accepted: u64,
    /// Lines dropped by the syntactic filter.
    pub filtered: u64,
    /// Lines dropped as cross-source duplicates.
    pub duplicates: u64,
    /// Event time of the first line seen (`None` before any line).
    pub first_seen: Option<Timestamp>,
    /// Event time of the most recent line.
    pub last_seen: Option<Timestamp>,
}

impl SourceStats {
    /// Accepted sentences per event-time second, the "sentences/s per
    /// source" figure of the handbook. At least one second of span is
    /// assumed so a single-line source reads as its own count, not ∞.
    #[must_use]
    pub fn sentences_per_sec(&self) -> f64 {
        let span = match (self.first_seen, self.last_seen) {
            (Some(a), Some(b)) => (b.0 - a.0).max(1),
            _ => 1,
        };
        self.accepted as f64 / span as f64
    }
}

/// Longest line the filter accepts. An AIVDM sentence is bounded by the
/// NMEA 82-character frame; anything past this is line noise or a
/// protocol confusion (an HTTP request aimed at the NMEA port, say).
pub const MAX_SENTENCE_BYTES: usize = 256;

/// Upper bound on the dedup table before old hashes are pruned.
const DEDUP_TABLE_CAP: usize = 1 << 16;

/// Multi-source line admission: filter, cross-source dedup, per-source
/// accounting. See the module docs for where this sits in the serve
/// pipeline.
#[derive(Debug)]
pub struct SourceMux {
    dedup_window: Duration,
    /// sentence-hash → event time it was last accepted.
    seen: HashMap<u64, Timestamp>,
    stats: BTreeMap<SourceId, SourceStats>,
}

impl SourceMux {
    /// Creates a mux suppressing byte-identical sentences that recur
    /// within `dedup_window` (event time). A zero window disables dedup —
    /// every well-formed line passes, which is what batch replay wants.
    #[must_use]
    pub fn new(dedup_window: Duration) -> Self {
        Self {
            dedup_window,
            seen: HashMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// Judges one raw line from `source` carrying event time `t`.
    pub fn admit(&mut self, source: SourceId, t: Timestamp, line: &str) -> SourceVerdict {
        let stat = self.stats.entry(source).or_default();
        stat.lines += 1;
        if stat.first_seen.is_none() {
            stat.first_seen = Some(t);
        }
        stat.last_seen = Some(t);
        if !plausible_sentence(line) {
            stat.filtered += 1;
            return SourceVerdict::Filtered;
        }
        if self.dedup_window.0 > 0 {
            let h = fnv1a(line.as_bytes());
            if let Some(&prev) = self.seen.get(&h) {
                if (t.0 - prev.0).abs() <= self.dedup_window.0 {
                    stat.duplicates += 1;
                    return SourceVerdict::Duplicate;
                }
            }
            if self.seen.len() >= DEDUP_TABLE_CAP {
                let window = self.dedup_window.0;
                self.seen.retain(|_, &mut prev| (t.0 - prev.0).abs() <= window);
            }
            self.seen.insert(h, t);
        }
        stat.accepted += 1;
        SourceVerdict::Accepted
    }

    /// Per-source counters, ordered by source id.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &SourceStats)> {
        self.stats.iter().map(|(id, s)| (*id, s))
    }

    /// Counters for one source, if it has ever sent a line.
    #[must_use]
    pub fn stats(&self, source: SourceId) -> Option<&SourceStats> {
        self.stats.get(&source)
    }

    /// Number of sources that have ever sent a line.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.stats.len()
    }
}

/// The syntactic filter: AIVDM/AIVDO framing and a plausible length.
/// Checksum and field validation stay with the scanner — this only keeps
/// obvious non-AIS traffic away from the decode path.
#[must_use]
pub fn plausible_sentence(line: &str) -> bool {
    (line.starts_with("!AIVDM,") || line.starts_with("!AIVDO,"))
        && line.len() <= MAX_SENTENCE_BYTES
}

/// FNV-1a, enough to key byte-identical sentence suppression.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "!AIVDM,1,1,,A,13u?etPv2;0n:dDPwUM1U1Cb069D,0*24";

    #[test]
    fn filter_drops_non_ais_traffic() {
        let mut mux = SourceMux::new(Duration(10));
        let s = SourceId(1);
        assert_eq!(mux.admit(s, Timestamp(0), LINE), SourceVerdict::Accepted);
        assert_eq!(
            mux.admit(s, Timestamp(1), "GET /metrics HTTP/1.1"),
            SourceVerdict::Filtered
        );
        assert_eq!(
            mux.admit(s, Timestamp(2), "$GPGGA,junk*7F"),
            SourceVerdict::Filtered
        );
        let long = format!("!AIVDM,{}", "x".repeat(MAX_SENTENCE_BYTES));
        assert_eq!(mux.admit(s, Timestamp(3), &long), SourceVerdict::Filtered);
        let st = *mux.stats(s).unwrap();
        assert_eq!((st.lines, st.accepted, st.filtered), (4, 1, 3));
    }

    #[test]
    fn duplicate_across_sources_is_suppressed_within_window() {
        let mut mux = SourceMux::new(Duration(10));
        assert_eq!(
            mux.admit(SourceId(1), Timestamp(100), LINE),
            SourceVerdict::Accepted
        );
        // Second receiver heard the same transmission 3 s later.
        assert_eq!(
            mux.admit(SourceId(2), Timestamp(103), LINE),
            SourceVerdict::Duplicate
        );
        // Out-of-order duplicate (earlier event time) is still a duplicate.
        assert_eq!(
            mux.admit(SourceId(3), Timestamp(97), LINE),
            SourceVerdict::Duplicate
        );
        // Far outside the window it is a legitimate retransmission.
        assert_eq!(
            mux.admit(SourceId(2), Timestamp(200), LINE),
            SourceVerdict::Accepted
        );
        assert_eq!(mux.source_count(), 3);
    }

    #[test]
    fn zero_window_disables_dedup() {
        let mut mux = SourceMux::new(Duration(0));
        assert_eq!(
            mux.admit(SourceId(1), Timestamp(0), LINE),
            SourceVerdict::Accepted
        );
        assert_eq!(
            mux.admit(SourceId(1), Timestamp(0), LINE),
            SourceVerdict::Accepted
        );
    }

    #[test]
    fn sentences_per_sec_uses_event_time_span() {
        let mut mux = SourceMux::new(Duration(0));
        let s = SourceId(7);
        for t in 0..20 {
            mux.admit(s, Timestamp(t * 5), LINE);
        }
        let st = mux.stats(s).unwrap();
        assert_eq!(st.accepted, 20);
        let rate = st.sentences_per_sec();
        assert!((rate - 20.0 / 95.0).abs() < 1e-9, "{rate}");
    }
}
