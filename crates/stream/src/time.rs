//! Discrete time model.
//!
//! The paper's positional samples are "measured at discrete, totally ordered
//! timestamps τ (e.g., at the granularity of seconds)" (§2), and RTEC's time
//! model "is linear and includes integer time-points" (§4.1). We therefore
//! use integer seconds throughout.

use serde::{Deserialize, Serialize};

/// A point in stream time: seconds since the start of the monitored period.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A span of stream time in seconds. Always non-negative by construction
/// from the named constructors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Duration(pub i64);

impl Timestamp {
    /// The origin of stream time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Seconds since the origin.
    #[must_use]
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Time elapsed from `earlier` to `self`; zero if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration((self.0 - earlier.0).max(0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// A span of `s` seconds (clamped at zero).
    #[must_use]
    pub fn secs(s: i64) -> Self {
        Self(s.max(0))
    }

    /// A span of `m` minutes.
    #[must_use]
    pub fn minutes(m: i64) -> Self {
        Self::secs(m * 60)
    }

    /// A span of `h` hours.
    #[must_use]
    pub fn hours(h: i64) -> Self {
        Self::secs(h * 3_600)
    }

    /// A span of `d` days.
    #[must_use]
    pub fn days(d: i64) -> Self {
        Self::secs(d * 86_400)
    }

    /// The span in whole seconds.
    #[must_use]
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// The span in fractional hours (for reporting).
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Formats as `Dd HH:MM:SS`, matching the paper's Table 4 presentation
    /// ("Average travel time per trip: 1 day 07:20:58").
    #[must_use]
    pub fn to_dhms(self) -> String {
        let total = self.0;
        let days = total / 86_400;
        let h = (total % 86_400) / 3_600;
        let m = (total % 3_600) / 60;
        let s = total % 60;
        if days > 0 {
            format!("{days}d {h:02}:{m:02}:{s:02}")
        } else {
            format!("{h:02}:{m:02}:{s:02}")
        }
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl std::ops::Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = Timestamp(100) + Duration::secs(50);
        assert_eq!(t, Timestamp(150));
        assert_eq!(t - Duration::secs(150), Timestamp::ZERO);
    }

    #[test]
    fn since_is_saturating() {
        assert_eq!(Timestamp(10).since(Timestamp(100)), Duration::ZERO);
        assert_eq!(Timestamp(100).since(Timestamp(10)), Duration::secs(90));
    }

    #[test]
    fn constructors_convert_units() {
        assert_eq!(Duration::minutes(2), Duration::secs(120));
        assert_eq!(Duration::hours(1), Duration::secs(3_600));
        assert_eq!(Duration::days(1), Duration::hours(24));
    }

    #[test]
    fn negative_secs_clamped_to_zero() {
        assert_eq!(Duration::secs(-5), Duration::ZERO);
    }

    #[test]
    fn dhms_formatting_matches_table4_style() {
        let d = Duration::days(1) + Duration::hours(7) + Duration::minutes(20) + Duration::secs(58);
        assert_eq!(d.to_dhms(), "1d 07:20:58");
        assert_eq!(Duration::secs(59).to_dhms(), "00:00:59");
        assert_eq!(Duration::hours(2).to_dhms(), "02:00:00");
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = vec![Timestamp(5), Timestamp(1), Timestamp(3)];
        ts.sort();
        assert_eq!(ts, vec![Timestamp(1), Timestamp(3), Timestamp(5)]);
    }

    #[test]
    fn hours_f64() {
        assert!((Duration::minutes(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
