//! Window specifications and the per-item sliding buffer.

use std::collections::VecDeque;

use maritime_obs::{names, LazyCounter};
use serde::{Deserialize, Serialize};

use crate::time::{Duration, Timestamp};

/// Global windowing metrics, aggregated across every [`SlidingWindow`]
/// instance in the process (see `OBSERVABILITY.md`).
static OBS_SLIDES: LazyCounter = LazyCounter::new(names::STREAM_WINDOW_SLIDES);
static OBS_EVICTIONS: LazyCounter = LazyCounter::new(names::STREAM_WINDOW_EVICTIONS);

/// A sliding-window specification: range ω and slide step β (§2).
///
/// "Typically it holds that β < ω; so, as time goes by, successive window
/// instantiations may share positional tuples over their partially
/// overlapping ranges." Equality (a tumbling window) is also allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Range ω: how far back the window reaches.
    pub range: Duration,
    /// Slide step β: how often the window advances.
    pub slide: Duration,
}

impl WindowSpec {
    /// Creates a spec, validating that both spans are positive and that the
    /// slide does not exceed the range (the paper's delayed-event handling
    /// in Figure 5 relies on β ≤ ω).
    pub fn new(range: Duration, slide: Duration) -> Result<Self, WindowSpecError> {
        if range.as_secs() <= 0 {
            return Err(WindowSpecError::NonPositiveRange(range));
        }
        if slide.as_secs() <= 0 {
            return Err(WindowSpecError::NonPositiveSlide(slide));
        }
        if slide > range {
            return Err(WindowSpecError::SlideExceedsRange { range, slide });
        }
        Ok(Self { range, slide })
    }

    /// The query times Q₁, Q₂, … starting after `origin`: the first query
    /// fires one slide after origin, then every β (§4.2).
    #[must_use]
    pub fn query_times(&self, origin: Timestamp, until: Timestamp) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut q = origin + self.slide;
        while q <= until {
            out.push(q);
            q = q + self.slide;
        }
        out
    }

    /// The half-open interval `(q - ω, q]` covered by the window at query
    /// time `q`.
    #[must_use]
    pub fn coverage(&self, q: Timestamp) -> (Timestamp, Timestamp) {
        (q - self.range, q)
    }
}

/// Error constructing a [`WindowSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpecError {
    /// Range ω must be positive.
    NonPositiveRange(Duration),
    /// Slide β must be positive.
    NonPositiveSlide(Duration),
    /// β must not exceed ω.
    SlideExceedsRange {
        /// The offending range.
        range: Duration,
        /// The offending slide.
        slide: Duration,
    },
}

impl std::fmt::Display for WindowSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonPositiveRange(r) => write!(f, "window range must be positive, got {r}"),
            Self::NonPositiveSlide(s) => write!(f, "window slide must be positive, got {s}"),
            Self::SlideExceedsRange { range, slide } => {
                write!(f, "slide {slide} exceeds range {range}")
            }
        }
    }
}

impl std::error::Error for WindowSpecError {}

/// A time-ordered sliding buffer of timestamped items.
///
/// Items are appended in arrival order (which may lag stream time — the
/// append-only AIS stream can deliver messages late, §4.2) and evicted when
/// the window slides past them. Eviction returns the expired items so the
/// caller can forward them as "delta" records to the staging area (§3.2).
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    items: VecDeque<(Timestamp, T)>,
    spec: WindowSpec,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window with the given spec.
    #[must_use]
    pub fn new(spec: WindowSpec) -> Self {
        Self {
            items: VecDeque::new(),
            spec,
        }
    }

    /// The window specification.
    #[must_use]
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Inserts an item, keeping the buffer sorted by timestamp.
    ///
    /// Fast path: in-order arrival appends at the back in O(1). Late
    /// arrivals walk back from the end, so mild disorder stays cheap.
    pub fn insert(&mut self, t: Timestamp, item: T) {
        if self.items.back().is_none_or(|(bt, _)| *bt <= t) {
            self.items.push_back((t, item));
            return;
        }
        let pos = self.items.partition_point(|(it, _)| *it <= t);
        self.items.insert(pos, (t, item));
    }

    /// Slides the window to query time `q`, evicting every item with
    /// timestamp ≤ `q − ω` ("All MEs that took place before or at Qᵢ−ω are
    /// discarded", §4.2). Returns the evicted items, oldest first.
    pub fn slide_to(&mut self, q: Timestamp) -> Vec<(Timestamp, T)> {
        let cutoff = q - self.spec.range;
        let mut evicted = Vec::new();
        while let Some((t, _)) = self.items.front() {
            if *t <= cutoff {
                let (t, item) = self.items.pop_front().expect("front exists");
                evicted.push((t, item));
            } else {
                break;
            }
        }
        OBS_SLIDES.inc();
        OBS_EVICTIONS.add(evicted.len() as u64);
        evicted
    }

    /// [`SlidingWindow::slide_to`] for callers that do not forward the
    /// expired items: drops them in place and returns only their count,
    /// so a steadily sliding window evicts without allocating.
    pub fn slide_to_discarding(&mut self, q: Timestamp) -> usize {
        let cutoff = q - self.spec.range;
        let mut evicted = 0;
        while self.items.front().is_some_and(|(t, _)| *t <= cutoff) {
            self.items.pop_front();
            evicted += 1;
        }
        OBS_SLIDES.inc();
        OBS_EVICTIONS.add(evicted as u64);
        evicted
    }

    /// Items currently in the window, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &T)> {
        self.items.iter().map(|(t, item)| (*t, item))
    }

    /// The buffered items as one contiguous time-ordered slice, oldest
    /// first. Rearranges the ring buffer in place if it has wrapped (no
    /// allocation), so repeated calls on a steadily sliding window are
    /// O(1) amortised — this is the zero-copy working-memory snapshot the
    /// recognition engine evaluates over, replacing a per-query
    /// `Vec<(Timestamp, &T)>` collect.
    pub fn contiguous(&mut self) -> &[(Timestamp, T)] {
        self.items.make_contiguous();
        self.items.as_slices().0
    }

    /// Items with timestamp strictly greater than `after`, oldest first.
    /// Used to fetch "fresh" positions arrived since the previous slide.
    pub fn iter_after(&self, after: Timestamp) -> impl Iterator<Item = (Timestamp, &T)> {
        let start = self.items.partition_point(|(t, _)| *t <= after);
        self.items.range(start..).map(|(t, item)| (*t, item))
    }

    /// Number of buffered items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(range_s: i64, slide_s: i64) -> WindowSpec {
        WindowSpec::new(Duration::secs(range_s), Duration::secs(slide_s)).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::new(Duration::secs(0), Duration::secs(1)).is_err());
        assert!(WindowSpec::new(Duration::secs(10), Duration::secs(0)).is_err());
        assert!(WindowSpec::new(Duration::secs(10), Duration::secs(20)).is_err());
        assert!(WindowSpec::new(Duration::secs(10), Duration::secs(10)).is_ok());
    }

    #[test]
    fn query_times_step_by_slide() {
        let s = spec(60, 20);
        assert_eq!(
            s.query_times(Timestamp(0), Timestamp(65)),
            vec![Timestamp(20), Timestamp(40), Timestamp(60)]
        );
    }

    #[test]
    fn coverage_is_range_wide() {
        let s = spec(60, 20);
        assert_eq!(s.coverage(Timestamp(100)), (Timestamp(40), Timestamp(100)));
    }

    #[test]
    fn eviction_respects_half_open_interval() {
        let mut w = SlidingWindow::new(spec(60, 20));
        for t in [10, 40, 41, 100] {
            w.insert(Timestamp(t), t);
        }
        // At q=100, cutoff is 40: items at 10 and exactly 40 are discarded.
        let evicted = w.slide_to(Timestamp(100));
        assert_eq!(
            evicted.iter().map(|(t, _)| t.0).collect::<Vec<_>>(),
            vec![10, 40]
        );
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn late_arrivals_are_kept_sorted() {
        let mut w = SlidingWindow::new(spec(100, 10));
        w.insert(Timestamp(10), "a");
        w.insert(Timestamp(30), "c");
        w.insert(Timestamp(20), "b"); // late
        let order: Vec<_> = w.iter().map(|(_, s)| *s).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn iter_after_returns_strictly_newer() {
        let mut w = SlidingWindow::new(spec(100, 10));
        for t in [10, 20, 30, 40] {
            w.insert(Timestamp(t), t);
        }
        let fresh: Vec<_> = w.iter_after(Timestamp(20)).map(|(t, _)| t.0).collect();
        assert_eq!(fresh, vec![30, 40]);
    }

    #[test]
    fn duplicate_timestamps_preserve_insertion_order() {
        let mut w = SlidingWindow::new(spec(100, 10));
        w.insert(Timestamp(10), "first");
        w.insert(Timestamp(10), "second");
        let order: Vec<_> = w.iter().map(|(_, s)| *s).collect();
        assert_eq!(order, vec!["first", "second"]);
    }

    #[test]
    fn contiguous_matches_iter_after_wraparound() {
        let mut w = SlidingWindow::new(spec(60, 20));
        for t in 0..30 {
            w.insert(Timestamp(t * 10), t);
        }
        // Slide enough that the VecDeque head has moved, then refill so
        // the ring wraps; contiguous() must still see everything in order.
        w.slide_to(Timestamp(200));
        for t in 30..40 {
            w.insert(Timestamp(t * 10), t);
        }
        let from_iter: Vec<(Timestamp, i64)> = w.iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(w.contiguous(), &from_iter[..]);
        assert!(w.contiguous().windows(2).all(|p| p[0].0 <= p[1].0));
    }

    #[test]
    fn slide_on_empty_window_is_noop() {
        let mut w: SlidingWindow<u32> = SlidingWindow::new(spec(60, 20));
        assert!(w.slide_to(Timestamp(1_000)).is_empty());
        assert!(w.is_empty());
    }
}
