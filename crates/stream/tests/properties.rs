//! Property-based tests for the windowing infrastructure.

use maritime_stream::{Duration, SlideBatches, SlidingWindow, Timestamp, WindowSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WindowSpec> {
    (1i64..500, 1i64..500).prop_map(|(a, b)| {
        let (slide, range) = if a <= b { (a, b) } else { (b, a) };
        WindowSpec::new(Duration::secs(range), Duration::secs(slide)).unwrap()
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<(Timestamp, u32)>> {
    prop::collection::vec((0i64..5_000, any::<u32>()), 0..200).prop_map(|mut v| {
        v.sort_by_key(|(t, _)| *t);
        v.into_iter().map(|(t, x)| (Timestamp(t), x)).collect()
    })
}

proptest! {
    #[test]
    fn slide_batches_deliver_every_item_exactly_once(
        stream in arb_stream(), spec in arb_spec()
    ) {
        let expected: Vec<u32> = stream.iter().map(|(_, x)| *x).collect();
        let delivered: Vec<u32> =
            SlideBatches::new(stream.into_iter(), spec, Timestamp::ZERO)
                .flat_map(|b| b.items.into_iter().map(|(_, x)| x))
                .collect();
        prop_assert_eq!(delivered, expected);
    }

    #[test]
    fn batch_items_respect_query_time(stream in arb_stream(), spec in arb_spec()) {
        for batch in SlideBatches::new(stream.into_iter(), spec, Timestamp::ZERO) {
            for (t, _) in &batch.items {
                prop_assert!(*t <= batch.query_time);
            }
        }
    }

    #[test]
    fn window_iteration_is_sorted_after_random_insertion(
        mut items in prop::collection::vec(0i64..10_000, 0..100)
    ) {
        let spec = WindowSpec::new(Duration::secs(100_000), Duration::secs(1)).unwrap();
        let mut w = SlidingWindow::new(spec);
        for &t in &items {
            w.insert(Timestamp(t), t);
        }
        let order: Vec<i64> = w.iter().map(|(t, _)| t.as_secs()).collect();
        items.sort_unstable();
        prop_assert_eq!(order, items);
    }

    #[test]
    fn eviction_is_complete_and_exact(
        items in prop::collection::vec(0i64..10_000, 0..100),
        range in 1i64..5_000,
        q in 0i64..20_000,
    ) {
        let spec = WindowSpec::new(Duration::secs(range), Duration::secs(1)).unwrap();
        let mut w = SlidingWindow::new(spec);
        for &t in &items {
            w.insert(Timestamp(t), t);
        }
        let evicted = w.slide_to(Timestamp(q));
        let cutoff = q - range;
        // Everything evicted is at or before the cutoff...
        for (t, _) in &evicted {
            prop_assert!(t.as_secs() <= cutoff);
        }
        // ...everything retained is after it...
        for (t, _) in w.iter() {
            prop_assert!(t.as_secs() > cutoff);
        }
        // ...and nothing is lost.
        prop_assert_eq!(evicted.len() + w.len(), items.len());
    }

    #[test]
    fn query_times_are_exactly_slide_spaced(spec in arb_spec(), horizon in 0i64..10_000) {
        let qs = spec.query_times(Timestamp::ZERO, Timestamp(horizon));
        for (i, q) in qs.iter().enumerate() {
            prop_assert_eq!(q.as_secs(), (i as i64 + 1) * spec.slide.as_secs());
        }
        if let Some(last) = qs.last() {
            prop_assert!(last.as_secs() <= horizon);
            prop_assert!(last.as_secs() + spec.slide.as_secs() > horizon);
        }
    }

    #[test]
    fn rescale_preserves_length_and_order(
        stream in arb_stream().prop_filter("needs span", |s| {
            s.len() >= 2 && s.first().map(|f| f.0) != s.last().map(|l| l.0)
        }),
        target in 0.1f64..1_000.0,
    ) {
        let scaled = maritime_stream::rate::rescale_to_rate(&stream, target);
        prop_assert_eq!(scaled.len(), stream.len());
        for w in scaled.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        // Payloads untouched, in order.
        let orig: Vec<u32> = stream.iter().map(|(_, x)| *x).collect();
        let kept: Vec<u32> = scaled.iter().map(|(_, x)| *x).collect();
        prop_assert_eq!(orig, kept);
    }
}
