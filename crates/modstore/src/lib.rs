//! Moving-object database substrate — the Hermes MOD analogue (§3.2, §3.3).
//!
//! The paper archives compressed trajectories in Hermes MOD on PostgreSQL;
//! this crate provides an embedded equivalent exercising the same pipeline
//! stages measured in Figure 10 and the statistics of Table 4:
//!
//! * [`staging`] — the intermediate staging table receiving "delta"
//!   critical points evicted from the sliding window;
//! * [`trip`] — offline trajectory reconstruction: segmentation of each
//!   vessel's critical-point sequence into *trips between ports*, with
//!   semantic enrichment (origin/destination port names);
//! * [`store`] — the trajectory archive: loading, per-vessel segment
//!   lists, Table 4 statistics, and OD matrices;
//! * [`query`] — spatiotemporal range / nearest-neighbour / similarity
//!   queries over archived trips;
//! * [`cluster`] — spatiotemporal clustering of trips (§3.3: "two (or
//!   more) trajectory clusters may be almost identical spatially, but ...
//!   the temporal dimension is taken into consideration").

#![warn(missing_docs)]

pub mod cluster;
pub mod enrich;
pub mod query;
pub mod staging;
pub mod stats;
pub mod store;
pub mod trip;

pub use enrich::{audit_destinations, DestinationAudit};
pub use staging::StagingArea;
pub use stats::ArchiveStats;
pub use store::TrajectoryStore;
pub use trip::{Trip, TripReconstructor};
