//! The staging area for "delta" critical points.
//!
//! "Once the window slides forward, expiring critical points are
//! transferred in an intermediate staging table on disk. So, this table
//! temporarily records all recent 'delta' changes, i.e., critical points
//! evicted from the window, but not yet admitted in disk-based
//! trajectories" (§3.2). Points stay staged until trip reconstruction
//! assigns them to a trajectory; open-ended voyages keep "piling up in the
//! staging table awaiting assignment".

use std::collections::HashMap;

use maritime_ais::Mmsi;
use maritime_obs::{names, LazyCounter};
use maritime_tracker::CriticalPoint;

/// Points staged, across every [`StagingArea`] in the process.
static OBS_STAGED: LazyCounter = LazyCounter::new(names::MODSTORE_POINTS_STAGED);

/// The staging table, organized per vessel in time order.
#[derive(Debug, Default)]
pub struct StagingArea {
    per_vessel: HashMap<Mmsi, Vec<CriticalPoint>>,
    staged_total: u64,
}

impl StagingArea {
    /// An empty staging area.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages a batch of evicted critical points.
    pub fn stage_batch(&mut self, points: &[CriticalPoint]) {
        for cp in points {
            self.stage(*cp);
        }
    }

    /// Stages one critical point, keeping per-vessel time order.
    pub fn stage(&mut self, cp: CriticalPoint) {
        let seq = self.per_vessel.entry(cp.mmsi).or_default();
        if seq.last().is_some_and(|last| last.timestamp > cp.timestamp) {
            let pos = seq.partition_point(|p| p.timestamp <= cp.timestamp);
            seq.insert(pos, cp);
        } else {
            seq.push(cp);
        }
        self.staged_total += 1;
        OBS_STAGED.inc();
    }

    /// Points currently staged for a vessel.
    #[must_use]
    pub fn vessel_points(&self, mmsi: Mmsi) -> &[CriticalPoint] {
        self.per_vessel.get(&mmsi).map_or(&[], Vec::as_slice)
    }

    /// Vessels with staged points, in ascending MMSI order (deterministic).
    #[must_use]
    pub fn vessels(&self) -> Vec<Mmsi> {
        let mut v: Vec<Mmsi> = self.per_vessel.keys().copied().collect();
        v.sort();
        v
    }

    /// Points currently staged (across all vessels).
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_vessel.values().map(Vec::len).sum()
    }

    /// Whether nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total points ever staged (monotone counter).
    #[must_use]
    pub fn staged_total(&self) -> u64 {
        self.staged_total
    }

    /// Removes and returns the first `count` staged points of a vessel
    /// (those consumed by trip reconstruction).
    pub fn take_prefix(&mut self, mmsi: Mmsi, count: usize) -> Vec<CriticalPoint> {
        let Some(seq) = self.per_vessel.get_mut(&mmsi) else {
            return Vec::new();
        };
        let count = count.min(seq.len());
        let taken: Vec<CriticalPoint> = seq.drain(..count).collect();
        if seq.is_empty() {
            self.per_vessel.remove(&mmsi);
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;
    use maritime_tracker::Annotation;

    fn cp(mmsi: u32, t: i64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(t),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        }
    }

    #[test]
    fn staging_groups_per_vessel_in_time_order() {
        let mut s = StagingArea::new();
        s.stage_batch(&[cp(1, 30), cp(2, 10), cp(1, 10), cp(1, 20)]);
        let pts = s.vessel_points(Mmsi(1));
        let ts: Vec<i64> = pts.iter().map(|p| p.timestamp.0).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(s.vessel_points(Mmsi(2)).len(), 1);
        assert_eq!(s.len(), 4);
        assert_eq!(s.staged_total(), 4);
    }

    #[test]
    fn take_prefix_drains_and_cleans_up() {
        let mut s = StagingArea::new();
        s.stage_batch(&[cp(1, 10), cp(1, 20), cp(1, 30)]);
        let taken = s.take_prefix(Mmsi(1), 2);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[1].timestamp.0, 20);
        assert_eq!(s.len(), 1);
        let rest = s.take_prefix(Mmsi(1), 10);
        assert_eq!(rest.len(), 1);
        assert!(s.is_empty());
        assert!(s.vessels().is_empty());
        // Counter is monotone: it tracks throughput, not occupancy.
        assert_eq!(s.staged_total(), 3);
    }

    #[test]
    fn take_prefix_of_unknown_vessel_is_empty() {
        let mut s = StagingArea::new();
        assert!(s.take_prefix(Mmsi(9), 5).is_empty());
    }

    #[test]
    fn vessels_listing_is_sorted() {
        let mut s = StagingArea::new();
        s.stage_batch(&[cp(5, 1), cp(2, 1), cp(9, 1)]);
        assert_eq!(s.vessels(), vec![Mmsi(2), Mmsi(5), Mmsi(9)]);
    }
}
