//! Offline trajectory reconstruction: trips between ports (§3.2).
//!
//! "A long journey breaks up into smaller trips between ports. ... This
//! method takes as input the critical points identified as long-term stops
//! and a set of known port areas (polygons). Once a stop is located inside
//! such a polygon, the name of the respective port becomes an attribute of
//! that point. It is reasonable to assume that between two such distinct
//! stops O and D, the ship sailed from origin port O and reached
//! destination port D. ... origin port O may remain unknown, because the
//! ship might have been on the move when the AIS base stations started
//! receiving its signals."

use maritime_ais::Mmsi;
use maritime_geo::{haversine_distance_m, Area, AreaKind, GeoPoint};
use maritime_stream::{Duration, Timestamp};
use maritime_tracker::{Annotation, CriticalPoint};
use serde::{Deserialize, Serialize};

use crate::staging::StagingArea;

/// A reconstructed trip: the trajectory segment between two port calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    /// The vessel.
    pub mmsi: Mmsi,
    /// Origin port name; `None` when the vessel was first seen under way.
    pub origin: Option<String>,
    /// Destination port name (always known: a trip closes at a port stop).
    pub destination: String,
    /// The trip's critical points, in time order.
    pub points: Vec<CriticalPoint>,
    /// Departure time (first point).
    pub departed: Timestamp,
    /// Arrival time (last point).
    pub arrived: Timestamp,
}

impl Trip {
    /// Travel time.
    #[must_use]
    pub fn travel_time(&self) -> Duration {
        self.arrived - self.departed
    }

    /// Traveled distance in meters (sum over consecutive points).
    #[must_use]
    pub fn distance_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| haversine_distance_m(w[0].position, w[1].position))
            .sum()
    }

    /// Number of critical points describing the trip.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trip carries no points (never produced by the
    /// reconstructor, but part of the container contract).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding positions convenience: first and last point.
    #[must_use]
    pub fn endpoints(&self) -> Option<(GeoPoint, GeoPoint)> {
        Some((self.points.first()?.position, self.points.last()?.position))
    }
}

/// Segments staged critical points into trips between port calls.
pub struct TripReconstructor {
    ports: Vec<Area>,
}

impl TripReconstructor {
    /// Creates a reconstructor over the given areas (non-port areas are
    /// ignored).
    #[must_use]
    pub fn new(areas: &[Area]) -> Self {
        Self {
            ports: areas
                .iter()
                .filter(|a| a.kind == AreaKind::Port)
                .cloned()
                .collect(),
        }
    }

    /// The port whose polygon contains the point, if any.
    #[must_use]
    pub fn port_of(&self, p: GeoPoint) -> Option<&Area> {
        self.ports.iter().find(|a| a.contains(p))
    }

    /// Whether a critical point marks a port call: a long-term stop whose
    /// cluster centroid lies inside a port polygon.
    fn port_call(&self, cp: &CriticalPoint) -> Option<&Area> {
        match cp.annotation {
            Annotation::StopEnd { centroid, .. } => self.port_of(centroid),
            _ => None,
        }
    }

    /// Drains completed trips for every vessel in the staging area.
    ///
    /// For each vessel, the point sequence is cut at port calls; each cut
    /// closes one trip whose destination is the port. Points after the
    /// last port call stay staged ("open-ended trips").
    pub fn reconstruct(&self, staging: &mut StagingArea) -> Vec<Trip> {
        let mut trips = Vec::new();
        for mmsi in staging.vessels() {
            let points = staging.vessel_points(mmsi);
            // Indices of port-call points plus the port they hit.
            let calls: Vec<(usize, String)> = points
                .iter()
                .enumerate()
                .filter_map(|(i, cp)| self.port_call(cp).map(|a| (i, a.name.clone())))
                .collect();
            let Some((last_call_idx, _)) = calls.last() else {
                continue; // still under way: everything stays staged
            };
            let consumed = last_call_idx + 1;
            let drained = staging.take_prefix(mmsi, consumed);

            let mut origin: Option<String> = None;
            let mut start = 0usize;
            for (idx, port_name) in calls {
                let segment: Vec<CriticalPoint> = drained[start..=idx].to_vec();
                // A segment is a trip unless it is noise: a lone stop in
                // the same port as the previous call (the ship never
                // left), or the initial berth (a lone stop before any
                // movement was ever seen). A one-point segment between
                // *different* ports is a real — if sparsely described —
                // voyage and must be kept, or origin chaining breaks.
                let keep = segment.len() >= 2
                    || origin.as_deref().is_some_and(|o| o != port_name);
                if keep {
                    trips.push(Trip {
                        mmsi,
                        origin: origin.clone(),
                        destination: port_name.clone(),
                        departed: segment[0].timestamp,
                        arrived: segment[segment.len() - 1].timestamp,
                        points: segment,
                    });
                }
                origin = Some(port_name);
                start = idx + 1;
            }
        }
        trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::{AreaId, Polygon};

    fn port(id: u32, name: &str, center: GeoPoint) -> Area {
        Area::new(
            AreaId(id),
            name,
            AreaKind::Port,
            Polygon::circle(center, 2_000.0, 12),
        )
    }

    fn areas() -> Vec<Area> {
        vec![
            port(0, "Piraeus", GeoPoint::new(23.62, 37.94)),
            port(1, "Heraklion", GeoPoint::new(25.14, 35.34)),
            Area::new(
                AreaId(2),
                "park",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(24.0, 36.0), GeoPoint::new(24.2, 36.2)),
            ),
        ]
    }

    fn cp(mmsi: u32, t: i64, pos: GeoPoint, ann: Annotation) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: pos,
            timestamp: Timestamp(t),
            annotation: ann,
            speed_knots: 10.0,
            heading_deg: 135.0,
        }
    }

    fn stop_end_at(mmsi: u32, t: i64, pos: GeoPoint) -> CriticalPoint {
        cp(
            mmsi,
            t,
            pos,
            Annotation::StopEnd {
                centroid: pos,
                duration: Duration::minutes(30),
            },
        )
    }

    fn turn(mmsi: u32, t: i64, pos: GeoPoint) -> CriticalPoint {
        cp(mmsi, t, pos, Annotation::Turn { change_deg: 20.0 })
    }

    #[test]
    fn one_complete_trip_between_ports() {
        let mut staging = StagingArea::new();
        let piraeus = GeoPoint::new(23.62, 37.94);
        let heraklion = GeoPoint::new(25.14, 35.34);
        staging.stage_batch(&[
            stop_end_at(1, 100, piraeus),
            turn(1, 5_000, GeoPoint::new(24.2, 36.9)),
            turn(1, 10_000, GeoPoint::new(24.8, 36.0)),
            stop_end_at(1, 20_000, heraklion),
            // Tail after the last port call: stays staged.
            turn(1, 25_000, GeoPoint::new(25.0, 35.6)),
        ]);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        // The initial berth at Piraeus (a lone stop before any movement)
        // is dropped; the Piraeus -> Heraklion trip survives.
        assert_eq!(trips.len(), 1);
        let t = &trips[0];
        assert_eq!(t.origin.as_deref(), Some("Piraeus"));
        assert_eq!(t.destination, "Heraklion");
        assert_eq!(t.len(), 3);
        assert_eq!(t.departed, Timestamp(5_000));
        assert_eq!(t.arrived, Timestamp(20_000));
        assert!(t.distance_m() > 100_000.0, "{}", t.distance_m());
        // The open tail remains staged.
        assert_eq!(staging.len(), 1);
        assert_eq!(staging.vessel_points(Mmsi(1))[0].timestamp, Timestamp(25_000));
    }

    #[test]
    fn first_trip_has_unknown_origin() {
        let mut staging = StagingArea::new();
        staging.stage_batch(&[
            turn(1, 100, GeoPoint::new(24.5, 36.5)),
            turn(1, 5_000, GeoPoint::new(24.9, 35.8)),
            stop_end_at(1, 9_000, GeoPoint::new(25.14, 35.34)),
        ]);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].origin, None);
        assert_eq!(trips[0].destination, "Heraklion");
        assert!(staging.is_empty());
    }

    #[test]
    fn vessel_never_reaching_port_stays_staged() {
        let mut staging = StagingArea::new();
        staging.stage_batch(&[
            turn(1, 100, GeoPoint::new(24.5, 36.5)),
            // Stops offshore (inside the protected area, not a port).
            stop_end_at(1, 5_000, GeoPoint::new(24.1, 36.1)),
        ]);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        assert!(trips.is_empty());
        assert_eq!(staging.len(), 2);
    }

    #[test]
    fn multiple_trips_chain_origins() {
        let mut staging = StagingArea::new();
        let piraeus = GeoPoint::new(23.62, 37.94);
        let heraklion = GeoPoint::new(25.14, 35.34);
        staging.stage_batch(&[
            turn(1, 100, GeoPoint::new(23.8, 37.5)),
            stop_end_at(1, 5_000, piraeus),
            turn(1, 10_000, GeoPoint::new(24.4, 36.6)),
            stop_end_at(1, 20_000, heraklion),
            turn(1, 25_000, GeoPoint::new(24.4, 36.6)),
            stop_end_at(1, 40_000, piraeus),
        ]);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        assert_eq!(trips.len(), 3);
        assert_eq!(trips[0].origin, None);
        assert_eq!(trips[0].destination, "Piraeus");
        assert_eq!(trips[1].origin.as_deref(), Some("Piraeus"));
        assert_eq!(trips[1].destination, "Heraklion");
        assert_eq!(trips[2].origin.as_deref(), Some("Heraklion"));
        assert_eq!(trips[2].destination, "Piraeus");
    }

    #[test]
    fn trips_of_different_vessels_are_separate() {
        let mut staging = StagingArea::new();
        let heraklion = GeoPoint::new(25.14, 35.34);
        for v in [1u32, 2] {
            staging.stage_batch(&[
                turn(v, 100, GeoPoint::new(24.5, 36.5)),
                stop_end_at(v, 9_000, heraklion),
            ]);
        }
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        assert_eq!(trips.len(), 2);
        assert_ne!(trips[0].mmsi, trips[1].mmsi);
    }

    #[test]
    fn travel_time_matches_endpoints() {
        let t = Trip {
            mmsi: Mmsi(1),
            origin: None,
            destination: "X".into(),
            points: vec![],
            departed: Timestamp(1_000),
            arrived: Timestamp(5_000),
        };
        assert_eq!(t.travel_time(), Duration::secs(4_000));
        assert!(t.is_empty());
        assert!(t.endpoints().is_none());
    }
}
