//! Declared-vs-derived destination auditing.
//!
//! §3.2: "AIS messages sometimes include information regarding the
//! destination of sailing vessels. Unfortunately ... this voyage-related
//! information is often missing or error-prone, mainly because it is
//! updated manually by the crew. So, we employ an automated procedure for
//! performing semantic enrichment of trajectories."
//!
//! The archive's trips carry *derived* destinations (the port the stop
//! actually happened in). This module compares them against the
//! crew-entered declarations collected by the data scanner, quantifying
//! exactly how unreliable the declared field is — the observation that
//! justifies the paper's design.

use maritime_ais::{Mmsi, VoyageRegistry};
use serde::{Deserialize, Serialize};

use crate::store::TrajectoryStore;

/// One audited trip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DestinationFinding {
    /// The vessel.
    pub mmsi: Mmsi,
    /// Destination derived from motion (the port actually reached).
    pub derived: String,
    /// Destination declared over AIS, if any.
    pub declared: Option<String>,
    /// Whether the declaration matches the derived port.
    pub matches: bool,
}

/// Aggregate audit result.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DestinationAudit {
    /// Trips examined.
    pub trips: usize,
    /// Trips whose vessel declared a (non-empty) destination.
    pub declared: usize,
    /// Declarations agreeing with the derived destination.
    pub matching: usize,
    /// Declarations contradicting the derived destination.
    pub mismatching: usize,
    /// Trips with no usable declaration (missing or empty).
    pub undeclared: usize,
    /// Per-trip findings, in archive order.
    pub findings: Vec<DestinationFinding>,
}

impl DestinationAudit {
    /// Fraction of declared destinations that were correct; `None` when
    /// nothing was declared.
    #[must_use]
    pub fn declared_accuracy(&self) -> Option<f64> {
        if self.declared == 0 {
            None
        } else {
            Some(self.matching as f64 / self.declared as f64)
        }
    }
}

/// Compares each archived trip's derived destination with the vessel's
/// latest AIS declaration. Port names are compared case-insensitively
/// after trimming (AIS text is upper-case six-bit ASCII).
#[must_use]
pub fn audit_destinations(store: &TrajectoryStore, voyages: &VoyageRegistry) -> DestinationAudit {
    let mut audit = DestinationAudit::default();
    for trip in store.trips() {
        audit.trips += 1;
        let declared = voyages
            .latest(trip.mmsi)
            .map(|d| d.destination.trim().to_string())
            .filter(|d| !d.is_empty());
        let finding = match &declared {
            None => {
                audit.undeclared += 1;
                DestinationFinding {
                    mmsi: trip.mmsi,
                    derived: trip.destination.clone(),
                    declared: None,
                    matches: false,
                }
            }
            Some(d) => {
                audit.declared += 1;
                let matches = d.eq_ignore_ascii_case(trip.destination.trim());
                if matches {
                    audit.matching += 1;
                } else {
                    audit.mismatching += 1;
                }
                DestinationFinding {
                    mmsi: trip.mmsi,
                    derived: trip.destination.clone(),
                    declared: declared.clone(),
                    matches,
                }
            }
        };
        audit.findings.push(finding);
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trip::Trip;
    use maritime_ais::StaticVoyageData;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;
    use maritime_tracker::{Annotation, CriticalPoint};

    fn trip(mmsi: u32, dest: &str) -> Trip {
        let cp = CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(23.6, 37.9),
            timestamp: Timestamp(0),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        };
        Trip {
            mmsi: Mmsi(mmsi),
            origin: None,
            destination: dest.into(),
            points: vec![cp, cp],
            departed: Timestamp(0),
            arrived: Timestamp(1_000),
        }
    }

    fn declaration(mmsi: u32, dest: &str) -> StaticVoyageData {
        StaticVoyageData {
            mmsi: Mmsi(mmsi),
            imo: 0,
            callsign: String::new(),
            name: String::new(),
            ship_type: 70,
            draught_m: 4.0,
            destination: dest.into(),
        }
    }

    #[test]
    fn audit_classifies_matching_mismatching_undeclared() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, "Heraklion"), // declared HERAKLION -> match (case-insensitive)
            trip(2, "Piraeus"),   // declared RHODES -> mismatch
            trip(3, "Volos"),     // no declaration
            trip(4, "Chania"),    // declared empty -> undeclared
        ]);
        let mut voyages = VoyageRegistry::new();
        voyages.record(Timestamp(0), declaration(1, "HERAKLION"));
        voyages.record(Timestamp(0), declaration(2, "RHODES"));
        voyages.record(Timestamp(0), declaration(4, ""));

        let audit = audit_destinations(&store, &voyages);
        assert_eq!(audit.trips, 4);
        assert_eq!(audit.declared, 2);
        assert_eq!(audit.matching, 1);
        assert_eq!(audit.mismatching, 1);
        assert_eq!(audit.undeclared, 2);
        assert_eq!(audit.declared_accuracy(), Some(0.5));
        assert!(audit.findings[0].matches);
        assert!(!audit.findings[1].matches);
        assert_eq!(audit.findings[1].declared.as_deref(), Some("RHODES"));
    }

    #[test]
    fn empty_audit_has_no_accuracy() {
        let audit = audit_destinations(&TrajectoryStore::new(), &VoyageRegistry::new());
        assert_eq!(audit.declared_accuracy(), None);
        assert_eq!(audit.trips, 0);
    }
}
