//! Archive statistics — the rows of Table 4.
//!
//! "In Table 4, we list representative statistics from trajectories
//! reconstructed and archived in the database. This computation took place
//! after the input stream was exhausted and all critical points were
//! detected for the entire ... period."

use maritime_stream::Duration;
use serde::{Deserialize, Serialize};

use crate::staging::StagingArea;
use crate::store::TrajectoryStore;

/// The statistics of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveStats {
    /// Critical points in reconstructed trajectories.
    pub points_in_trajectories: usize,
    /// Critical points remaining in the staging area (open-ended trips).
    pub points_in_staging: usize,
    /// Number of trips between ports.
    pub trips: usize,
    /// Average trips per vessel (vessels with at least one trip).
    pub avg_trips_per_vessel: f64,
    /// Average number of critical points per trip.
    pub avg_points_per_trip: f64,
    /// Average travel time per trip.
    pub avg_travel_time: Duration,
    /// Average traveled distance per trip, kilometers.
    pub avg_distance_km: f64,
}

impl ArchiveStats {
    /// Computes the Table 4 statistics from the archive and staging area.
    #[must_use]
    pub fn compute(store: &TrajectoryStore, staging: &StagingArea) -> Self {
        let trips = store.trip_count();
        let vessels = store.vessels().len();
        let points_in_trajectories = store.archived_points();
        let total_secs: i64 = store
            .trips()
            .iter()
            .map(|t| t.travel_time().as_secs())
            .sum();
        let total_km: f64 = store.trips().iter().map(|t| t.distance_m() / 1_000.0).sum();
        Self {
            points_in_trajectories,
            points_in_staging: staging.len(),
            trips,
            avg_trips_per_vessel: if vessels == 0 {
                0.0
            } else {
                trips as f64 / vessels as f64
            },
            avg_points_per_trip: if trips == 0 {
                0.0
            } else {
                points_in_trajectories as f64 / trips as f64
            },
            avg_travel_time: if trips == 0 {
                Duration::ZERO
            } else {
                Duration::secs(total_secs / trips as i64)
            },
            avg_distance_km: if trips == 0 { 0.0 } else { total_km / trips as f64 },
        }
    }
}

impl std::fmt::Display for ArchiveStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Critical points in reconstructed trajectories  {}",
            self.points_in_trajectories
        )?;
        writeln!(
            f,
            "Critical points remaining in staging area      {}",
            self.points_in_staging
        )?;
        writeln!(f, "Number of trips between ports                  {}", self.trips)?;
        writeln!(
            f,
            "Average trips per vessel                       {:.1}",
            self.avg_trips_per_vessel
        )?;
        writeln!(
            f,
            "Average number of critical points per trip     {:.0}",
            self.avg_points_per_trip
        )?;
        writeln!(
            f,
            "Average travel time per trip                   {}",
            self.avg_travel_time.to_dhms()
        )?;
        write!(
            f,
            "Average traveled distance per trip             {:.3} km",
            self.avg_distance_km
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trip::Trip;
    use maritime_ais::Mmsi;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;
    use maritime_tracker::{Annotation, CriticalPoint};

    fn cp(mmsi: u32, t: i64, lon: f64, lat: f64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        }
    }

    #[test]
    fn stats_on_small_archive() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            Trip {
                mmsi: Mmsi(1),
                origin: Some("A".into()),
                destination: "B".into(),
                points: vec![cp(1, 0, 23.0, 37.0), cp(1, 3_600, 23.5, 37.0)],
                departed: Timestamp(0),
                arrived: Timestamp(3_600),
            },
            Trip {
                mmsi: Mmsi(2),
                origin: None,
                destination: "B".into(),
                points: vec![
                    cp(2, 0, 24.0, 37.0),
                    cp(2, 1_000, 24.2, 37.0),
                    cp(2, 7_200, 24.5, 37.0),
                ],
                departed: Timestamp(0),
                arrived: Timestamp(7_200),
            },
        ]);
        let mut staging = StagingArea::new();
        staging.stage_batch(&[cp(3, 0, 25.0, 38.0)]);

        let stats = ArchiveStats::compute(&store, &staging);
        assert_eq!(stats.points_in_trajectories, 5);
        assert_eq!(stats.points_in_staging, 1);
        assert_eq!(stats.trips, 2);
        assert_eq!(stats.avg_trips_per_vessel, 1.0);
        assert!((stats.avg_points_per_trip - 2.5).abs() < 1e-12);
        assert_eq!(stats.avg_travel_time, Duration::secs(5_400));
        assert!(stats.avg_distance_km > 20.0);

        // Display renders every Table-4 row.
        let text = stats.to_string();
        assert!(text.contains("Number of trips between ports"));
        assert!(text.contains("01:30:00"));
    }

    #[test]
    fn empty_archive_yields_zeroes() {
        let stats = ArchiveStats::compute(&TrajectoryStore::new(), &StagingArea::new());
        assert_eq!(stats.trips, 0);
        assert_eq!(stats.avg_trips_per_vessel, 0.0);
        assert_eq!(stats.avg_travel_time, Duration::ZERO);
    }
}
