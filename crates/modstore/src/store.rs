//! The trajectory archive: loading trip segments and offline aggregates.
//!
//! "Eventually, instead of representing the entire motion of a vessel with
//! one long trajectory that gets repetitively updated, Hermes MOD deals
//! with multiple, but much smaller segments; only the last segment per
//! vessel may receive any updates" (§3.2). §3.3 lists the offline
//! analytics: travel statistics per ship, Origin–Destination matrices,
//! motion patterns.

use std::collections::HashMap;

use maritime_ais::Mmsi;
use maritime_obs::{names, LazyCounter};
use maritime_stream::Duration;
use serde::{Deserialize, Serialize};

use crate::trip::Trip;

/// Trips archived, across every [`TrajectoryStore`] in the process.
static OBS_TRIPS_LOADED: LazyCounter = LazyCounter::new(names::MODSTORE_TRIPS_LOADED);

/// Aggregates for one origin–destination connection (§3.3: "By maintaining
/// Origin-Destination matrices, we may identify connections between ports
/// and compute aggregated statistics (duration, speed, frequency, etc.)").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdCell {
    /// Number of trips on this connection.
    pub trips: usize,
    /// Mean travel time.
    pub avg_travel_time: Duration,
    /// Mean traveled distance, meters.
    pub avg_distance_m: f64,
}

/// Per-vessel travel aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VesselAggregates {
    /// Trips archived for this vessel.
    pub trips: usize,
    /// Total traveled distance, meters.
    pub total_distance_m: f64,
    /// Total travel time.
    pub total_travel_time: Duration,
    /// Total critical points archived.
    pub points: usize,
}

/// Travel aggregates for one time bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeriodAggregates {
    /// Trips departing in this bucket.
    pub trips: usize,
    /// Total traveled distance, meters.
    pub total_distance_m: f64,
    /// Total travel time.
    pub total_travel_time: Duration,
    /// Distinct vessels active in this bucket.
    pub vessels: std::collections::BTreeSet<Mmsi>,
}

/// The embedded trajectory archive.
#[derive(Debug, Default)]
pub struct TrajectoryStore {
    trips: Vec<Trip>,
    by_vessel: HashMap<Mmsi, Vec<usize>>,
}

impl TrajectoryStore {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a batch of reconstructed trips.
    pub fn load(&mut self, trips: Vec<Trip>) {
        OBS_TRIPS_LOADED.add(trips.len() as u64);
        for trip in trips {
            let idx = self.trips.len();
            self.by_vessel.entry(trip.mmsi).or_default().push(idx);
            self.trips.push(trip);
        }
    }

    /// All archived trips.
    #[must_use]
    pub fn trips(&self) -> &[Trip] {
        &self.trips
    }

    /// Number of archived trips.
    #[must_use]
    pub fn trip_count(&self) -> usize {
        self.trips.len()
    }

    /// Trips of one vessel, in load order.
    pub fn vessel_trips(&self, mmsi: Mmsi) -> impl Iterator<Item = &Trip> {
        self.by_vessel
            .get(&mmsi)
            .into_iter()
            .flatten()
            .map(|&i| &self.trips[i])
    }

    /// Vessels with archived trips.
    #[must_use]
    pub fn vessels(&self) -> Vec<Mmsi> {
        let mut v: Vec<Mmsi> = self.by_vessel.keys().copied().collect();
        v.sort();
        v
    }

    /// Per-vessel aggregates (travel distances, times, idle analysis base).
    #[must_use]
    pub fn vessel_aggregates(&self, mmsi: Mmsi) -> Option<VesselAggregates> {
        let idxs = self.by_vessel.get(&mmsi)?;
        let mut agg = VesselAggregates {
            trips: 0,
            total_distance_m: 0.0,
            total_travel_time: Duration::ZERO,
            points: 0,
        };
        for &i in idxs {
            let t = &self.trips[i];
            agg.trips += 1;
            agg.total_distance_m += t.distance_m();
            agg.total_travel_time = agg.total_travel_time + t.travel_time();
            agg.points += t.len();
        }
        Some(agg)
    }

    /// The Origin–Destination matrix over known-origin trips. Keys are
    /// `(origin, destination)` port names.
    #[must_use]
    pub fn od_matrix(&self) -> HashMap<(String, String), OdCell> {
        let mut acc: HashMap<(String, String), (usize, i64, f64)> = HashMap::new();
        for t in &self.trips {
            let Some(origin) = &t.origin else { continue };
            let e = acc
                .entry((origin.clone(), t.destination.clone()))
                .or_insert((0, 0, 0.0));
            e.0 += 1;
            e.1 += t.travel_time().as_secs();
            e.2 += t.distance_m();
        }
        acc.into_iter()
            .map(|(k, (n, secs, dist))| {
                (
                    k,
                    OdCell {
                        trips: n,
                        avg_travel_time: Duration::secs(secs / n as i64),
                        avg_distance_m: dist / n as f64,
                    },
                )
            })
            .collect()
    }

    /// Total critical points across archived trips.
    #[must_use]
    pub fn archived_points(&self) -> usize {
        self.trips.iter().map(Trip::len).sum()
    }

    /// The most frequently traveled origin–destination connections — the
    /// "frequently traveled paths ('corridors')" of §3.3 — sorted by trip
    /// count descending, ties broken by port names for determinism.
    #[must_use]
    pub fn frequent_routes(&self, k: usize) -> Vec<((String, String), OdCell)> {
        let mut routes: Vec<((String, String), OdCell)> = self.od_matrix().into_iter().collect();
        routes.sort_by(|a, b| b.1.trips.cmp(&a.1.trips).then_with(|| a.0.cmp(&b.0)));
        routes.truncate(k);
        routes
    }

    /// Port visit counts (arrivals), for "visited ports" statistics.
    #[must_use]
    pub fn port_visits(&self) -> HashMap<String, usize> {
        let mut visits: HashMap<String, usize> = HashMap::new();
        for t in &self.trips {
            *visits.entry(t.destination.clone()).or_default() += 1;
        }
        visits
    }

    /// Travel aggregates bucketed by time period (§3.3: "Such aggregates
    /// may be obtained at various time granularities (e.g., per week,
    /// month, or year)"). Buckets are indexed by `departed / period`;
    /// returns a sorted map of non-empty buckets.
    #[must_use]
    pub fn aggregates_by_period(
        &self,
        period: Duration,
    ) -> std::collections::BTreeMap<i64, PeriodAggregates> {
        assert!(period.as_secs() > 0, "period must be positive");
        let mut out: std::collections::BTreeMap<i64, PeriodAggregates> =
            std::collections::BTreeMap::new();
        for t in &self.trips {
            let bucket = t.departed.as_secs().div_euclid(period.as_secs());
            let agg = out.entry(bucket).or_default();
            agg.trips += 1;
            agg.total_distance_m += t.distance_m();
            agg.total_travel_time = agg.total_travel_time + t.travel_time();
            agg.vessels.insert(t.mmsi);
        }
        out
    }

    /// Serializes the archive to JSON ("physically archived in a database
    /// for extracting offline analytics", §1 — here a portable snapshot).
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> serde_json::Result<()> {
        serde_json::to_writer(writer, &self.trips)
    }

    /// Restores an archive from a JSON snapshot.
    pub fn load_json<R: std::io::Read>(reader: R) -> serde_json::Result<Self> {
        let trips: Vec<Trip> = serde_json::from_reader(reader)?;
        let mut store = Self::new();
        store.load(trips);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;
    use maritime_tracker::{Annotation, CriticalPoint};

    fn cp(mmsi: u32, t: i64, lon: f64, lat: f64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        }
    }

    fn trip(mmsi: u32, origin: Option<&str>, dest: &str, t0: i64, t1: i64) -> Trip {
        Trip {
            mmsi: Mmsi(mmsi),
            origin: origin.map(String::from),
            destination: dest.into(),
            points: vec![cp(mmsi, t0, 23.6, 37.9), cp(mmsi, t1, 25.1, 35.3)],
            departed: Timestamp(t0),
            arrived: Timestamp(t1),
        }
    }

    #[test]
    fn load_and_lookup_per_vessel() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("Piraeus"), "Heraklion", 0, 10_000),
            trip(2, None, "Piraeus", 0, 5_000),
            trip(1, Some("Heraklion"), "Piraeus", 20_000, 30_000),
        ]);
        assert_eq!(store.trip_count(), 3);
        assert_eq!(store.vessel_trips(Mmsi(1)).count(), 2);
        assert_eq!(store.vessel_trips(Mmsi(2)).count(), 1);
        assert_eq!(store.vessels(), vec![Mmsi(1), Mmsi(2)]);
        assert_eq!(store.archived_points(), 6);
    }

    #[test]
    fn aggregates_sum_over_trips() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("Piraeus"), "Heraklion", 0, 10_000),
            trip(1, Some("Heraklion"), "Piraeus", 20_000, 32_000),
        ]);
        let agg = store.vessel_aggregates(Mmsi(1)).unwrap();
        assert_eq!(agg.trips, 2);
        assert_eq!(agg.total_travel_time, Duration::secs(22_000));
        assert!(agg.total_distance_m > 500_000.0);
        assert_eq!(agg.points, 4);
        assert!(store.vessel_aggregates(Mmsi(99)).is_none());
    }

    #[test]
    fn od_matrix_skips_unknown_origins_and_averages() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("Piraeus"), "Heraklion", 0, 10_000),
            trip(2, Some("Piraeus"), "Heraklion", 0, 20_000),
            trip(3, None, "Heraklion", 0, 5_000),
        ]);
        let od = store.od_matrix();
        assert_eq!(od.len(), 1);
        let cell = &od[&("Piraeus".to_string(), "Heraklion".to_string())];
        assert_eq!(cell.trips, 2);
        assert_eq!(cell.avg_travel_time, Duration::secs(15_000));
    }

    #[test]
    fn frequent_routes_rank_by_count() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("A"), "B", 0, 100),
            trip(2, Some("A"), "B", 0, 100),
            trip(3, Some("A"), "B", 0, 100),
            trip(4, Some("B"), "C", 0, 100),
            trip(5, Some("C"), "A", 0, 100),
            trip(6, Some("B"), "C", 0, 100),
        ]);
        let top = store.frequent_routes(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, ("A".to_string(), "B".to_string()));
        assert_eq!(top[0].1.trips, 3);
        assert_eq!(top[1].0, ("B".to_string(), "C".to_string()));
    }

    #[test]
    fn port_visits_count_arrivals() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, None, "B", 0, 100),
            trip(2, Some("B"), "C", 0, 100),
            trip(3, Some("C"), "B", 0, 100),
        ]);
        let visits = store.port_visits();
        assert_eq!(visits["B"], 2);
        assert_eq!(visits["C"], 1);
    }

    #[test]
    fn json_snapshot_roundtrips() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("Piraeus"), "Heraklion", 0, 10_000),
            trip(2, None, "Piraeus", 0, 5_000),
        ]);
        let mut buf = Vec::new();
        store.save_json(&mut buf).unwrap();
        let restored = TrajectoryStore::load_json(buf.as_slice()).unwrap();
        assert_eq!(restored.trip_count(), store.trip_count());
        assert_eq!(restored.trips(), store.trips());
        assert_eq!(restored.vessels(), store.vessels());
    }

    #[test]
    fn period_aggregates_bucket_by_departure() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            trip(1, Some("A"), "B", 100, 500),       // bucket 0
            trip(2, Some("A"), "B", 3_700, 4_000),   // bucket 1 (1h period)
            trip(1, Some("B"), "A", 3_800, 4_200),   // bucket 1
        ]);
        let buckets = store.aggregates_by_period(Duration::hours(1));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[&0].trips, 1);
        assert_eq!(buckets[&1].trips, 2);
        assert_eq!(buckets[&1].vessels.len(), 2);
        assert_eq!(
            buckets[&1].total_travel_time,
            Duration::secs(300 + 400)
        );
    }

    #[test]
    fn empty_store_is_sane() {
        let store = TrajectoryStore::new();
        assert_eq!(store.trip_count(), 0);
        assert!(store.od_matrix().is_empty());
        assert!(store.vessels().is_empty());
    }
}
