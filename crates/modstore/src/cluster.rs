//! Spatiotemporal clustering of archived trips (§3.3).
//!
//! "Hermes MOD incorporates an algorithm for spatiotemporal clustering,
//! which can help exploring periodicity of trips. Indeed, two (or more)
//! trajectory clusters may be almost identical spatially, but they are
//! distinct because the temporal dimension is taken into consideration
//! when calculating distances between pairs of trajectory segments."
//!
//! We implement single-link agglomerative clustering under the
//! time-synchronized distance of [`crate::query`]: two trips join the same
//! cluster when their synchronized distance is below a threshold.
//! Temporally disjoint trips are never merged — which is precisely the
//! behaviour the paper highlights.

use crate::query::synchronized_distance_m;
use crate::store::TrajectoryStore;

/// Clusters trip indices (into `store.trips()`) by single-link
/// agglomeration under the synchronized distance threshold (meters).
/// Returns clusters sorted by their smallest member index; singletons
/// included.
#[must_use]
pub fn cluster_trips(store: &TrajectoryStore, threshold_m: f64, samples: usize) -> Vec<Vec<usize>> {
    let n = store.trip_count();
    let mut dsu = Dsu::new(n);
    let trips = store.trips();
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(d) = synchronized_distance_m(&trips[i], &trips[j], samples) {
                if d < threshold_m {
                    dsu.union(i, j);
                }
            }
        }
    }
    let mut clusters: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        clusters.entry(dsu.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = clusters.into_values().collect();
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort_by_key(|c| c[0]);
    out
}

/// Disjoint-set union with path compression and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trip::Trip;
    use maritime_ais::Mmsi;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;
    use maritime_tracker::{Annotation, CriticalPoint};

    fn cp(mmsi: u32, t: i64, lon: f64, lat: f64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        }
    }

    fn line_trip(mmsi: u32, t0: i64, t1: i64, from: (f64, f64), to: (f64, f64)) -> Trip {
        Trip {
            mmsi: Mmsi(mmsi),
            origin: None,
            destination: "X".into(),
            points: vec![cp(mmsi, t0, from.0, from.1), cp(mmsi, t1, to.0, to.1)],
            departed: Timestamp(t0),
            arrived: Timestamp(t1),
        }
    }

    #[test]
    fn spatially_close_concurrent_trips_cluster() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            // Two ferries sailing together.
            line_trip(1, 0, 1_000, (23.0, 37.0), (24.0, 37.0)),
            line_trip(2, 0, 1_000, (23.0, 37.01), (24.0, 37.01)),
            // A third far away.
            line_trip(3, 0, 1_000, (26.0, 39.0), (27.0, 39.0)),
        ]);
        let clusters = cluster_trips(&store, 5_000.0, 8);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2]);
    }

    #[test]
    fn same_route_different_times_stay_separate() {
        // The paper's key observation: identical spatial routes at
        // disjoint times are distinct clusters.
        let mut store = TrajectoryStore::new();
        store.load(vec![
            line_trip(1, 0, 1_000, (23.0, 37.0), (24.0, 37.0)),
            line_trip(2, 50_000, 51_000, (23.0, 37.0), (24.0, 37.0)),
        ]);
        let clusters = cluster_trips(&store, 5_000.0, 8);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn single_link_transitivity() {
        let mut store = TrajectoryStore::new();
        store.load(vec![
            line_trip(1, 0, 1_000, (23.0, 37.00), (24.0, 37.00)),
            line_trip(2, 0, 1_000, (23.0, 37.03), (24.0, 37.03)),
            line_trip(3, 0, 1_000, (23.0, 37.06), (24.0, 37.06)),
        ]);
        // 1-2 and 2-3 are within ~3.5 km; 1-3 is ~6.7 km. Single link
        // chains them into one cluster at a 5 km threshold.
        let clusters = cluster_trips(&store, 5_000.0, 8);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_store_clusters_to_nothing() {
        assert!(cluster_trips(&TrajectoryStore::new(), 1_000.0, 8).is_empty());
    }
}
