//! Spatiotemporal queries over the archive.
//!
//! Hermes MOD "defines a trajectory data type as well as a collection of
//! spatiotemporal operations (range, nearest neighbor, similarity, etc.)"
//! (§6). This module provides the equivalents over archived [`Trip`]s:
//! range queries (spatial box × time interval), nearest-neighbour search,
//! and a time-synchronized trajectory similarity measure — the distance
//! the paper's clustering builds on.

use maritime_geo::{haversine_distance_m, BoundingBox, GeoPoint};
use maritime_stream::Timestamp;

use crate::store::TrajectoryStore;
use crate::trip::Trip;

/// Trips intersecting the spatial box during the time interval
/// `[from, to]` (a trip qualifies if any of its points does).
pub fn range_query<'a>(
    store: &'a TrajectoryStore,
    bbox: &BoundingBox,
    from: Timestamp,
    to: Timestamp,
) -> Vec<&'a Trip> {
    store
        .trips()
        .iter()
        .filter(|t| {
            t.points
                .iter()
                .any(|p| p.timestamp >= from && p.timestamp <= to && bbox.contains(p.position))
        })
        .collect()
}

/// The trip whose trace passes nearest to `query` (minimum over points),
/// with the distance in meters. `None` on an empty archive.
pub fn nearest_trip(store: &TrajectoryStore, query: GeoPoint) -> Option<(&Trip, f64)> {
    store
        .trips()
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| {
            let d = t
                .points
                .iter()
                .map(|p| haversine_distance_m(p.position, query))
                .fold(f64::INFINITY, f64::min);
            (t, d)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
}

/// Position of a trip at time `t`, linearly interpolated between its
/// critical points; clamped to the endpoints outside the trip's span.
#[must_use]
pub fn position_at(trip: &Trip, t: Timestamp) -> Option<GeoPoint> {
    let first = trip.points.first()?;
    let last = trip.points.last()?;
    if t <= first.timestamp {
        return Some(first.position);
    }
    if t >= last.timestamp {
        return Some(last.position);
    }
    let hi = trip.points.partition_point(|p| p.timestamp <= t);
    let a = &trip.points[hi - 1];
    let b = &trip.points[hi];
    let span = (b.timestamp.as_secs() - a.timestamp.as_secs()) as f64;
    if span <= 0.0 {
        return Some(a.position);
    }
    let frac = (t.as_secs() - a.timestamp.as_secs()) as f64 / span;
    Some(a.position.lerp(b.position, frac))
}

/// Time-synchronized dissimilarity between two trips: the mean Haversine
/// distance between their interpolated positions sampled at `samples`
/// instants across the *overlap* of their time spans. Returns `None` when
/// the spans do not overlap (temporally disjoint trips are incomparable —
/// this is exactly why "two trajectory clusters may be almost identical
/// spatially, but they are distinct" in §3.3).
#[must_use]
pub fn synchronized_distance_m(a: &Trip, b: &Trip, samples: usize) -> Option<f64> {
    let from = a.departed.max(b.departed);
    let to = a.arrived.min(b.arrived);
    if from > to || samples == 0 {
        return None;
    }
    let span = (to.as_secs() - from.as_secs()).max(0);
    let mut sum = 0.0;
    for i in 0..samples {
        let t = Timestamp(from.as_secs() + span * i as i64 / samples.max(1) as i64);
        let pa = position_at(a, t)?;
        let pb = position_at(b, t)?;
        sum += haversine_distance_m(pa, pb);
    }
    Some(sum / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::Mmsi;
    use maritime_tracker::{Annotation, CriticalPoint};

    fn cp(mmsi: u32, t: i64, lon: f64, lat: f64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
            annotation: Annotation::Turn { change_deg: 20.0 },
            speed_knots: 10.0,
            heading_deg: 0.0,
        }
    }

    fn line_trip(mmsi: u32, t0: i64, t1: i64, from: (f64, f64), to: (f64, f64)) -> Trip {
        Trip {
            mmsi: Mmsi(mmsi),
            origin: None,
            destination: "X".into(),
            points: vec![cp(mmsi, t0, from.0, from.1), cp(mmsi, t1, to.0, to.1)],
            departed: Timestamp(t0),
            arrived: Timestamp(t1),
        }
    }

    fn store_with(trips: Vec<Trip>) -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.load(trips);
        s
    }

    #[test]
    fn range_query_filters_space_and_time() {
        let store = store_with(vec![
            line_trip(1, 0, 100, (23.0, 37.0), (23.5, 37.0)),
            line_trip(2, 0, 100, (26.0, 39.0), (26.5, 39.0)),
            line_trip(3, 5_000, 6_000, (23.0, 37.0), (23.5, 37.0)),
        ]);
        let bbox = BoundingBox::around(&[GeoPoint::new(22.5, 36.5), GeoPoint::new(24.0, 37.5)])
            .unwrap();
        let hits = range_query(&store, &bbox, Timestamp(0), Timestamp(1_000));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mmsi, Mmsi(1));
    }

    #[test]
    fn nearest_trip_finds_closest_trace() {
        let store = store_with(vec![
            line_trip(1, 0, 100, (23.0, 37.0), (23.5, 37.0)),
            line_trip(2, 0, 100, (26.0, 39.0), (26.5, 39.0)),
        ]);
        let (t, d) = nearest_trip(&store, GeoPoint::new(23.1, 37.05)).unwrap();
        assert_eq!(t.mmsi, Mmsi(1));
        // Nearest trip point is (23.0, 37.0): ~10.4 km from the query.
        assert!(d < 11_000.0, "{d}");
        assert!(nearest_trip(&TrajectoryStore::new(), GeoPoint::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn position_interpolates_and_clamps() {
        let trip = line_trip(1, 0, 100, (23.0, 37.0), (24.0, 37.0));
        let mid = position_at(&trip, Timestamp(50)).unwrap();
        assert!((mid.lon - 23.5).abs() < 1e-9);
        assert_eq!(position_at(&trip, Timestamp(-5)).unwrap().lon, 23.0);
        assert_eq!(position_at(&trip, Timestamp(500)).unwrap().lon, 24.0);
    }

    #[test]
    fn synchronized_distance_zero_for_identical_motion() {
        let a = line_trip(1, 0, 100, (23.0, 37.0), (24.0, 37.0));
        let b = line_trip(2, 0, 100, (23.0, 37.0), (24.0, 37.0));
        let d = synchronized_distance_m(&a, &b, 10).unwrap();
        assert!(d < 1.0, "{d}");
    }

    #[test]
    fn synchronized_distance_detects_temporal_shift() {
        // Same path, but b sails it later with partial overlap: the
        // synchronized distance over the overlap is large because a is
        // near the end while b is near the start.
        let a = line_trip(1, 0, 100, (23.0, 37.0), (24.0, 37.0));
        let b = line_trip(2, 80, 180, (23.0, 37.0), (24.0, 37.0));
        let d = synchronized_distance_m(&a, &b, 10).unwrap();
        assert!(d > 50_000.0, "{d}");
    }

    #[test]
    fn temporally_disjoint_trips_are_incomparable() {
        let a = line_trip(1, 0, 100, (23.0, 37.0), (24.0, 37.0));
        let b = line_trip(2, 1_000, 1_100, (23.0, 37.0), (24.0, 37.0));
        assert!(synchronized_distance_m(&a, &b, 10).is_none());
    }
}
