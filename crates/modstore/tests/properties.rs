//! Property-based tests for staging, trip reconstruction, and the archive.

use maritime_ais::Mmsi;
use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};
use maritime_modstore::{StagingArea, TrajectoryStore, Trip, TripReconstructor};
use maritime_stream::{Duration, Timestamp};
use maritime_tracker::{Annotation, CriticalPoint};
use proptest::prelude::*;

fn port_centers() -> [GeoPoint; 3] {
    [
        GeoPoint::new(23.6, 37.9),
        GeoPoint::new(25.1, 35.3),
        GeoPoint::new(22.9, 40.6),
    ]
}

fn areas() -> Vec<Area> {
    port_centers()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            Area::new(
                AreaId(i as u32),
                format!("port-{i}"),
                AreaKind::Port,
                Polygon::circle(*c, 2_000.0, 12),
            )
        })
        .collect()
}

/// Arbitrary per-vessel critical-point sequences: a mix of port stops
/// (inside a port basin) and en-route points.
fn arb_points() -> impl Strategy<Value = Vec<CriticalPoint>> {
    let item = (
        0u32..4,            // vessel
        0i64..100_000,      // timestamp
        0usize..4,          // 0..=2: stop at port i; 3: en-route turn
    );
    prop::collection::vec(item, 0..80).prop_map(|items| {
        let mut points: Vec<CriticalPoint> = items
            .into_iter()
            .map(|(v, t, what)| {
                let (position, annotation) = if what < 3 {
                    let c = port_centers()[what];
                    (
                        c,
                        Annotation::StopEnd {
                            centroid: c,
                            duration: Duration::minutes(30),
                        },
                    )
                } else {
                    (
                        GeoPoint::new(24.0 + (t % 100) as f64 * 0.01, 37.0),
                        Annotation::Turn { change_deg: 20.0 },
                    )
                };
                CriticalPoint {
                    mmsi: Mmsi(v),
                    position,
                    timestamp: Timestamp(t),
                    annotation,
                    speed_knots: 8.0,
                    heading_deg: 90.0,
                }
            })
            .collect();
        points.sort_by_key(|p| (p.timestamp, p.mmsi));
        points
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reconstruction_conserves_points(points in arb_points()) {
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let total = staging.len();
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        let in_trips: usize = trips.iter().map(Trip::len).sum();
        // Single-point "trips" to the same port are dropped as noise;
        // account for them by counting consumed = total - remaining.
        let consumed = total - staging.len();
        prop_assert!(in_trips <= consumed);
        // Points still staged are exactly the per-vessel tails.
        prop_assert!(staging.len() <= total);
    }

    #[test]
    fn trips_are_time_ordered_and_port_terminated(points in arb_points()) {
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        for trip in &trips {
            prop_assert!(!trip.is_empty());
            prop_assert!(trip.departed <= trip.arrived);
            for w in trip.points.windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }
            // The final point is a stop whose centroid lies in the
            // destination port.
            let last = trip.points.last().unwrap();
            let Annotation::StopEnd { centroid, .. } = last.annotation else {
                prop_assert!(false, "trip does not end at a stop");
                return Ok(());
            };
            let port = rec.port_of(centroid).expect("ends in a port");
            prop_assert_eq!(&trip.destination, &port.name);
        }
    }

    #[test]
    fn consecutive_trips_chain_origins(points in arb_points()) {
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let rec = TripReconstructor::new(&areas());
        let trips = rec.reconstruct(&mut staging);
        let mut store = TrajectoryStore::new();
        store.load(trips);
        for mmsi in store.vessels() {
            let mine: Vec<&Trip> = store.vessel_trips(mmsi).collect();
            for w in mine.windows(2) {
                prop_assert_eq!(
                    w[1].origin.as_deref(),
                    Some(w[0].destination.as_str()),
                    "origin chain broken for {}", mmsi
                );
            }
            if let Some(first) = mine.first() {
                // The very first trip may or may not know its origin, but
                // if it does, it must be a real port.
                if let Some(o) = &first.origin {
                    prop_assert!(areas().iter().any(|a| &a.name == o));
                }
            }
        }
    }

    #[test]
    fn od_matrix_totals_match(points in arb_points()) {
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let rec = TripReconstructor::new(&areas());
        let mut store = TrajectoryStore::new();
        store.load(rec.reconstruct(&mut staging));
        let known: usize = store.trips().iter().filter(|t| t.origin.is_some()).count();
        let od_total: usize = store.od_matrix().values().map(|c| c.trips).sum();
        prop_assert_eq!(od_total, known);
        // frequent_routes is a prefix of the sorted matrix.
        let top = store.frequent_routes(3);
        for w in top.windows(2) {
            prop_assert!(w[0].1.trips >= w[1].1.trips);
        }
    }

    #[test]
    fn archive_json_roundtrip(points in arb_points()) {
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let rec = TripReconstructor::new(&areas());
        let mut store = TrajectoryStore::new();
        store.load(rec.reconstruct(&mut staging));
        let mut buf = Vec::new();
        store.save_json(&mut buf).unwrap();
        let restored = TrajectoryStore::load_json(buf.as_slice()).unwrap();
        prop_assert_eq!(restored.trips(), store.trips());
    }

    #[test]
    fn reconstruction_is_idempotent(points in arb_points()) {
        // Running reconstruction twice on the same staging area yields no
        // new trips the second time (the first drained everything usable).
        let mut staging = StagingArea::new();
        staging.stage_batch(&points);
        let rec = TripReconstructor::new(&areas());
        let first = rec.reconstruct(&mut staging);
        let second = rec.reconstruct(&mut staging);
        let _ = first;
        prop_assert!(second.is_empty(), "second pass produced {} trips", second.len());
    }
}
