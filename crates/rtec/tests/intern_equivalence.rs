//! Interning-equivalence property: the engine moves `KeyId(u32)`s through
//! its evaluation loop and materialises real keys only at emission and
//! provenance boundaries, so its output must be byte-identical to a
//! direct *uninterned* evaluation that never leaves the composite key
//! type.
//!
//! For random two-stratum fluent programs (input-toggled `Active`,
//! boundary-triggered `Calm`, one derived event, with the
//! trigger-polarity choices randomised) over random event streams and
//! window specs, every engine variant — serial from-scratch, incremental
//! (replaying checkpoints across slid windows), traced (provenance
//! capture on), and sharded (the key space split across two engines) —
//! must produce identical `IntervalList`s and derived-event streams, and
//! the traced run's provenance must name exactly the initiation and
//! termination points the uninterned reference derives.

use std::collections::{BTreeMap, BTreeSet};

use maritime_rtec::{
    DerivedEventDef, Duration, Engine, EvalStrategy, EventDescription, FluentDef, Interval,
    IntervalList, Timestamp, Trigger, WindowSpec,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    On(u8),
    Off(u8),
    /// An event no rule responds to.
    Ping(u8),
}

impl Ev {
    fn id(&self) -> u8 {
        match self {
            Ev::On(id) | Ev::Off(id) | Ev::Ping(id) => *id,
        }
    }
}

/// Composite fluent keys, kept un-interned in the reference evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Active(u8),
    Calm(u8),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Out {
    Started(u8),
}

/// The random program: `Active(id)` toggled by `On`/`Off` input events;
/// `Calm(id)` driven by `Active(id)` boundary triggers with the polarity
/// chosen by `calm_on_end`; one derived event emitted at `Active` starts
/// or ends per `derive_on_end`.
fn description(calm_on_end: bool, derive_on_end: bool) -> EventDescription<(), Ev, Key, Out> {
    let active = FluentDef::new("active")
        .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
            Some(Ev::On(id)) => vec![Key::Active(*id)],
            _ => vec![],
        })
        .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
            Some(Ev::Off(id)) => vec![Key::Active(*id)],
            _ => vec![],
        });
    let calm_init = move |trig: &Trigger<'_, Ev, Key>| -> Vec<Key> {
        let hit = if calm_on_end { trig.ended() } else { trig.started() };
        match hit {
            Some(Key::Active(id)) => vec![Key::Calm(*id)],
            _ => vec![],
        }
    };
    let calm_term = move |trig: &Trigger<'_, Ev, Key>| -> Vec<Key> {
        let hit = if calm_on_end { trig.started() } else { trig.ended() };
        match hit {
            Some(Key::Active(id)) => vec![Key::Calm(*id)],
            _ => vec![],
        }
    };
    let calm = FluentDef::new("calm")
        .initiated(move |_, _, trig: Trigger<'_, Ev, Key>, _| calm_init(&trig))
        .terminated(move |_, _, trig: Trigger<'_, Ev, Key>, _| calm_term(&trig));
    let started = DerivedEventDef::new("started")
        .rule(move |_, _, trig: Trigger<'_, Ev, Key>, _| {
            let hit = if derive_on_end { trig.ended() } else { trig.started() };
            match hit {
                Some(Key::Active(id)) => vec![Out::Started(*id)],
                _ => vec![],
            }
        });
    EventDescription::new().fluent(active).fluent(calm).event(started)
}

/// What one query must produce, computed without any interning.
struct Expected {
    fluents: BTreeMap<Key, Vec<Interval>>,
    events: Vec<(Timestamp, Out)>,
    inits: BTreeSet<(Key, Timestamp)>,
    terms: BTreeSet<(Key, Timestamp)>,
}

/// Direct evaluation over the window snapshot with plain keyed maps:
/// per-key sorted deduplicated point lists folded through the same
/// public `IntervalList::from_points` the engine uses, strata in order,
/// boundary triggers taken from the literal interval lists.
fn reference(
    events: &[(i64, Ev)],
    q: i64,
    range: i64,
    calm_on_end: bool,
    derive_on_end: bool,
) -> Expected {
    let mut window: Vec<&(i64, Ev)> =
        events.iter().filter(|(t, _)| *t > q - range && *t <= q).collect();
    window.sort_by_key(|(t, _)| *t);

    let mut inits: BTreeMap<Key, Vec<Timestamp>> = BTreeMap::new();
    let mut terms: BTreeMap<Key, Vec<Timestamp>> = BTreeMap::new();
    let push = |map: &mut BTreeMap<Key, Vec<Timestamp>>, key: Key, t: i64| {
        let v = map.entry(key).or_default();
        if v.last() != Some(&Timestamp(t)) {
            v.push(Timestamp(t));
        }
    };
    for (t, ev) in &window {
        match ev {
            Ev::On(id) => push(&mut inits, Key::Active(*id), *t),
            Ev::Off(id) => push(&mut terms, Key::Active(*id), *t),
            Ev::Ping(_) => {}
        }
    }

    // Stratum 1: Active intervals — only initiated keys materialise.
    let mut fluents = BTreeMap::new();
    for (key, key_inits) in &inits {
        let key_terms = terms.get(key).map_or(&[][..], Vec::as_slice);
        let il = IntervalList::from_points(key_inits, key_terms, None);
        fluents.insert(key.clone(), il.intervals().to_vec());
    }

    // Stratum 2: Calm points from Active boundaries, polarity per flag.
    for (key, intervals) in fluents.clone() {
        let Key::Active(id) = key else { unreachable!() };
        let starts: Vec<Timestamp> = intervals.iter().map(|iv| iv.since).collect();
        let ends: Vec<Timestamp> = intervals.iter().filter_map(|iv| iv.until).collect();
        let (calm_inits, calm_terms) =
            if calm_on_end { (ends, starts) } else { (starts, ends) };
        for &t in &calm_inits {
            push(&mut inits, Key::Calm(id), t.0);
        }
        for &t in &calm_terms {
            push(&mut terms, Key::Calm(id), t.0);
        }
        if !calm_inits.is_empty() {
            let il = IntervalList::from_points(&calm_inits, &calm_terms, None);
            fluents.insert(Key::Calm(id), il.intervals().to_vec());
        }
    }

    // Derived events at the chosen Active boundary, ordered by
    // (time, key) exactly as the boundary list walks them.
    let mut emissions: Vec<(Timestamp, Out)> = Vec::new();
    for (key, intervals) in &fluents {
        let Key::Active(id) = key else { continue };
        for iv in intervals {
            let at = if derive_on_end { iv.until } else { Some(iv.since) };
            if let Some(t) = at {
                emissions.push((t, Out::Started(*id)));
            }
        }
    }
    emissions.sort();

    Expected {
        fluents,
        events: emissions,
        inits: inits
            .iter()
            .flat_map(|(k, ts)| ts.iter().map(move |t| (k.clone(), *t)))
            .collect(),
        terms: terms
            .iter()
            .flat_map(|(k, ts)| ts.iter().map(move |t| (k.clone(), *t)))
            .collect(),
    }
}

type Snapshot = (BTreeMap<Key, Vec<Interval>>, Vec<(Timestamp, Out)>);

fn snapshot(r: &maritime_rtec::Recognition<Key, Out>) -> Snapshot {
    (
        r.fluents.iter().map(|(k, il)| (k.clone(), il.intervals().to_vec())).collect(),
        r.events.clone(),
    )
}

fn arb_events() -> impl Strategy<Value = Vec<(i64, Ev)>> {
    prop::collection::vec(
        (0i64..400, 0u8..4, 0u8..3).prop_map(|(t, id, kind)| {
            let ev = match kind {
                0 => Ev::On(id),
                1 => Ev::Off(id),
                _ => Ev::Ping(id),
            };
            (t, ev)
        }),
        0..50,
    )
}

fn arb_queries() -> impl Strategy<Value = Vec<i64>> {
    (50i64..300, prop::collection::vec(1i64..80, 1..6)).prop_map(|(q0, steps)| {
        steps
            .iter()
            .scan(q0, |q, s| {
                *q += s;
                Some(*q)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn interned_engines_match_uninterned_reference(
        events in arb_events(),
        queries in arb_queries(),
        range in 30i64..200,
        slide_frac in 1i64..30,
        calm_on_end in any::<bool>(),
        derive_on_end in any::<bool>(),
    ) {
        let slide = (range / slide_frac).max(1);
        let spec = WindowSpec::new(Duration::secs(range), Duration::secs(slide)).unwrap();
        let desc = || description(calm_on_end, derive_on_end);
        let stamped =
            |evs: &[(i64, Ev)]| evs.iter().map(|(t, e)| (Timestamp(*t), e.clone())).collect::<Vec<_>>();

        let mut scratch = Engine::new((), desc(), spec)
            .with_strategy(EvalStrategy::FromScratch);
        let mut incremental = Engine::new((), desc(), spec)
            .with_strategy(EvalStrategy::Incremental);
        let mut traced = Engine::new((), desc(), spec).with_provenance(true);
        // Sharded: the key space split by vessel-id parity across two
        // engines, each fed only its shard's events (the strata are
        // per-id independent, mirroring the geographic partitioner).
        let mut shards = [Engine::new((), desc(), spec), Engine::new((), desc(), spec)];

        scratch.add_events(stamped(&events));
        incremental.add_events(stamped(&events));
        traced.add_events(stamped(&events));
        for shard in 0..2u8 {
            let part: Vec<(i64, Ev)> =
                events.iter().filter(|(_, e)| e.id() % 2 == shard).cloned().collect();
            shards[shard as usize].add_events(stamped(&part));
        }

        for &q in &queries {
            let expected = reference(&events, q, range, calm_on_end, derive_on_end);

            let base = snapshot(&scratch.recognize_at(Timestamp(q)));
            prop_assert_eq!(&base.0, &expected.fluents, "scratch fluents at q={}", q);
            prop_assert_eq!(&base.1, &expected.events, "scratch events at q={}", q);

            let inc = snapshot(&incremental.recognize_at(Timestamp(q)));
            prop_assert_eq!(&inc, &base, "incremental diverged at q={}", q);

            let tr = snapshot(&traced.recognize_at(Timestamp(q)));
            prop_assert_eq!(&tr, &base, "traced diverged at q={}", q);

            let log = traced.take_provenance().expect("traced engine records provenance");
            let noted_inits: BTreeSet<(Key, Timestamp)> =
                log.initiations.keys().cloned().collect();
            let noted_terms: BTreeSet<(Key, Timestamp)> =
                log.terminations.keys().cloned().collect();
            prop_assert_eq!(&noted_inits, &expected.inits, "initiation provenance at q={}", q);
            prop_assert_eq!(&noted_terms, &expected.terms, "termination provenance at q={}", q);
            let emitted: usize = log.emissions.iter().map(|e| e.count).sum();
            prop_assert_eq!(emitted, expected.events.len(), "emission provenance at q={}", q);

            let mut merged: Snapshot = Default::default();
            for engine in &mut shards {
                let part = snapshot(&engine.recognize_at(Timestamp(q)));
                merged.0.extend(part.0);
                merged.1.extend(part.1);
            }
            merged.1.sort();
            prop_assert_eq!(&merged, &base, "sharded merge diverged at q={}", q);
        }
    }
}
