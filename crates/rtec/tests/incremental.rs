//! Property test: incremental recognition is indistinguishable from full
//! recomputation under random streams, late arrivals, window evictions and
//! irregular query schedules.
//!
//! The engine-level twin of the fleet-scale differential harness in the
//! workspace `tests/` directory: the toy domain here deliberately covers
//! the machinery the maritime description does not exercise (grouped
//! fluents and their rule-(2) cross-terminations) so the cache's
//! pre-expansion point model is pinned down too.

use maritime_rtec::{
    DerivedEventDef, Duration, Engine, EvalStrategy, EventDescription, FluentDef, Timestamp,
    Trigger, View, WindowSpec,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    On(u8),
    Off(u8),
    SetMode(u8, u8),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Active(u8),
    Mode(u8, u8),
    Alarm(u8),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Out {
    Started(Key),
    AllQuiet(u8),
}

/// Three strata (toggle, grouped multi-value, stratified consumer) plus
/// two derived events, one of which probes the view at `t + 1`.
fn description() -> EventDescription<(), Ev, Key, Out, u8> {
    let active = FluentDef::new("active")
        .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
            Some(Ev::On(id)) => vec![Key::Active(*id)],
            _ => vec![],
        })
        .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
            Some(Ev::Off(id)) => vec![Key::Active(*id)],
            _ => vec![],
        });
    let mode = FluentDef::new("mode")
        .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
            Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, *m)],
            _ => vec![],
        })
        .grouped(|k: &Key| match k {
            Key::Active(id) | Key::Mode(id, _) | Key::Alarm(id) => *id,
        });
    let alarm = FluentDef::new("alarm")
        .initiated(|_, view: &View<'_, Key>, trig: Trigger<'_, Ev, Key>, t| {
            match trig.started() {
                Some(Key::Active(id)) if view.holds_at(&Key::Mode(*id, 0), t + Duration::secs(1)) => {
                    vec![Key::Alarm(*id)]
                }
                _ => vec![],
            }
        })
        .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.ended() {
            Some(Key::Active(id)) => vec![Key::Alarm(*id)],
            _ => vec![],
        });
    let started = DerivedEventDef::new("started").rule(
        |_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
            Some(k) => vec![Out::Started(k.clone())],
            _ => vec![],
        },
    );
    let quiet = DerivedEventDef::new("all_quiet").rule(
        |_, view: &View<'_, Key>, trig: Trigger<'_, Ev, Key>, t| match trig.ended() {
            Some(Key::Active(id))
                if view
                    .count_holding_at(t + Duration::secs(1), |k| matches!(k, Key::Active(_)))
                    == 0 =>
            {
                vec![Out::AllQuiet(*id)]
            }
            _ => vec![],
        },
    );
    EventDescription::new()
        .fluent(active)
        .fluent(mode)
        .fluent(alarm)
        .event(started)
        .event(quiet)
}

#[derive(Debug, Clone)]
enum Step {
    /// Insert an event at `arrival ± jitter`: `offset` may push the
    /// timestamp before an already-issued query (a late arrival).
    Event { at: i64, ev: Ev },
    Query { at: i64 },
}

/// A schedule over ~10 window-lengths: event timestamps drift forward but
/// jitter backwards up to a full window range (crossing query times →
/// late-arrival fallbacks), queries advance on an irregular grid
/// (occasionally jumping far ahead → mass evictions and straddles).
fn arb_schedule(range: i64) -> impl Strategy<Value = Vec<Step>> {
    // (selector, advance, jitter, id, mode): selector 0..3 = event kind,
    // 3 = query.
    prop::collection::vec(
        (0u8..4, 0i64..=range / 2, 0i64..=range, 0u8..3, 0u8..2),
        5..60,
    )
    .prop_map(move |shape| {
        let mut clock = 0i64;
        let mut steps = Vec::with_capacity(shape.len());
        for (selector, advance, jitter, id, m) in shape {
            clock += advance;
            let step = match selector {
                3 => Step::Query { at: clock },
                kind => {
                    let at = (clock - jitter).max(0);
                    let ev = match kind {
                        0 => Ev::On(id),
                        1 => Ev::Off(id),
                        _ => Ev::SetMode(id, m),
                    };
                    Step::Event { at, ev }
                }
            };
            steps.push(step);
        }
        steps
    })
}

fn run_schedule(range: i64, slide: i64, steps: &[Step]) {
    let spec = WindowSpec::new(Duration::secs(range), Duration::secs(slide)).unwrap();
    let mut full = Engine::new((), description(), spec);
    let mut inc = Engine::new((), description(), spec).with_strategy(EvalStrategy::Incremental);
    for step in steps {
        match step {
            Step::Event { at, ev } => {
                full.add_event(Timestamp(*at), ev.clone());
                inc.add_event(Timestamp(*at), ev.clone());
            }
            Step::Query { at } => {
                let rf = full.recognize_at(Timestamp(*at));
                let ri = inc.recognize_at(Timestamp(*at));
                assert_eq!(rf.working_memory, ri.working_memory, "wm at q={at}");
                assert_eq!(rf.events, ri.events, "derived events at q={at}");
                let mut kf: Vec<&Key> = rf.fluents.keys().collect();
                let mut ki: Vec<&Key> = ri.fluents.keys().collect();
                kf.sort();
                ki.sort();
                assert_eq!(kf, ki, "fluent keys at q={at}");
                for key in kf {
                    assert_eq!(
                        rf.fluents[key].intervals(),
                        ri.fluents[key].intervals(),
                        "intervals of {key:?} at q={at}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_equals_full_recomputation(
        steps in arb_schedule(120),
        slide in prop_oneof![Just(30i64), Just(60i64), Just(120i64)],
    ) {
        run_schedule(120, slide, &steps);
    }

    #[test]
    fn incremental_equals_full_under_tumbling_window(steps in arb_schedule(90)) {
        // ω == β: no overlap, every query's retained prefix is empty.
        run_schedule(90, 90, &steps);
    }
}
