//! Checkpoint-format tests: engine save/restore roundtrips (from-scratch
//! and incremental), hostile-input rejection, and a golden checkpoint
//! file pinning the on-disk layout. Re-bless the golden with
//! `CKPT_BLESS=1 cargo test -p maritime-rtec --test ckpt_format` (see
//! TESTING.md).

use std::collections::HashMap;

use maritime_rtec::ckpt::unframe;
use maritime_rtec::{
    Duration, Engine, EvalStrategy, EventDescription, FluentDef, Recognition, Timestamp, Trigger,
    TriggerKinds, WindowSpec,
};
use proptest::prelude::*;

/// Toy input event: `(0, id)` switches fluent `id` on, `(1, id)` off.
type Ev = (u8, u32);

fn description() -> EventDescription<(), Ev, u32, u64> {
    EventDescription::new()
        .fluent(
            FluentDef::new("switch")
                .initiated_on(TriggerKinds::INPUT, |_, _, trig: Trigger<'_, Ev, u32>, _| {
                    match trig.input() {
                        Some((0, id)) => vec![*id],
                        _ => vec![],
                    }
                })
                .terminated_on(TriggerKinds::INPUT, |_, _, trig: Trigger<'_, Ev, u32>, _| {
                    match trig.input() {
                        Some((1, id)) => vec![*id],
                        _ => vec![],
                    }
                }),
        )
        .fluent(
            // A probing stratum so incremental checkpoints carry real
            // cache entries (boundary triggers + probe logs).
            FluentDef::new("any_on")
                .initiated_on(TriggerKinds::START, |_, view, trig: Trigger<'_, Ev, u32>, t| {
                    match trig.started() {
                        Some(id) if *id < 1_000 => {
                            let probe = t + Duration::secs(1);
                            if view.count_holding_at(probe, |k: &u32| *k < 1_000) >= 1 {
                                vec![9_999]
                            } else {
                                vec![]
                            }
                        }
                        _ => vec![],
                    }
                })
                .terminated_on(TriggerKinds::END, |_, view, trig: Trigger<'_, Ev, u32>, t| {
                    match trig.ended() {
                        Some(id) if *id < 1_000 => {
                            let probe = t + Duration::secs(1);
                            if view.count_holding_at(probe, |k: &u32| *k < 1_000) == 0 {
                                vec![9_999]
                            } else {
                                vec![]
                            }
                        }
                        _ => vec![],
                    }
                }),
        )
}

fn spec() -> WindowSpec {
    WindowSpec::new(Duration::secs(600), Duration::secs(100)).unwrap()
}

fn engine(strategy: EvalStrategy) -> Engine<(), Ev, u32, u64> {
    Engine::new((), description(), spec()).with_strategy(strategy)
}

fn assert_same(a: &Recognition<u32, u64>, b: &Recognition<u32, u64>) {
    assert_eq!(a.query_time, b.query_time);
    assert_eq!(a.working_memory, b.working_memory);
    assert_eq!(a.events, b.events);
    let norm = |r: &Recognition<u32, u64>| {
        let mut v: Vec<_> = r.fluents.iter().map(|(k, il)| (*k, il.clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    };
    assert_eq!(norm(a), norm(b));
}

/// Deterministic stream used by the unit tests and the golden fixture.
fn fixture_events() -> Vec<(Timestamp, Ev)> {
    let mut out = Vec::new();
    for i in 0..40i64 {
        let id = (i % 3) as u32;
        out.push((Timestamp(i * 37), (u8::from(i % 4 == 3), id)));
    }
    out
}

fn run_with_kill(
    strategy: EvalStrategy,
    events: &[(Timestamp, Ev)],
    queries: &[Timestamp],
    kill_after: usize,
) -> Vec<Recognition<u32, u64>> {
    let mut live = engine(strategy);
    let mut out = Vec::new();
    let mut fed = 0;
    for (qi, &q) in queries.iter().enumerate() {
        while fed < events.len() && events[fed].0 <= q {
            live.add_event(events[fed].0, events[fed].1.clone());
            fed += 1;
        }
        out.push(live.recognize_at(q));
        if qi + 1 == kill_after {
            // Kill: serialize, drop, restore from bytes only.
            let bytes = live.checkpoint();
            drop(live);
            live = Engine::restore((), description(), &bytes).expect("restore");
        }
    }
    out
}

#[test]
fn kill_restore_is_byte_identical_both_strategies() {
    let events = fixture_events();
    let queries: Vec<Timestamp> = (1..=15).map(|i| Timestamp(i * 100)).collect();
    for strategy in [EvalStrategy::FromScratch, EvalStrategy::Incremental] {
        let baseline = run_with_kill(strategy, &events, &queries, usize::MAX);
        for kill_after in 1..queries.len() {
            let killed = run_with_kill(strategy, &events, &queries, kill_after);
            for (a, b) in baseline.iter().zip(&killed) {
                assert_same(a, b);
            }
        }
    }
}

#[test]
fn restored_incremental_engine_still_uses_cache() {
    let events = fixture_events();
    let mut live = engine(EvalStrategy::Incremental);
    for (t, e) in &events {
        live.add_event(*t, e.clone());
    }
    live.recognize_at(Timestamp(800));
    live.recognize_at(Timestamp(900));
    let bytes = live.checkpoint();
    let mut restored = Engine::restore((), description(), &bytes).expect("restore");
    let before = restored.incremental_stats();
    restored.recognize_at(Timestamp(1_000));
    let after = restored.incremental_stats();
    assert_eq!(
        after.incremental,
        before.incremental + 1,
        "a clean restored checkpoint must keep the delta path"
    );
}

#[test]
fn corrupting_any_byte_is_rejected_or_roundtrips_cleanly() {
    let mut live = engine(EvalStrategy::Incremental);
    for (t, e) in fixture_events() {
        live.add_event(t, e);
    }
    live.recognize_at(Timestamp(700));
    let bytes = live.checkpoint();

    // Every truncation: clean error, never a panic.
    for n in 0..bytes.len() {
        assert!(
            Engine::<(), Ev, u32, u64>::restore((), description(), &bytes[..n]).is_err(),
            "truncated prefix {n} accepted"
        );
    }
    // Every single-byte corruption: either rejected (checksum) or — for
    // the checksum field itself — a mismatch. Never a panic.
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        let _ = Engine::<(), Ev, u32, u64>::restore((), description(), &bad);
    }
}

#[test]
fn golden_checkpoint_is_stable() {
    let mut live = engine(EvalStrategy::Incremental);
    for (t, e) in fixture_events() {
        live.add_event(t, e);
    }
    live.recognize_at(Timestamp(700));
    live.recognize_at(Timestamp(800));
    let bytes = live.checkpoint();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/engine.ckpt");
    if std::env::var("CKPT_BLESS").as_deref() == Ok("1") {
        std::fs::write(path, &bytes).expect("bless golden checkpoint");
    }
    let golden = std::fs::read(path).expect(
        "golden checkpoint missing — bless with CKPT_BLESS=1 (see TESTING.md)",
    );
    assert_eq!(
        bytes, golden,
        "checkpoint bytes changed; if the format change is intended, bump \
         ckpt::VERSION and re-bless with CKPT_BLESS=1 (see TESTING.md)"
    );

    // The committed golden must also restore and keep producing the same
    // output as the live engine.
    let mut restored =
        Engine::<(), Ev, u32, u64>::restore((), description(), &golden).expect("restore golden");
    assert_same(
        &live.recognize_at(Timestamp(900)),
        &restored.recognize_at(Timestamp(900)),
    );
}

proptest! {
    /// Random streams, random kill points, both strategies: the killed-
    /// and-restored engine's outputs match the uninterrupted run exactly.
    #[test]
    fn prop_kill_restore_differential(
        raw in prop::collection::vec((0i64..1_500, 0u8..2, 0u32..4), 1..60),
        kill_after in 1usize..10,
        incremental in any::<bool>(),
    ) {
        let mut events: Vec<(Timestamp, Ev)> =
            raw.into_iter().map(|(t, k, id)| (Timestamp(t), (k, id))).collect();
        events.sort_by_key(|(t, _)| *t);
        let queries: Vec<Timestamp> = (1..=10).map(|i| Timestamp(i * 150)).collect();
        let strategy = if incremental {
            EvalStrategy::Incremental
        } else {
            EvalStrategy::FromScratch
        };
        let baseline = run_with_kill(strategy, &events, &queries, usize::MAX);
        let killed = run_with_kill(strategy, &events, &queries, kill_after);
        for (a, b) in baseline.iter().zip(&killed) {
            prop_assert_eq!(a.query_time, b.query_time);
            prop_assert_eq!(a.working_memory, b.working_memory);
            prop_assert_eq!(&a.events, &b.events);
            let norm = |r: &Recognition<u32, u64>| {
                let mut v: Vec<_> = r.fluents.iter().map(|(k, il)| (*k, il.clone())).collect();
                v.sort_by_key(|(k, _)| *k);
                v
            };
            prop_assert_eq!(norm(a), norm(b));
        }
    }

    /// The frame survives arbitrary payloads and rejects arbitrary bytes
    /// without panicking.
    #[test]
    fn prop_frame_roundtrip_and_rejection(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let framed = maritime_rtec::ckpt::frame(&payload);
        prop_assert_eq!(unframe(&framed).unwrap(), &payload[..]);
        // Arbitrary junk (the payload itself) never panics the decoder.
        let _ = unframe(&payload);
    }
}

#[test]
fn recognition_default_compiles_with_nonstandard_keys() {
    // Regression guard: Recognition::default must not demand K: Default.
    let r: Recognition<u32, u64> = Recognition::default();
    assert_eq!(r.fluents, HashMap::default());
}
