//! Property-based tests for the interval algebra and engine semantics.

use maritime_rtec::{
    Duration, Engine, EventDescription, FluentDef, Interval, IntervalList, Timestamp, Trigger,
    WindowSpec,
};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Timestamp>> {
    prop::collection::vec(0i64..1_000, 0..40).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(Timestamp).collect()
    })
}

fn arb_interval_list() -> impl Strategy<Value = IntervalList> {
    prop::collection::vec((0i64..1_000, 1i64..100), 0..20).prop_map(|spans| {
        IntervalList::from_intervals(
            spans
                .into_iter()
                .map(|(s, len)| Interval::closed(Timestamp(s), Timestamp(s + len)))
                .collect(),
        )
    })
}

/// Reference `holdsAt` straight from the Event Calculus definition over
/// initiation/termination points: the fluent holds at T iff there is an
/// initiation Ts < T with no termination Tf satisfying Ts < Tf < T.
/// (The interval is (Ts, Tf]: it still holds AT its termination point.)
fn reference_holds(inits: &[Timestamp], terms: &[Timestamp], t: Timestamp) -> bool {
    let Some(ts) = inits.iter().rev().find(|i| **i < t) else {
        return false;
    };
    !terms.iter().any(|f| f > ts && *f < t)
}

proptest! {
    #[test]
    fn from_points_invariants(inits in arb_points(), terms in arb_points()) {
        let il = IntervalList::from_points(&inits, &terms, None);
        let ivs = il.intervals();
        // Sorted and disjoint.
        for w in ivs.windows(2) {
            let prev_until = w[0].until.expect("only the last interval may be open");
            prop_assert!(prev_until < w[1].since);
        }
        // No empty intervals.
        for iv in ivs {
            prop_assert!(!iv.is_empty());
        }
        // At most one open interval, and only at the end.
        let opens = ivs.iter().filter(|i| i.until.is_none()).count();
        prop_assert!(opens <= 1);
        if opens == 1 {
            prop_assert!(ivs.last().unwrap().until.is_none());
        }
    }

    #[test]
    fn from_points_matches_reference_semantics(
        inits in arb_points(), terms in arb_points(), probes in arb_points()
    ) {
        let il = IntervalList::from_points(&inits, &terms, None);
        for t in probes {
            prop_assert_eq!(
                il.holds_at(t),
                reference_holds(&inits, &terms, t),
                "probe {:?}, inits {:?}, terms {:?}", t, inits, terms
            );
        }
    }

    #[test]
    fn union_is_commutative_and_contains_both(
        a in arb_interval_list(), b in arb_interval_list()
    ) {
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(&u1, &u2);
        for t in (0..1_200).step_by(7) {
            let ts = Timestamp(t);
            prop_assert_eq!(u1.holds_at(ts), a.holds_at(ts) || b.holds_at(ts));
        }
    }

    #[test]
    fn intersection_is_pointwise_and(
        a in arb_interval_list(), b in arb_interval_list()
    ) {
        let i = a.intersect(&b);
        for t in (0..1_200).step_by(7) {
            let ts = Timestamp(t);
            prop_assert_eq!(
                i.holds_at(ts),
                a.holds_at(ts) && b.holds_at(ts),
                "at {}", t
            );
        }
    }

    #[test]
    fn complement_is_pointwise_not_inside_window(a in arb_interval_list()) {
        let lo = Timestamp(0);
        let hi = Timestamp(1_200);
        let c = a.complement(lo, hi);
        // Strictly inside the window, complement is pointwise negation.
        for t in (1..1_200).step_by(7) {
            let ts = Timestamp(t);
            prop_assert_eq!(c.holds_at(ts), !a.holds_at(ts), "at {}", t);
        }
    }

    #[test]
    fn clip_bounds_everything(a in arb_interval_list(), lo in 0i64..500, len in 1i64..700) {
        let hi = lo + len;
        let clipped = a.clip(Timestamp(lo), Timestamp(hi));
        for iv in clipped.intervals() {
            prop_assert!(iv.since >= Timestamp(lo));
            let until = iv.until.expect("clip closes all intervals");
            prop_assert!(until <= Timestamp(hi));
        }
    }
}

// ---- engine-level properties ------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    On,
    Off,
}

fn desc() -> EventDescription<(), Ev, u8, ()> {
    EventDescription::new().fluent(
        FluentDef::new("f")
            .initiated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
                Some(Ev::On) => vec![0u8],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
                Some(Ev::Off) => vec![0u8],
                _ => vec![],
            }),
    )
}

proptest! {
    #[test]
    fn engine_is_insertion_order_independent(
        events in prop::collection::vec((0i64..1_000, any::<bool>()), 1..50),
        permutation_seed in any::<u64>(),
    ) {
        let canonical: Vec<(Timestamp, Ev)> = {
            let mut v: Vec<_> = events
                .iter()
                .map(|(t, on)| (Timestamp(*t), if *on { Ev::On } else { Ev::Off }))
                .collect();
            v.sort_by_key(|(t, _)| *t);
            v
        };
        // A deterministic shuffle.
        let mut shuffled = canonical.clone();
        let mut s = permutation_seed | 1;
        for i in (1..shuffled.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            shuffled.swap(i, (s as usize) % (i + 1));
        }

        let spec = WindowSpec::new(Duration::secs(10_000), Duration::secs(10)).unwrap();
        let run = |evs: Vec<(Timestamp, Ev)>| {
            let mut e = Engine::new((), desc(), spec);
            e.add_events(evs);
            let r = e.recognize_at(Timestamp(5_000));
            r.fluents.get(&0u8).cloned().unwrap_or_default()
        };
        prop_assert_eq!(run(canonical), run(shuffled));
    }

    #[test]
    fn working_memory_never_exceeds_window_contents(
        events in prop::collection::vec(0i64..2_000, 1..100),
        range in 10i64..500,
    ) {
        let spec = WindowSpec::new(Duration::secs(range), Duration::secs(10)).unwrap();
        let mut e = Engine::new((), desc(), spec);
        e.add_events(events.iter().map(|t| (Timestamp(*t), Ev::On)));
        let q = Timestamp(2_100);
        let r = e.recognize_at(q);
        let in_window = events
            .iter()
            .filter(|t| Timestamp(**t) > q - Duration::secs(range))
            .count();
        prop_assert_eq!(r.working_memory, in_window);
    }
}
