//! Proof that a warm engine answers steady-state queries without
//! allocating.
//!
//! The arena work keeps every per-query structure at its high-water
//! capacity: emission buffers, point maps, boundary lists, the interval
//! pool that recycles the previous result's storage, and the snapshot
//! maps the incremental checkpoint is assembled into. Once those are
//! warm, an incremental engine re-evaluating a slid window — evicting
//! expired points, rebuilding truncated intervals, processing
//! non-firing delta events, checkpointing for the next query — performs
//! zero heap allocations. This test pins that down with a counting
//! global allocator (the `crates/{ais,geo,cer}/tests/no_alloc.rs`
//! idiom).
//!
//! Rule *firings* are outside the pin: a firing rule returns its keys in
//! a fresh `Vec<K>`, so the steady-state scenario places all fluent
//! activity inside the warm window and lets only non-matching events
//! arrive through the delta — the common shape of a quiet stretch of
//! stream between bursts of activity.
//!
//! The warm-up is adaptive: pooled interval vectors converge to the
//! high-water size as the recycling rotation surfaces each of them, so
//! the test slides until three consecutive queries run allocation-free
//! (capacities only ratchet up and demands are bounded, so this
//! terminates; every structure involved iterates in deterministic Fx
//! hash order, so the run is reproducible). Only then does the pinned
//! window start.
//!
//! This lives in its own integration-test binary because it installs a
//! `#[global_allocator]`, which must not leak into other test binaries.

use std::alloc::{GlobalAlloc, Layout, System};

use maritime_rtec::{
    Duration, Engine, EvalStrategy, EventDescription, FluentDef, Recognition, Timestamp, Trigger,
    TriggerKinds, WindowSpec,
};

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates concurrently
// with the test thread, so a process-global count would be flaky. A
// const-initialized `Cell<usize>` has no destructor and no lazy init, so
// touching it from inside the allocator cannot recurse.
std::thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = THREAD_ALLOCATIONS.with(std::cell::Cell::get);
    let result = f();
    (THREAD_ALLOCATIONS.with(std::cell::Cell::get) - before, result)
}

#[derive(Clone, PartialEq)]
enum Ev {
    On(u32),
    Off(u32),
    /// A stream event no rule responds to — delta traffic that must cost
    /// nothing.
    Noise,
}

/// One Boolean fluent per id, toggled by matching input events. The
/// rules are input-only (no view probes, no boundary triggers), so the
/// incremental engine replays the whole retained prefix from its base
/// point maps.
fn description() -> EventDescription<(), Ev, u32, ()> {
    EventDescription::new().fluent(
        FluentDef::new("active")
            .initiated_on(TriggerKinds::INPUT, |_, _, trig: Trigger<'_, Ev, u32>, _| {
                match trig.input() {
                    Some(Ev::On(id)) => vec![*id],
                    _ => vec![],
                }
            })
            .terminated_on(TriggerKinds::INPUT, |_, _, trig: Trigger<'_, Ev, u32>, _| {
                match trig.input() {
                    Some(Ev::Off(id)) => vec![*id],
                    _ => vec![],
                }
            }),
    )
}

#[test]
fn steady_state_queries_allocate_nothing() {
    let spec = WindowSpec::new(Duration::secs(500), Duration::secs(10)).unwrap();
    let mut engine =
        Engine::new((), description(), spec).with_strategy(EvalStrategy::Incremental);

    // Long-lived fluents: toggles that stay inside the window for every
    // query below (evicted only after q > 700).
    for id in 0..6u32 {
        engine.add_event(Timestamp(200 + i64::from(id)), Ev::On(id));
        engine.add_event(Timestamp(440 + i64::from(id)), Ev::Off(id));
    }
    // Staggered short-lived fluents retiring one per slide as the window
    // passes t = 5..400: every query evicts one key's points — the
    // retraction path runs while pinned. Each list is a single interval,
    // like the long-lived ones, so every pooled vector is big enough for
    // every list once used — the recycling pool provably stops growing.
    for k in 0..40u32 {
        let t = 5 + 10 * i64::from(k);
        engine.add_event(Timestamp(t), Ev::On(100 + k));
        engine.add_event(Timestamp(t + 4), Ev::Off(100 + k));
    }
    // Delta traffic: noise events all the way out to t = 900, preloaded
    // so the pinned loop does not grow the window buffer. Each query's
    // delta runs the rules on ~3 fresh events; none fire.
    for t in (3..=900).step_by(3) {
        engine.add_event(Timestamp(t), Ev::Noise);
    }

    let mut out: Recognition<u32, ()> = Recognition::default();

    // Warm up until steady: the interval pool's vectors ratchet up to
    // the high-water interval count as the recycling rotation surfaces
    // them, after which no query path can allocate again.
    let mut q = 500;
    let mut settled = 0;
    while settled < 3 {
        assert!(q <= 750, "engine failed to reach allocation-free steady state by q=750");
        let (a, ()) = allocations(|| engine.recognize_into(Timestamp(q), &mut out));
        settled = if a == 0 { settled + 1 } else { 0 };
        q += 10;
    }
    let warm_stats = engine.incremental_stats();
    assert!(warm_stats.incremental >= 3, "warm-up must run incrementally");

    let (allocs, queries) = allocations(|| {
        let mut queries = 0usize;
        for _ in 0..6 {
            engine.recognize_into(Timestamp(q), &mut out);
            q += 10;
            queries += 1;
        }
        queries
    });
    assert_eq!(queries, 6);
    assert_eq!(allocs, 0, "steady-state slid-window queries must not touch the heap");
    // The work was real: the six long-lived fluents plus the staggered
    // ones still in the window, all rebuilt at the final query — and
    // some staggered keys already retired through the sliding edge.
    assert!(out.fluents.len() > 6, "long-lived and staggered fluents present");
    assert!(out.fluents.len() < 46, "some staggered fluents already retired");
    for id in 0..6u32 {
        assert!(!out.fluents[&id].is_empty(), "long-lived fluent {id} missing");
    }
    let stats = engine.incremental_stats();
    assert_eq!(
        stats.incremental - warm_stats.incremental,
        6,
        "pinned queries must all take the incremental path"
    );
}
