//! Rule-level provenance capture.
//!
//! When an [`Engine`](crate::Engine) runs with provenance enabled it
//! records, for every initiation/termination point and every derived
//! event emission, *which rule fired on which trigger* — the raw
//! material a caller needs to assemble per-CE derivation chains
//! ("this `suspicious` interval started because rule 0 of
//! `initiatedAt(suspicious)` fired on `start(stoppedNear(v, a))`, which
//! itself …").
//!
//! Capture forces from-scratch evaluation for the query: the
//! incremental strategy's whole point is replaying checkpointed results
//! *without re-running rules* (retained non-probing triggers never
//! execute at all on that path), so there is nothing to observe there.
//! Tracing is an investigative mode — the engine silently bypasses the
//! checkpoint cache while it is on and resumes incremental evaluation
//! when it is turned off.

use std::collections::HashMap;

use crate::Timestamp;

/// Which rule family of a definition fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// An `initiatedAt` rule of a fluent.
    Initiated,
    /// A `terminatedAt` rule of a fluent.
    Terminated,
    /// The built-in rule (2) cross-termination of a grouped fluent:
    /// initiating one value terminates every sibling value.
    CrossTerminated,
    /// An emission rule of a derived (instantaneous) event.
    Emitted,
}

impl RuleKind {
    /// Stable lowercase identifier for rendering and serialization.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleKind::Initiated => "initiatedAt",
            RuleKind::Terminated => "terminatedAt",
            RuleKind::CrossTerminated => "crossTerminatedAt",
            RuleKind::Emitted => "emits",
        }
    }
}

/// A stable rule identifier: definition name + rule family + position of
/// the rule inside that family (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleRef {
    /// The fluent or derived-event name the rule belongs to.
    pub name: &'static str,
    /// Rule family.
    pub kind: RuleKind,
    /// Index within the family, in declaration order.
    pub index: usize,
}

impl std::fmt::Display for RuleRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({}, rule {})", self.kind.as_str(), self.name, self.index)
    }
}

/// The trigger a rule fired on, with owned payloads so the log outlives
/// the window snapshot it was captured from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvTrigger<E, K> {
    /// An input event from the working memory.
    Input(E),
    /// The start boundary of a lower-stratum fluent interval.
    Start(K),
    /// The end boundary of a lower-stratum fluent interval.
    End(K),
}

/// One rule firing: the rule and the trigger it fired on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvFire<E, K> {
    /// Which rule fired.
    pub rule: RuleRef,
    /// What it fired on.
    pub trigger: ProvTrigger<E, K>,
}

/// One derived-event emission and its cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvEmission<E, K> {
    /// Emission time.
    pub t: Timestamp,
    /// How many event payloads the rule emitted at once.
    pub count: usize,
    /// The firing that produced them.
    pub fire: ProvFire<E, K>,
}

/// Everything one traced query recorded. Keys are `(fluent key, point
/// time)`; several rules may fire for the same point, hence the `Vec`s.
#[derive(Debug, Clone)]
pub struct ProvenanceLog<E, K> {
    /// Query time the log was captured at.
    pub query_time: Timestamp,
    /// Why each initiation point exists.
    pub initiations: HashMap<(K, Timestamp), Vec<ProvFire<E, K>>>,
    /// Why each termination point exists.
    pub terminations: HashMap<(K, Timestamp), Vec<ProvFire<E, K>>>,
    /// Why each derived event was emitted, in evaluation order.
    pub emissions: Vec<ProvEmission<E, K>>,
}

impl<E, K> Default for ProvenanceLog<E, K> {
    fn default() -> Self {
        Self {
            query_time: Timestamp(0),
            initiations: HashMap::new(),
            terminations: HashMap::new(),
            emissions: Vec::new(),
        }
    }
}

impl<E, K> ProvenanceLog<E, K>
where
    K: Clone + Eq + std::hash::Hash,
{
    /// Records one point-rule firing.
    pub fn note_point(
        &mut self,
        key: K,
        t: Timestamp,
        rule: RuleRef,
        trigger: ProvTrigger<E, K>,
    ) {
        let map = match rule.kind {
            RuleKind::Initiated => &mut self.initiations,
            _ => &mut self.terminations,
        };
        map.entry((key, t)).or_default().push(ProvFire { rule, trigger });
    }

    /// Records one derived-event emission.
    pub fn note_emission(
        &mut self,
        t: Timestamp,
        count: usize,
        rule: RuleRef,
        trigger: ProvTrigger<E, K>,
    ) {
        self.emissions.push(ProvEmission {
            t,
            count,
            fire: ProvFire { rule, trigger },
        });
    }

    /// The firings behind an initiation point, if any were recorded.
    #[must_use]
    pub fn initiated_by(&self, key: &K, t: Timestamp) -> &[ProvFire<E, K>] {
        self.initiations
            .get(&(key.clone(), t))
            .map_or(&[], Vec::as_slice)
    }

    /// The firings behind a termination point, if any were recorded.
    #[must_use]
    pub fn terminated_by(&self, key: &K, t: Timestamp) -> &[ProvFire<E, K>] {
        self.terminations
            .get(&(key.clone(), t))
            .map_or(&[], Vec::as_slice)
    }

    /// Total recorded firings (points + emissions) — a cheap size probe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.initiations.values().map(Vec::len).sum::<usize>()
            + self.terminations.values().map(Vec::len).sum::<usize>()
            + self.emissions.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
