//! Read view over already-computed fluent intervals.
//!
//! Rules at stratum *n* consult the maximal intervals of fluents computed
//! at strata `< n` through this view — the `holdsAt`/`holdsFor` queries of
//! Table 1, plus the aggregate count used by `vesselsStoppedIn(Area)` in
//! rule-set (3).
//!
//! The engine's internal fluent state is keyed by interned [`KeyId`]s
//! (see [`crate::intern`]); the view translates the rule's `&K` probes
//! through the engine's [`KeyTable`] so rule code never sees ids. A view
//! over a plain `HashMap<K, IntervalList>` ([`View::new`]) is still
//! available for tests and external callers.
//!
//! Under the incremental strategy the engine attaches a *probe recorder*:
//! every query a rule makes is logged into a [`ProbeLog`], so the
//! evaluation can be memoised and replayed at the next window slide as
//! long as each recorded probe would still observe the same answer.

use std::cell::RefCell;
use std::collections::HashMap;

use maritime_stream::Timestamp;

use crate::intern::{IdMap, KeyId, KeyTable};
use crate::intervals::IntervalList;

/// A record of every probe one rule evaluation made against the view.
///
/// A memoised evaluation may be reused verbatim iff replaying each probe
/// against the newly computed fluents yields the same answer it observed
/// when the rules actually ran; the engine checks that per entry instead
/// of re-running the rules.
///
/// Probes of keys already interned at record time are stored as
/// [`KeyId`]s; probes of keys the engine has never emitted (which
/// therefore hold nowhere) are stored as owned keys and re-resolved at
/// replay time — they only matter if the key has been interned since.
#[derive(Debug, Clone)]
pub struct ProbeLog<K> {
    /// `(key, time)` pairs observed through [`View::holds_at`].
    pub points: Vec<(KeyId, Timestamp)>,
    /// Keys whose full interval list was read through [`View::holds_for`];
    /// replay requires the list to be structurally unchanged.
    pub lists: Vec<KeyId>,
    /// `holds_at` probes of keys not yet interned when the probe ran.
    pub unknown_points: Vec<(K, Timestamp)>,
    /// `holds_for` probes of keys not yet interned when the probe ran.
    pub unknown_lists: Vec<K>,
    /// Times of [`View::count_holding_at`] aggregates. The predicate is an
    /// opaque closure, so every key counts as probed at that time.
    pub scans: Vec<Timestamp>,
    /// [`View::iter`] walked every list: any change anywhere invalidates.
    pub scan_all: bool,
}

// Manual impl: the derive would demand `K: Default` for no reason.
impl<K> Default for ProbeLog<K> {
    fn default() -> Self {
        Self {
            points: Vec::new(),
            lists: Vec::new(),
            unknown_points: Vec::new(),
            unknown_lists: Vec::new(),
            scans: Vec::new(),
            scan_all: false,
        }
    }
}

impl<K> ProbeLog<K> {
    /// Whether no probe was recorded at all (the common case: most rules
    /// pattern-match the trigger and never consult the view).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
            && self.lists.is_empty()
            && self.unknown_points.is_empty()
            && self.unknown_lists.is_empty()
            && self.scans.is_empty()
            && !self.scan_all
    }
}

/// A read-only snapshot of fluent intervals computed so far in the current
/// recognition pass.
pub struct View<'a, K> {
    inner: Inner<'a, K>,
}

enum Inner<'a, K> {
    /// A plain key-addressed map ([`View::new`]) — no probe recording.
    Direct(&'a HashMap<K, IntervalList>),
    /// The engine's id-addressed state, translated through its key table.
    Interned {
        table: &'a KeyTable<K>,
        fluents: &'a IdMap<IntervalList>,
        recorder: Option<&'a RefCell<ProbeLog<K>>>,
    },
}

impl<'a, K: std::hash::Hash + Eq + Clone> View<'a, K> {
    /// Wraps a computed-fluent map.
    #[must_use]
    pub fn new(fluents: &'a HashMap<K, IntervalList>) -> Self {
        Self {
            inner: Inner::Direct(fluents),
        }
    }

    /// Wraps the engine's interned fluent state, optionally logging every
    /// probe into `recorder`.
    pub(crate) fn interned(
        table: &'a KeyTable<K>,
        fluents: &'a IdMap<IntervalList>,
        recorder: Option<&'a RefCell<ProbeLog<K>>>,
    ) -> Self {
        Self {
            inner: Inner::Interned {
                table,
                fluents,
                recorder,
            },
        }
    }

    /// `holdsFor(F=V, I)`: the maximal intervals of `key`, empty if the
    /// fluent was never initiated.
    #[must_use]
    pub fn holds_for(&self, key: &K) -> &'a IntervalList {
        static EMPTY: once_empty::Empty = once_empty::Empty;
        match &self.inner {
            Inner::Direct(fluents) => fluents.get(key).unwrap_or(EMPTY.get()),
            Inner::Interned {
                table,
                fluents,
                recorder,
            } => match table.lookup(key) {
                Some(id) => {
                    if let Some(log) = recorder {
                        log.borrow_mut().lists.push(id);
                    }
                    fluents.get(&id).unwrap_or(EMPTY.get())
                }
                None => {
                    if let Some(log) = recorder {
                        log.borrow_mut().unknown_lists.push(key.clone());
                    }
                    EMPTY.get()
                }
            },
        }
    }

    /// `holdsAt(F=V, T)`.
    #[must_use]
    pub fn holds_at(&self, key: &K, t: Timestamp) -> bool {
        match &self.inner {
            Inner::Direct(fluents) => fluents.get(key).is_some_and(|il| il.holds_at(t)),
            Inner::Interned {
                table,
                fluents,
                recorder,
            } => match table.lookup(key) {
                Some(id) => {
                    if let Some(log) = recorder {
                        log.borrow_mut().points.push((id, t));
                    }
                    fluents.get(&id).is_some_and(|il| il.holds_at(t))
                }
                None => {
                    if let Some(log) = recorder {
                        log.borrow_mut().unknown_points.push((key.clone(), t));
                    }
                    false
                }
            },
        }
    }

    /// Counts the keys satisfying `pred` whose fluent holds at `t` — the
    /// aggregate behind `vesselsStoppedIn(Area)=N`.
    #[must_use]
    pub fn count_holding_at(&self, t: Timestamp, mut pred: impl FnMut(&K) -> bool) -> usize {
        match &self.inner {
            Inner::Direct(fluents) => fluents
                .iter()
                .filter(|(k, il)| pred(k) && il.holds_at(t))
                .count(),
            Inner::Interned {
                table,
                fluents,
                recorder,
            } => {
                if let Some(log) = recorder {
                    log.borrow_mut().scans.push(t);
                }
                fluents
                    .iter()
                    .filter(|(id, il)| pred(table.key(**id)) && il.holds_at(t))
                    .count()
            }
        }
    }

    /// Iterates over all computed `(key, intervals)` pairs.
    pub fn iter(&self) -> ViewIter<'a, K> {
        match &self.inner {
            Inner::Direct(fluents) => ViewIter {
                inner: IterInner::Direct(fluents.iter()),
            },
            Inner::Interned {
                table,
                fluents,
                recorder,
            } => {
                if let Some(log) = recorder {
                    log.borrow_mut().scan_all = true;
                }
                ViewIter {
                    inner: IterInner::Interned {
                        table,
                        iter: fluents.iter(),
                    },
                }
            }
        }
    }
}

/// Iterator over a view's `(key, intervals)` pairs; see [`View::iter`].
pub struct ViewIter<'a, K> {
    inner: IterInner<'a, K>,
}

enum IterInner<'a, K> {
    Direct(std::collections::hash_map::Iter<'a, K, IntervalList>),
    Interned {
        table: &'a KeyTable<K>,
        iter: std::collections::hash_map::Iter<'a, KeyId, IntervalList>,
    },
}

impl<'a, K> Iterator for ViewIter<'a, K> {
    type Item = (&'a K, &'a IntervalList);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterInner::Direct(iter) => iter.next(),
            IterInner::Interned { table, iter } => {
                iter.next().map(|(id, il)| (table.key(*id), il))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IterInner::Direct(iter) => iter.size_hint(),
            IterInner::Interned { iter, .. } => iter.size_hint(),
        }
    }
}

/// A `static` empty [`IntervalList`] without `lazy_static`/`once_cell`
/// dependencies: `IntervalList::default()` is const-constructible via an
/// empty `Vec`, but `Default` is not const, so we keep one in a tiny
/// module with interior immutability.
mod once_empty {
    use crate::intervals::IntervalList;
    use std::sync::OnceLock;

    pub struct Empty;

    static CELL: OnceLock<IntervalList> = OnceLock::new();

    impl Empty {
        pub fn get(&self) -> &'static IntervalList {
            CELL.get_or_init(IntervalList::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::Interval;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn holds_for_missing_key_is_empty() {
        let map: HashMap<&str, IntervalList> = HashMap::new();
        let view = View::new(&map);
        assert!(view.holds_for(&"x").is_empty());
        assert!(!view.holds_at(&"x", t(5)));
    }

    #[test]
    fn holds_at_consults_intervals() {
        let mut map = HashMap::new();
        map.insert(
            "stopped(v1)",
            IntervalList::from_intervals(vec![Interval::closed(t(10), t(20))]),
        );
        let view = View::new(&map);
        assert!(view.holds_at(&"stopped(v1)", t(15)));
        assert!(!view.holds_at(&"stopped(v1)", t(25)));
    }

    #[test]
    fn count_holding_at_filters_and_counts() {
        let mut map = HashMap::new();
        for (name, (a, b)) in [
            ("stopped(v1)", (0, 100)),
            ("stopped(v2)", (0, 10)),
            ("moored(v3)", (0, 100)),
        ] {
            map.insert(
                name,
                IntervalList::from_intervals(vec![Interval::closed(t(a), t(b))]),
            );
        }
        let view = View::new(&map);
        let n = view.count_holding_at(t(50), |k| k.starts_with("stopped"));
        assert_eq!(n, 1); // v2's interval ended at 10
        let n = view.count_holding_at(t(5), |k| k.starts_with("stopped"));
        assert_eq!(n, 2);
    }

    #[test]
    fn interned_view_reads_through_the_table() {
        let mut table: KeyTable<&str> = KeyTable::default();
        let stopped = table.intern(&"stopped(v1)");
        let mut map: IdMap<IntervalList> = IdMap::default();
        map.insert(
            stopped,
            IntervalList::from_intervals(vec![Interval::closed(t(10), t(20))]),
        );
        let view = View::interned(&table, &map, None);
        assert!(view.holds_at(&"stopped(v1)", t(15)));
        assert!(!view.holds_at(&"stopped(v1)", t(25)));
        // A key the engine never emitted: holds nowhere, empty list.
        assert!(!view.holds_at(&"moored(v9)", t(15)));
        assert!(view.holds_for(&"moored(v9)").is_empty());
        assert_eq!(view.count_holding_at(t(15), |_| true), 1);
        let pairs: Vec<_> = view.iter().collect();
        assert_eq!(pairs, vec![(&"stopped(v1)", view.holds_for(&"stopped(v1)"))]);
    }

    #[test]
    fn recorded_view_logs_every_probe_kind() {
        let mut table: KeyTable<&str> = KeyTable::default();
        let stopped = table.intern(&"stopped(v1)");
        let mut map: IdMap<IntervalList> = IdMap::default();
        map.insert(
            stopped,
            IntervalList::from_intervals(vec![Interval::closed(t(10), t(20))]),
        );
        let log = RefCell::new(ProbeLog::default());
        let view = View::interned(&table, &map, Some(&log));
        assert!(log.borrow().is_empty());
        let _ = view.holds_at(&"stopped(v1)", t(15));
        let _ = view.holds_for(&"moored(v9)");
        let _ = view.count_holding_at(t(12), |_| true);
        let _ = view.iter().count();
        let log = log.into_inner();
        assert_eq!(log.points, vec![(stopped, t(15))]);
        assert!(log.lists.is_empty());
        assert_eq!(log.unknown_lists, vec!["moored(v9)"]);
        assert!(log.unknown_points.is_empty());
        assert_eq!(log.scans, vec![t(12)]);
        assert!(log.scan_all);
        assert!(!log.is_empty());
    }

    #[test]
    fn plain_view_records_nothing() {
        let map: HashMap<&str, IntervalList> = HashMap::new();
        let view = View::new(&map);
        let _ = view.holds_at(&"x", t(1));
        // No recorder attached: nothing to observe, nothing panics.
        let _ = view.count_holding_at(t(1), |_| true);
    }
}
