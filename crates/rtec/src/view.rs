//! Read view over already-computed fluent intervals.
//!
//! Rules at stratum *n* consult the maximal intervals of fluents computed
//! at strata `< n` through this view — the `holdsAt`/`holdsFor` queries of
//! Table 1, plus the aggregate count used by `vesselsStoppedIn(Area)` in
//! rule-set (3).

use std::collections::HashMap;

use maritime_stream::Timestamp;

use crate::intervals::IntervalList;

/// A read-only snapshot of fluent intervals computed so far in the current
/// recognition pass.
pub struct View<'a, K> {
    fluents: &'a HashMap<K, IntervalList>,
}

impl<'a, K: std::hash::Hash + Eq> View<'a, K> {
    /// Wraps a computed-fluent map.
    #[must_use]
    pub fn new(fluents: &'a HashMap<K, IntervalList>) -> Self {
        Self { fluents }
    }

    /// `holdsFor(F=V, I)`: the maximal intervals of `key`, empty if the
    /// fluent was never initiated.
    #[must_use]
    pub fn holds_for(&self, key: &K) -> &IntervalList {
        static EMPTY: once_empty::Empty = once_empty::Empty;
        self.fluents.get(key).unwrap_or(EMPTY.get())
    }

    /// `holdsAt(F=V, T)`.
    #[must_use]
    pub fn holds_at(&self, key: &K, t: Timestamp) -> bool {
        self.fluents.get(key).is_some_and(|il| il.holds_at(t))
    }

    /// Counts the keys satisfying `pred` whose fluent holds at `t` — the
    /// aggregate behind `vesselsStoppedIn(Area)=N`.
    #[must_use]
    pub fn count_holding_at(&self, t: Timestamp, mut pred: impl FnMut(&K) -> bool) -> usize {
        self.fluents
            .iter()
            .filter(|(k, il)| pred(k) && il.holds_at(t))
            .count()
    }

    /// Iterates over all computed `(key, intervals)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'a K, &'a IntervalList)> {
        self.fluents.iter()
    }
}

/// A `static` empty [`IntervalList`] without `lazy_static`/`once_cell`
/// dependencies: `IntervalList::default()` is const-constructible via an
/// empty `Vec`, but `Default` is not const, so we keep one in a tiny
/// module with interior immutability.
mod once_empty {
    use crate::intervals::IntervalList;
    use std::sync::OnceLock;

    pub struct Empty;

    static CELL: OnceLock<IntervalList> = OnceLock::new();

    impl Empty {
        pub fn get(&self) -> &'static IntervalList {
            CELL.get_or_init(IntervalList::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::Interval;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn holds_for_missing_key_is_empty() {
        let map: HashMap<&str, IntervalList> = HashMap::new();
        let view = View::new(&map);
        assert!(view.holds_for(&"x").is_empty());
        assert!(!view.holds_at(&"x", t(5)));
    }

    #[test]
    fn holds_at_consults_intervals() {
        let mut map = HashMap::new();
        map.insert(
            "stopped(v1)",
            IntervalList::from_intervals(vec![Interval::closed(t(10), t(20))]),
        );
        let view = View::new(&map);
        assert!(view.holds_at(&"stopped(v1)", t(15)));
        assert!(!view.holds_at(&"stopped(v1)", t(25)));
    }

    #[test]
    fn count_holding_at_filters_and_counts() {
        let mut map = HashMap::new();
        for (name, (a, b)) in [
            ("stopped(v1)", (0, 100)),
            ("stopped(v2)", (0, 10)),
            ("moored(v3)", (0, 100)),
        ] {
            map.insert(
                name,
                IntervalList::from_intervals(vec![Interval::closed(t(a), t(b))]),
            );
        }
        let view = View::new(&map);
        let n = view.count_holding_at(t(50), |k| k.starts_with("stopped"));
        assert_eq!(n, 1); // v2's interval ended at 10
        let n = view.count_holding_at(t(5), |k| k.starts_with("stopped"));
        assert_eq!(n, 2);
    }
}
