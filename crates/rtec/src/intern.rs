//! Per-engine fluent-key interning.
//!
//! Composite fluent keys (`stoppedNear(Vessel, Area)`, …) are `Eq + Hash +
//! Ord` values that the evaluation loop used to clone into every point
//! map, boundary entry, and cache record — and hash through SipHash on
//! every probe. A [`KeyTable`] assigns each distinct key a dense [`KeyId`]
//! the first time it is emitted; from then on the engine moves and hashes
//! 4-byte ids, materialising the real key only at the emission and
//! provenance boundaries ([`Recognition`](crate::Recognition),
//! [`ProvenanceLog`](crate::ProvenanceLog)) so the public output is
//! unchanged.
//!
//! Ids are never recycled: a key interned once keeps its id for the
//! engine's lifetime, which is what lets checkpointed cache entries keep
//! referring to keys across window slides. The table therefore grows with
//! the *distinct key universe* (roughly vessels × areas in the maritime
//! description), not with the stream.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Dense handle of an interned fluent key: index into the engine's
/// [`KeyTable`]. Equality of ids is equality of keys *within one engine*;
/// the derived `Ord` is interning order, **not** the key's `Ord` — sorts
/// that must honour key order go through [`KeyTable::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

/// A splitmix64-finalising [`Hasher`] — the same zero-dependency idiom as
/// the tracker's fleet-map hasher. Integer writes dominate the engine's
/// maps (`KeyId` keys and small `Copy` fluent keys), where one
/// multiply-xor round beats SipHash by a wide margin while scrambling the
/// low bits well enough for `HashMap`'s power-of-two masking.
#[derive(Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut z = (self.state ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf) ^ chunk.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`KeyId`] with the fast hasher.
pub type IdMap<V> = HashMap<KeyId, V, FxBuildHasher>;

/// A `HashSet` of [`KeyId`]s with the fast hasher.
pub type IdSet = HashSet<KeyId, FxBuildHasher>;

/// The engine's symbol table: key → id (interning) and id → key
/// (materialisation). Keys are cloned exactly once, on first sight.
#[derive(Debug, Clone)]
pub struct KeyTable<K> {
    keys: Vec<K>,
    index: HashMap<K, KeyId, FxBuildHasher>,
}

// Manual impl: the derive would demand `K: Default` for no reason.
impl<K> Default for KeyTable<K> {
    fn default() -> Self {
        Self {
            keys: Vec::new(),
            index: HashMap::default(),
        }
    }
}

impl<K: Clone + Eq + std::hash::Hash> KeyTable<K> {
    /// The id of `key`, interning it (two clones: the `keys` slot and the
    /// `index` entry) the first time it is seen.
    pub fn intern(&mut self, key: &K) -> KeyId {
        if let Some(id) = self.index.get(key) {
            return *id;
        }
        let id = KeyId(u32::try_from(self.keys.len()).expect("more than u32::MAX distinct keys"));
        self.keys.push(key.clone());
        self.index.insert(key.clone(), id);
        id
    }
}

impl<K: Eq + std::hash::Hash> KeyTable<K> {
    /// The id of `key` if it has been interned, without interning it.
    #[must_use]
    pub fn lookup(&self, key: &K) -> Option<KeyId> {
        self.index.get(key).copied()
    }
}

impl<K> KeyTable<K> {
    /// The key behind `id`. Panics on an id from a different table.
    #[must_use]
    pub fn key(&self, id: KeyId) -> &K {
        &self.keys[id.0 as usize]
    }

    /// Number of distinct keys interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut table: KeyTable<(u32, u8)> = KeyTable::default();
        let a = table.intern(&(7, 1));
        let b = table.intern(&(9, 2));
        assert_eq!(a, KeyId(0));
        assert_eq!(b, KeyId(1));
        // Re-interning returns the same id; lookup agrees.
        assert_eq!(table.intern(&(7, 1)), a);
        assert_eq!(table.lookup(&(9, 2)), Some(b));
        assert_eq!(table.lookup(&(1, 1)), None);
        assert_eq!(table.key(a), &(7, 1));
        assert_eq!(table.key(b), &(9, 2));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn id_equality_is_key_equality() {
        let mut table: KeyTable<&'static str> = KeyTable::default();
        let ids: Vec<KeyId> = ["a", "b", "a", "c", "b"].iter().map(|k| table.intern(k)).collect();
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[4]);
        assert_ne!(ids[0], ids[3]);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn hasher_is_deterministic_and_spreads() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        // Consecutive ids must not collide in the low bits HashMap masks.
        let low: HashSet<u64> = (0..1024).map(|v| hash(v) & 0x3ff).collect();
        assert!(low.len() > 512, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn byte_writes_hash_consistently() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"stopped"), hash(b"stopped"));
        assert_ne!(hash(b"stopped"), hash(b"stopped "));
        assert_ne!(hash(b""), hash(b"\0"));
    }
}
