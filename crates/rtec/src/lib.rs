//! RTEC — the Event Calculus for Run-Time reasoning, in Rust.
//!
//! Re-implements the recognition core of §4 of the paper (after Artikis,
//! Sergot & Paliouras, "An event calculus for event recognition", TKDE
//! 2014): a linear integer time model, *events* (`happensAt`) and *fluents*
//! (`holdsAt`/`holdsFor`) whose values persist by inertia, with
//! domain-specific `initiatedAt`/`terminatedAt` rules and the `broken`
//! semantics of rules (1) and (2):
//!
//! * a fluent value `F=V` holds at `T` if it was initiated at some `Ts < T`
//!   and not *broken* in `(Ts, T]`;
//! * it is broken by a `terminatedAt(F=V, Tf)` or by `initiatedAt(F=V', Tf)`
//!   for a different value `V'` of the same fluent instance — a fluent can
//!   never hold two values at once.
//!
//! Recognition runs at query times `Q₁, Q₂, …` over a working memory that
//! holds only the events inside the sliding window `(Qᵢ − ω, Qᵢ]`; all
//! earlier events are discarded, making the cost per query depend on ω, not
//! on the stream history (§4.2, Figure 5). Delayed events that arrive
//! within the window are incorporated on the next query — out-of-order
//! input needs no special casing because intervals are recomputed from the
//! window contents.
//!
//! The logic-programming surface syntax of RTEC is replaced by a typed rule
//! API ([`description`]): fluents and derived events are declared as Rust
//! values whose initiation/termination conditions are closures over the
//! trigger event, the static knowledge `Ctx`, and a [`View`] of the fluents
//! already computed at lower strata.

#![warn(missing_docs)]

pub mod cache;
pub mod ckpt;
pub mod description;
pub mod engine;
pub mod intern;
pub mod intervals;
pub mod provenance;
pub mod view;

pub use cache::{EvalStrategy, IncrementalStats};
pub use ckpt::{Codec, CkptError, Reader, Writer};
pub use description::{DerivedEventDef, EventDescription, FluentDef, MaskedRule, Trigger, TriggerKinds};
pub use engine::{Engine, Recognition};
pub use intern::{KeyId, KeyTable};
pub use intervals::{Interval, IntervalList};
pub use maritime_stream::{Duration, Timestamp, WindowSpec};
pub use provenance::{ProvEmission, ProvFire, ProvTrigger, ProvenanceLog, RuleKind, RuleRef};
pub use view::View;
