//! Event descriptions: the typed replacement for RTEC rule clauses.
//!
//! An event description declares (a) *fluents*, each with `initiatedAt` /
//! `terminatedAt` rules, in stratification order — a fluent's rules may
//! consult only input events and fluents declared before it — and (b)
//! *derived events*, instantaneous outputs such as `illegalShipping(Area)`
//! (rule 5 of §4.1), computed from the same triggers.
//!
//! Rules are closures receiving the static knowledge `Ctx` (vessel and
//! geographic data — the atemporal predicates `fishing`, `shallow`,
//! `close`, …), a [`View`] over already-computed
//! fluents, the firing [`Trigger`], and its timestamp. They return the
//! fluent keys initiated/terminated (or derived events emitted) at that
//! point.

use maritime_stream::Timestamp;

use crate::view::View;

/// What fired a rule: an input event, or the built-in `start(F=V)` /
/// `end(F=V)` events generated at the boundaries of the maximal intervals
/// of an already-computed (lower-stratum) fluent.
#[derive(Debug)]
pub enum Trigger<'a, E, K> {
    /// An input event from the stream.
    Input(&'a E),
    /// `start(F=V)`: the fluent keyed `K` began holding at this point.
    Start(&'a K),
    /// `end(F=V)`: the fluent keyed `K` stopped holding at this point.
    End(&'a K),
}

impl<'a, E, K> Clone for Trigger<'a, E, K> {
    fn clone(&self) -> Self {
        *self
    }
}

// Manual impl: the derive would wrongly require `E: Copy, K: Copy`, but the
// variants hold only references, which are always `Copy`.
impl<'a, E, K> Copy for Trigger<'a, E, K> {}

impl<'a, E, K> Trigger<'a, E, K> {
    /// The input event, if this trigger is one.
    #[must_use]
    pub fn input(&self) -> Option<&'a E> {
        match self {
            Self::Input(e) => Some(e),
            _ => None,
        }
    }

    /// The started fluent key, if this is a `start` trigger.
    #[must_use]
    pub fn started(&self) -> Option<&'a K> {
        match self {
            Self::Start(k) => Some(k),
            _ => None,
        }
    }

    /// The ended fluent key, if this is an `end` trigger.
    #[must_use]
    pub fn ended(&self) -> Option<&'a K> {
        match self {
            Self::End(k) => Some(k),
            _ => None,
        }
    }
}

/// A point rule: maps a trigger at time `T` to the fluent keys it
/// initiates (for `initiatedAt` rules) or terminates (for `terminatedAt`).
pub type PointRule<Ctx, E, K> =
    Box<dyn Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<K> + Send + Sync>;

/// A derived-event rule: maps a trigger at `T` to emitted output events.
pub type EventRule<Ctx, E, K, D> =
    Box<dyn Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<D> + Send + Sync>;

/// The trigger kinds a rule declares it can respond to.
///
/// This is a *contract*, not a filter: by registering a rule under a mask
/// the author promises that for any trigger outside the mask the rule
/// returns no emissions and consults no fluents. The engine is then free
/// to skip the call — or a whole evaluation pass — without changing the
/// recognised output. Rules registered through the plain builders
/// ([`FluentDef::initiated`], [`FluentDef::terminated`],
/// [`DerivedEventDef::rule`]) default to [`TriggerKinds::ALL`], which is
/// always sound.
///
/// In the maritime description most rules pattern-match one trigger kind
/// and fall through to `vec![]` otherwise; declaring that shape lets the
/// engine skip, e.g., every derived-rule invocation on interval-boundary
/// triggers and every lower-stratum rule on `start`/`end` triggers —
/// a large share of the per-query rule calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerKinds(u8);

impl TriggerKinds {
    /// Input events from the stream ([`Trigger::Input`]).
    pub const INPUT: Self = Self(0b001);
    /// `start(F=V)` interval boundaries ([`Trigger::Start`]).
    pub const START: Self = Self(0b010);
    /// `end(F=V)` interval boundaries ([`Trigger::End`]).
    pub const END: Self = Self(0b100);
    /// Both boundary kinds.
    pub const BOUNDARY: Self = Self(0b110);
    /// Every trigger kind (the default; always sound).
    pub const ALL: Self = Self(0b111);
    /// No trigger kind — the identity for [`TriggerKinds::union`].
    pub const NONE: Self = Self(0b000);

    /// The union of two masks.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Whether the two masks share any kind.
    #[must_use]
    pub const fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether this mask admits the given trigger.
    #[must_use]
    pub fn admits<E, K>(self, trigger: &Trigger<'_, E, K>) -> bool {
        let kind = match trigger {
            Trigger::Input(_) => Self::INPUT,
            Trigger::Start(_) => Self::START,
            Trigger::End(_) => Self::END,
        };
        self.intersects(kind)
    }
}

/// A rule paired with the trigger kinds it responds to.
pub struct MaskedRule<R> {
    /// The declared trigger kinds (see [`TriggerKinds`]).
    pub on: TriggerKinds,
    /// The rule closure.
    pub run: R,
}

/// Grouping function implementing rule (2): keys mapping to the same group
/// are values of the same fluent instance, so initiating one terminates
/// the others. `None` disables cross-value termination (Boolean fluents).
pub type GroupFn<K, G> = Box<dyn Fn(&K) -> G + Send + Sync>;

/// A fluent definition (simple fluent in RTEC terms).
pub struct FluentDef<Ctx, E, K, G = ()> {
    /// Human-readable name, for debugging and reports.
    pub name: &'static str,
    /// `initiatedAt` rules.
    pub initiated_at: Vec<MaskedRule<PointRule<Ctx, E, K>>>,
    /// `terminatedAt` rules.
    pub terminated_at: Vec<MaskedRule<PointRule<Ctx, E, K>>>,
    /// Optional value-group function (rule (2)).
    pub group: Option<GroupFn<K, G>>,
}

impl<Ctx, E, K, G> FluentDef<Ctx, E, K, G> {
    /// A fluent with no rules yet.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            initiated_at: Vec::new(),
            terminated_at: Vec::new(),
            group: None,
        }
    }

    /// Adds an `initiatedAt` rule responding to every trigger kind.
    #[must_use]
    pub fn initiated<Fun>(self, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<K>
            + Send
            + Sync
            + 'static,
    {
        self.initiated_on(TriggerKinds::ALL, rule)
    }

    /// Adds an `initiatedAt` rule with a declared trigger mask: the rule
    /// promises to emit nothing and probe nothing for triggers outside
    /// `on`, and the engine may skip calling it for those.
    #[must_use]
    pub fn initiated_on<Fun>(mut self, on: TriggerKinds, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<K>
            + Send
            + Sync
            + 'static,
    {
        self.initiated_at.push(MaskedRule { on, run: Box::new(rule) });
        self
    }

    /// Adds a `terminatedAt` rule responding to every trigger kind.
    #[must_use]
    pub fn terminated<Fun>(self, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<K>
            + Send
            + Sync
            + 'static,
    {
        self.terminated_on(TriggerKinds::ALL, rule)
    }

    /// Adds a `terminatedAt` rule with a declared trigger mask (see
    /// [`FluentDef::initiated_on`]).
    #[must_use]
    pub fn terminated_on<Fun>(mut self, on: TriggerKinds, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<K>
            + Send
            + Sync
            + 'static,
    {
        self.terminated_at.push(MaskedRule { on, run: Box::new(rule) });
        self
    }

    /// The union of every rule's trigger mask — the kinds for which this
    /// stratum needs to be consulted at all.
    #[must_use]
    pub fn trigger_kinds(&self) -> TriggerKinds {
        self.initiated_at
            .iter()
            .chain(self.terminated_at.iter())
            .fold(TriggerKinds::NONE, |acc, r| acc.union(r.on))
    }

    /// Declares the value group (rule (2) cross-value termination).
    #[must_use]
    pub fn grouped<Fun>(mut self, group: Fun) -> Self
    where
        Fun: Fn(&K) -> G + Send + Sync + 'static,
    {
        self.group = Some(Box::new(group));
        self
    }
}

/// A derived (instantaneous) output event definition.
pub struct DerivedEventDef<Ctx, E, K, D> {
    /// Human-readable name.
    pub name: &'static str,
    /// `happensAt` rules producing the derived events.
    pub rules: Vec<MaskedRule<EventRule<Ctx, E, K, D>>>,
}

impl<Ctx, E, K, D> DerivedEventDef<Ctx, E, K, D> {
    /// An event with no rules yet.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            rules: Vec::new(),
        }
    }

    /// Adds a `happensAt` rule responding to every trigger kind.
    #[must_use]
    pub fn rule<Fun>(self, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<D>
            + Send
            + Sync
            + 'static,
    {
        self.rule_on(TriggerKinds::ALL, rule)
    }

    /// Adds a `happensAt` rule with a declared trigger mask (see
    /// [`FluentDef::initiated_on`]).
    #[must_use]
    pub fn rule_on<Fun>(mut self, on: TriggerKinds, rule: Fun) -> Self
    where
        Fun: Fn(&Ctx, &View<'_, K>, Trigger<'_, E, K>, Timestamp) -> Vec<D>
            + Send
            + Sync
            + 'static,
    {
        self.rules.push(MaskedRule { on, run: Box::new(rule) });
        self
    }

    /// The union of every rule's trigger mask.
    #[must_use]
    pub fn trigger_kinds(&self) -> TriggerKinds {
        self.rules.iter().fold(TriggerKinds::NONE, |acc, r| acc.union(r.on))
    }
}

/// A complete event description: fluents in stratification order plus
/// derived events (evaluated last, over all triggers).
pub struct EventDescription<Ctx, E, K, D, G = ()> {
    /// Fluent definitions; index = stratum.
    pub fluents: Vec<FluentDef<Ctx, E, K, G>>,
    /// Derived event definitions.
    pub events: Vec<DerivedEventDef<Ctx, E, K, D>>,
}

impl<Ctx, E, K, D, G> Default for EventDescription<Ctx, E, K, D, G> {
    fn default() -> Self {
        Self {
            fluents: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl<Ctx, E, K, D, G> EventDescription<Ctx, E, K, D, G> {
    /// An empty description.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fluent at the next stratum.
    #[must_use]
    pub fn fluent(mut self, def: FluentDef<Ctx, E, K, G>) -> Self {
        self.fluents.push(def);
        self
    }

    /// Appends a derived event definition.
    #[must_use]
    pub fn event(mut self, def: DerivedEventDef<Ctx, E, K, D>) -> Self {
        self.events.push(def);
        self
    }
}
