//! The windowed recognition engine.
//!
//! Implements the run-time behaviour of §4.2: recognition is performed at
//! query times `Q₁, Q₂, …` over the working memory — the input events whose
//! timestamps fall in `(Qᵢ − ω, Qᵢ]`. At each query the engine recomputes
//! the maximal intervals of every declared fluent, stratum by stratum, and
//! evaluates the derived-event rules. Because the computation always runs
//! from the current window contents, events that arrive late (but still
//! inside the window) are picked up on the next query — the delayed-event
//! behaviour illustrated in Figure 5 — and out-of-order arrival needs no
//! special handling.

use std::collections::HashMap;

use maritime_stream::{SlidingWindow, Timestamp, WindowSpec};

use crate::description::{EventDescription, Trigger};
use crate::intervals::IntervalList;
use crate::view::View;

/// The result of one recognition query.
#[derive(Debug, Clone)]
pub struct Recognition<K, D> {
    /// Query time `Qᵢ`.
    pub query_time: Timestamp,
    /// Maximal intervals per fluent key. Open intervals (`until == None`)
    /// are ongoing at `query_time`.
    pub fluents: HashMap<K, IntervalList>,
    /// Derived events, in time order.
    pub events: Vec<(Timestamp, D)>,
    /// Input events considered in this query (the working-memory size).
    pub working_memory: usize,
}

/// The RTEC engine: static knowledge + event description + working memory.
///
/// ```
/// use maritime_rtec::{
///     Duration, Engine, EventDescription, FluentDef, Interval, Timestamp, Trigger, WindowSpec,
/// };
///
/// // A one-fluent description: active(id) toggled by "on"/"off" events.
/// #[derive(Clone, PartialEq)]
/// enum Ev { On(u8), Off(u8) }
/// let description = EventDescription::<(), Ev, u8, ()>::new().fluent(
///     FluentDef::new("active")
///         .initiated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
///             Some(Ev::On(id)) => vec![*id],
///             _ => vec![],
///         })
///         .terminated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
///             Some(Ev::Off(id)) => vec![*id],
///             _ => vec![],
///         }),
/// );
///
/// let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(10)).unwrap();
/// let mut engine = Engine::new((), description, spec);
/// engine.add_events([(Timestamp(100), Ev::On(7)), (Timestamp(900), Ev::Off(7))]);
/// let r = engine.recognize_at(Timestamp(1_000));
/// assert_eq!(
///     r.fluents[&7].intervals(),
///     &[Interval::closed(Timestamp(100), Timestamp(900))]
/// );
/// ```
pub struct Engine<Ctx, E, K, D, G = ()> {
    ctx: Ctx,
    description: EventDescription<Ctx, E, K, D, G>,
    window: SlidingWindow<E>,
    last_query: Option<Timestamp>,
}

impl<Ctx, E, K, D, G> Engine<Ctx, E, K, D, G>
where
    E: Clone,
    K: Clone + Eq + std::hash::Hash + Ord,
    G: Eq + std::hash::Hash,
{
    /// Creates an engine over the given static knowledge and description.
    pub fn new(ctx: Ctx, description: EventDescription<Ctx, E, K, D, G>, spec: WindowSpec) -> Self {
        Self {
            ctx,
            description,
            window: SlidingWindow::new(spec),
            last_query: None,
        }
    }

    /// The static knowledge.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Streams one input event into the working memory. Arrival order is
    /// free; the buffer keeps events sorted by timestamp.
    pub fn add_event(&mut self, t: Timestamp, event: E) {
        self.window.insert(t, event);
    }

    /// Streams a batch of events.
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, E)>) {
        for (t, e) in events {
            self.add_event(t, e);
        }
    }

    /// Runs recognition at query time `q`: discards events at or before
    /// `q − ω`, then computes all fluents and derived events from the
    /// remaining working memory.
    pub fn recognize_at(&mut self, q: Timestamp) -> Recognition<K, D> {
        self.window.slide_to(q);
        self.last_query = Some(q);

        // Working-memory snapshot, time-ordered: only events inside
        // (q - ω, q]. Events with later timestamps may already sit in the
        // buffer (batch pre-loading, out-of-order delivery) but have not
        // "happened" yet at this query time and must not participate.
        let events: Vec<(Timestamp, &E)> =
            self.window.iter().take_while(|(t, _)| *t <= q).collect();

        // Triggers accumulated so far: input events plus start/end of
        // already-computed strata. Kept sorted by (time, kind, key) for
        // deterministic evaluation.
        let mut computed: HashMap<K, IntervalList> = HashMap::new();
        // start/end triggers: (timestamp, is_end, key)
        let mut boundary: Vec<(Timestamp, bool, K)> = Vec::new();

        for stratum in &self.description.fluents {
            let view = View::new(&computed);
            let mut initiations: HashMap<K, Vec<Timestamp>> = HashMap::new();
            let mut terminations: HashMap<K, Vec<Timestamp>> = HashMap::new();

            let apply = |trigger: Trigger<'_, E, K>, t: Timestamp,
                             initiations: &mut HashMap<K, Vec<Timestamp>>,
                             terminations: &mut HashMap<K, Vec<Timestamp>>,
                             view: &View<'_, K>| {
                for rule in &stratum.initiated_at {
                    for key in rule(&self.ctx, view, trigger, t) {
                        initiations.entry(key).or_default().push(t);
                    }
                }
                for rule in &stratum.terminated_at {
                    for key in rule(&self.ctx, view, trigger, t) {
                        terminations.entry(key).or_default().push(t);
                    }
                }
            };

            // Merge input events and boundary triggers in time order so
            // rules observe a coherent chronology.
            let mut ei = 0usize;
            let mut bi = 0usize;
            while ei < events.len() || bi < boundary.len() {
                let take_event = match (events.get(ei), boundary.get(bi)) {
                    (Some((te, _)), Some((tb, _, _))) => te <= tb,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_event {
                    let (t, e) = events[ei];
                    apply(Trigger::Input(e), t, &mut initiations, &mut terminations, &view);
                    ei += 1;
                } else {
                    let (t, is_end, key) = &boundary[bi];
                    let trig = if *is_end {
                        Trigger::End(key)
                    } else {
                        Trigger::Start(key)
                    };
                    apply(trig, *t, &mut initiations, &mut terminations, &view);
                    bi += 1;
                }
            }

            // Rule (2): initiating one value of a grouped fluent instance
            // terminates every other value of the same instance.
            if let Some(group_fn) = &stratum.group {
                let mut groups: HashMap<G, Vec<K>> = HashMap::new();
                for key in initiations.keys() {
                    groups.entry(group_fn(key)).or_default().push(key.clone());
                }
                let mut extra: Vec<(K, Timestamp)> = Vec::new();
                for members in groups.values() {
                    if members.len() < 2 {
                        continue;
                    }
                    for initiator in members {
                        for t in &initiations[initiator] {
                            for other in members {
                                if other != initiator {
                                    extra.push((other.clone(), *t));
                                }
                            }
                        }
                    }
                }
                for (key, t) in extra {
                    terminations.entry(key).or_default().push(t);
                }
            }

            // Build maximal intervals per key and emit boundary triggers.
            let mut keys: Vec<K> = initiations.keys().cloned().collect();
            keys.sort();
            for key in keys {
                let mut inits = initiations.remove(&key).unwrap_or_default();
                inits.sort();
                inits.dedup();
                let mut terms = terminations.remove(&key).unwrap_or_default();
                terms.sort();
                terms.dedup();
                let il = IntervalList::from_points(&inits, &terms, None);
                for iv in il.intervals() {
                    boundary.push((iv.since, false, key.clone()));
                    if let Some(u) = iv.until {
                        boundary.push((u, true, key.clone()));
                    }
                }
                computed.insert(key, il);
            }
            boundary.sort_by_key(|a| (a.0, a.1));
        }

        // Derived events, over the full trigger chronology.
        let view = View::new(&computed);
        let mut derived: Vec<(Timestamp, D)> = Vec::new();
        for def in &self.description.events {
            let mut ei = 0usize;
            let mut bi = 0usize;
            while ei < events.len() || bi < boundary.len() {
                let take_event = match (events.get(ei), boundary.get(bi)) {
                    (Some((te, _)), Some((tb, _, _))) => te <= tb,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let (trigger, t) = if take_event {
                    let (t, e) = events[ei];
                    ei += 1;
                    (Trigger::Input(e), t)
                } else {
                    let (t, is_end, key) = &boundary[bi];
                    bi += 1;
                    let trig = if *is_end {
                        Trigger::End(key)
                    } else {
                        Trigger::Start(key)
                    };
                    (trig, *t)
                };
                for rule in &def.rules {
                    for d in rule(&self.ctx, &view, trigger, t) {
                        derived.push((t, d));
                    }
                }
            }
        }
        derived.sort_by_key(|(t, _)| *t);

        Recognition {
            query_time: q,
            fluents: computed,
            events: derived,
            working_memory: events.len(),
        }
    }

    /// Runs recognition at every query time of the window spec between
    /// `origin` and `until`, returning one [`Recognition`] per query.
    pub fn recognize_stream(
        &mut self,
        origin: Timestamp,
        until: Timestamp,
    ) -> Vec<Recognition<K, D>> {
        let spec = self.window.spec();
        spec.query_times(origin, until)
            .into_iter()
            .map(|q| self.recognize_at(q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{DerivedEventDef, FluentDef};
    use crate::intervals::Interval;
    use maritime_stream::Duration;

    /// Toy domain: a machine emits `on(id)` / `off(id)` / `ping(id)`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Ev {
        On(u32),
        Off(u32),
        SetMode(u32, &'static str),
    }

    /// Fluent keys: active(id)=true, mode(id)=value.
    #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
    enum Key {
        Active(u32),
        Mode(u32, &'static str),
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Out {
        Activated(u32),
        AllQuiet(u32),
    }

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn spec(range: i64, slide: i64) -> WindowSpec {
        WindowSpec::new(Duration::secs(range), Duration::secs(slide)).unwrap()
    }

    fn active_fluent() -> FluentDef<(), Ev, Key, u32> {
        FluentDef::new("active")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::On(id)) => vec![Key::Active(*id)],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::Off(id)) => vec![Key::Active(*id)],
                _ => vec![],
            })
    }

    fn description() -> EventDescription<(), Ev, Key, Out, u32> {
        EventDescription::new().fluent(active_fluent())
    }

    #[test]
    fn simple_fluent_intervals() {
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::On(1)),
            (t(50), Ev::Off(1)),
            (t(70), Ev::On(1)),
        ]);
        let r = engine.recognize_at(t(100));
        let il = &r.fluents[&Key::Active(1)];
        assert_eq!(
            il.intervals(),
            &[Interval::closed(t(10), t(50)), Interval::open(t(70))]
        );
        assert_eq!(r.working_memory, 3);
    }

    #[test]
    fn inertia_carries_value_between_events() {
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_event(t(10), Ev::On(1));
        let r = engine.recognize_at(t(500));
        assert!(r.fluents[&Key::Active(1)].holds_at(t(499)));
    }

    #[test]
    fn window_discards_old_events() {
        let mut engine = Engine::new((), description(), spec(100, 50));
        engine.add_event(t(10), Ev::On(1));
        // At q=200 the On event (t=10 <= 200-100) is gone: no intervals.
        let r = engine.recognize_at(t(200));
        assert!(!r.fluents.contains_key(&Key::Active(1)));
        assert_eq!(r.working_memory, 0);
    }

    #[test]
    fn delayed_events_incorporated_at_next_query() {
        let mut engine = Engine::new((), description(), spec(200, 50));
        engine.add_event(t(10), Ev::On(1));
        let r1 = engine.recognize_at(t(50));
        assert_eq!(r1.fluents[&Key::Active(1)].intervals(), &[Interval::open(t(10))]);
        // The Off at t=40 arrives late, after Q=50 but within the window.
        engine.add_event(t(40), Ev::Off(1));
        let r2 = engine.recognize_at(t(100));
        assert_eq!(
            r2.fluents[&Key::Active(1)].intervals(),
            &[Interval::closed(t(10), t(40))]
        );
    }

    #[test]
    fn multivalue_fluent_rule_2_cross_termination() {
        // mode(id) = v: initiating one value terminates the others.
        let mode = FluentDef::new("mode")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, m)],
                _ => vec![],
            })
            .grouped(|k: &Key| match k {
                Key::Mode(id, _) => *id,
                Key::Active(id) => *id,
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> =
            EventDescription::new().fluent(mode);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::SetMode(1, "eco")),
            (t(60), Ev::SetMode(1, "boost")),
        ]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.fluents[&Key::Mode(1, "eco")].intervals(),
            &[Interval::closed(t(10), t(60))]
        );
        assert_eq!(
            r.fluents[&Key::Mode(1, "boost")].intervals(),
            &[Interval::open(t(60))]
        );
        // Never two values at once.
        for probe in [15, 60, 70, 99] {
            let eco = r.fluents[&Key::Mode(1, "eco")].holds_at(t(probe));
            let boost = r.fluents[&Key::Mode(1, "boost")].holds_at(t(probe));
            assert!(!(eco && boost), "both values hold at {probe}");
        }
    }

    #[test]
    fn stratified_fluent_triggered_by_start_of_lower_stratum() {
        // alarm(id) = true from the moment active(id) starts, terminated
        // when active(id) ends. Uses the built-in start/end triggers.
        let alarm = FluentDef::new("alarm")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.ended() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> =
            EventDescription::new().fluent(active_fluent()).fluent(alarm);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([(t(10), Ev::On(7)), (t(80), Ev::Off(7))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.fluents[&Key::Mode(7, "alarm")].intervals(),
            &[Interval::closed(t(10), t(80))]
        );
    }

    #[test]
    fn derived_events_fire_on_triggers() {
        let activated = DerivedEventDef::new("activated")
            .rule(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Out::Activated(*id)],
                _ => vec![],
            });
        let quiet = DerivedEventDef::new("all_quiet")
            .rule(|_, view: &View<'_, Key>, trig: Trigger<'_, Ev, Key>, t| {
                match trig.ended() {
                    Some(Key::Active(id))
                        if view.count_holding_at(
                            t + Duration::secs(1),
                            |k| matches!(k, Key::Active(_)),
                        ) == 0 =>
                    {
                        vec![Out::AllQuiet(*id)]
                    }
                    _ => vec![],
                }
            });
        let desc = EventDescription::new()
            .fluent(active_fluent())
            .event(activated)
            .event(quiet);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::On(1)),
            (t(20), Ev::On(2)),
            (t(50), Ev::Off(1)),
            (t(90), Ev::Off(2)),
        ]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.events,
            vec![
                (t(10), Out::Activated(1)),
                (t(20), Out::Activated(2)),
                (t(90), Out::AllQuiet(2)),
            ]
        );
    }

    #[test]
    fn future_events_do_not_participate() {
        // Events pre-loaded with timestamps after the query time have not
        // happened yet: recognition at q must ignore them entirely.
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_events([(t(10), Ev::On(1)), (t(500), Ev::Off(1))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(r.working_memory, 1);
        assert_eq!(
            r.fluents[&Key::Active(1)].intervals(),
            &[Interval::open(t(10))],
            "the future Off must not close the interval yet"
        );
        // Once the query time passes the Off, it takes effect.
        let r = engine.recognize_at(t(600));
        assert_eq!(
            r.fluents[&Key::Active(1)].intervals(),
            &[Interval::closed(t(10), t(500))]
        );
    }

    #[test]
    fn recognize_stream_runs_every_query_time() {
        let mut engine = Engine::new((), description(), spec(100, 50));
        engine.add_events([(t(10), Ev::On(1)), (t(120), Ev::Off(1))]);
        let rs = engine.recognize_stream(t(0), t(200));
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].query_time, t(50));
        // At q=50 and q=100 the fluent is ongoing.
        assert!(rs[0].fluents[&Key::Active(1)].holds_at(t(49)));
        // At q=150, the On event (t=10 <= 150-100) has been evicted; the
        // Off at 120 alone initiates nothing.
        assert!(!rs[2].fluents.contains_key(&Key::Active(1)));
    }

    #[test]
    fn out_of_order_insertion_is_equivalent_to_sorted() {
        let run = |events: Vec<(Timestamp, Ev)>| {
            let mut engine = Engine::new((), description(), spec(1_000, 100));
            engine.add_events(events);
            let r = engine.recognize_at(t(500));
            r.fluents[&Key::Active(1)].clone()
        };
        let sorted = run(vec![
            (t(10), Ev::On(1)),
            (t(50), Ev::Off(1)),
            (t(80), Ev::On(1)),
            (t(120), Ev::Off(1)),
        ]);
        let shuffled = run(vec![
            (t(80), Ev::On(1)),
            (t(10), Ev::On(1)),
            (t(120), Ev::Off(1)),
            (t(50), Ev::Off(1)),
        ]);
        assert_eq!(sorted, shuffled);
    }
}
