//! The windowed recognition engine.
//!
//! Implements the run-time behaviour of §4.2: recognition is performed at
//! query times `Q₁, Q₂, …` over the working memory — the input events whose
//! timestamps fall in `(Qᵢ − ω, Qᵢ]`. At each query the engine recomputes
//! the maximal intervals of every declared fluent, stratum by stratum, and
//! evaluates the derived-event rules. Because the computation always runs
//! from the current window contents, events that arrive late (but still
//! inside the window) are picked up on the next query — the delayed-event
//! behaviour illustrated in Figure 5 — and out-of-order arrival needs no
//! special handling.
//!
//! With [`EvalStrategy::Incremental`] the engine memoises every rule
//! evaluation (per trigger, per stratum) that emitted something or probed
//! the view — the silent majority of triggers replays an empty outcome
//! implicitly — and at the next query replays the memoised entries,
//! running rules only for the delta since the checkpoint and for the few
//! retained triggers whose probed fluents actually changed, e.g. above an
//! interval clipped by window eviction. Late arrivals and non-monotone
//! queries fall back to the from-scratch path. See [`crate::cache`] for
//! the correctness model; output is bit-identical either way.
//!
//! # Hot-path layout
//!
//! Internally the evaluation loop never touches the user's fluent key
//! type `K`: every emitted key is interned into the engine's
//! [`KeyTable`] on first sight and the point maps, boundary lists, and
//! cache entries all move 4-byte [`KeyId`]s hashed with the table's
//! splitmix64 hasher (see [`crate::intern`]). Real keys are materialised
//! only at the emission boundaries — [`Recognition`] and the provenance
//! log — so the public output is byte-identical to the key-addressed
//! implementation. All per-query scratch state lives in a per-engine
//! `EvalArena` reused across queries ([`Engine::recognize_into`]
//! additionally reuses the caller's output buffers), so a warm engine
//! evaluates a slid window without allocating.

use std::cell::RefCell;
use std::collections::HashMap;

use maritime_obs::{names, LazyCounter, LazyGauge};
use maritime_stream::{SlidingWindow, Timestamp, WindowSpec};

use crate::cache::{
    DerivedEntry, EngineCache, EvalStrategy, IncrementalStats, PointEntry, StratumCache,
};
use crate::description::{EventDescription, FluentDef, Trigger, TriggerKinds};
use crate::intern::{FxBuildHasher, IdMap, IdSet, KeyId, KeyTable};
use crate::intervals::{Interval, IntervalList};
use crate::provenance::{ProvTrigger, ProvenanceLog, RuleKind, RuleRef};
use crate::view::{ProbeLog, View};

/// Live recognition metrics, summed across every [`Engine`] instance
/// (e.g. one per spatial band under partitioned recognition); see
/// `OBSERVABILITY.md`. They surface the incremental strategy's win as a
/// running ratio: `rtec_cache_replays_total` vs
/// `rtec_rule_evaluations_total`.
static OBS_QUERIES: LazyCounter = LazyCounter::new(names::RTEC_QUERIES);
static OBS_QUERIES_INCREMENTAL: LazyCounter = LazyCounter::new(names::RTEC_QUERIES_INCREMENTAL);
static OBS_RULE_EVALS: LazyCounter = LazyCounter::new(names::RTEC_RULE_EVALUATIONS);
static OBS_CACHE_REPLAYS: LazyCounter = LazyCounter::new(names::RTEC_CACHE_REPLAYS);
static OBS_CACHE_INVALIDATIONS: LazyCounter = LazyCounter::new(names::RTEC_CACHE_INVALIDATIONS);
static OBS_WORKING_MEMORY: LazyGauge = LazyGauge::new(names::RTEC_WORKING_MEMORY_EVENTS);
static OBS_INTERNED_KEYS: LazyGauge = LazyGauge::new(names::RTEC_INTERNED_KEYS);

/// The result of one recognition query.
#[derive(Debug, Clone)]
pub struct Recognition<K, D> {
    /// Query time `Qᵢ`.
    pub query_time: Timestamp,
    /// Maximal intervals per fluent key. Open intervals (`until == None`)
    /// are ongoing at `query_time`.
    pub fluents: HashMap<K, IntervalList, FxBuildHasher>,
    /// Derived events, in time order.
    pub events: Vec<(Timestamp, D)>,
    /// Input events considered in this query (the working-memory size).
    pub working_memory: usize,
}

// Manual impl: the derive would demand `K: Default + D: Default`.
impl<K, D> Default for Recognition<K, D> {
    fn default() -> Self {
        Self {
            query_time: Timestamp(0),
            fluents: HashMap::default(),
            events: Vec::new(),
            working_memory: 0,
        }
    }
}

/// The probe recorder and optional rule-firing collector shared by every
/// rule evaluation in one query pass, bundled so the evaluation helpers
/// take one sink handle instead of three parallel parameters.
#[derive(Clone, Copy)]
struct EvalSinks<'a, E, K> {
    recorder: &'a RefCell<ProbeLog<K>>,
    want_cache: bool,
    prov: Option<&'a RefCell<ProvenanceLog<E, K>>>,
}

/// `holdsAt` over an optional interval list: absent keys never hold.
fn holds(fluents: &IdMap<IntervalList>, id: KeyId, t: Timestamp) -> bool {
    fluents.get(&id).is_some_and(|il| il.holds_at(t))
}

/// Whether replaying a memoised evaluation could go wrong: true when some
/// probe it recorded may answer differently against the new state.
/// `changed` holds every key whose list differs from the checkpointed one,
/// so keys outside it answer identically everywhere; for point and
/// aggregate probes the old and new answers at the probed time are
/// compared exactly. Probes of keys that were unknown (never interned)
/// when recorded answered "holds nowhere"; they can only answer
/// differently if the key has been interned *and* changed since, so they
/// are re-resolved through the table.
fn probes_affected<K: Eq + std::hash::Hash>(
    probes: &ProbeLog<K>,
    changed: &IdSet,
    old: &IdMap<IntervalList>,
    new: &IdMap<IntervalList>,
    table: &KeyTable<K>,
) -> bool {
    if changed.is_empty() {
        return false;
    }
    if probes.scan_all {
        return true;
    }
    if probes.lists.iter().any(|id| changed.contains(id)) {
        return true;
    }
    if probes
        .unknown_lists
        .iter()
        .any(|k| table.lookup(k).is_some_and(|id| changed.contains(&id)))
    {
        return true;
    }
    if probes
        .points
        .iter()
        .any(|(id, t)| changed.contains(id) && holds(old, *id, *t) != holds(new, *id, *t))
    {
        return true;
    }
    if probes.unknown_points.iter().any(|(k, t)| {
        table.lookup(k).is_some_and(|id| {
            changed.contains(&id) && holds(old, id, *t) != holds(new, id, *t)
        })
    }) {
        return true;
    }
    probes
        .scans
        .iter()
        .any(|t| changed.iter().any(|id| holds(old, *id, *t) != holds(new, *id, *t)))
}

/// Merges two `(t, is_end, key)`-sorted boundary lists into `out`
/// (cleared first). Key order is the *key's* `Ord`, resolved through the
/// table — [`KeyId`]s order by interning, not by key. Appending one
/// stratum's boundaries costs a sort of the new chunk plus a linear
/// merge, instead of re-sorting the whole accumulated list per stratum.
fn merge_boundaries_into<K: Ord>(
    a: &[(Timestamp, bool, KeyId)],
    b: &[(Timestamp, bool, KeyId)],
    out: &mut Vec<(Timestamp, bool, KeyId)>,
    table: &KeyTable<K>,
) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let x = &a[i];
        let y = &b[j];
        if (x.0, x.1, table.key(x.2)) <= (y.0, y.1, table.key(y.2)) {
            out.push(*x);
            i += 1;
        } else {
            out.push(*y);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// The built-in trigger for one boundary-list entry.
fn boundary_trigger<E, K>(is_end: bool, key: &K) -> Trigger<'_, E, K> {
    if is_end {
        Trigger::End(key)
    } else {
        Trigger::Start(key)
    }
}

/// Merges one entry's emissions into the per-key point maps.
fn fold_points<K>(
    entry: &PointEntry<K>,
    initiations: &mut IdMap<Vec<Timestamp>>,
    terminations: &mut IdMap<Vec<Timestamp>>,
) {
    for &k in &entry.inits {
        initiations.entry(k).or_default().push(entry.t);
    }
    for &k in &entry.terms {
        terminations.entry(k).or_default().push(entry.t);
    }
}

/// A key's final point list: the union of its (already canonical) base
/// list and its per-query extra list, as a sorted deduplicated slice.
/// When only one side has points it is borrowed directly; otherwise the
/// two are merged into `buf`.
fn merged_slice<'a>(
    base: &'a IdMap<Vec<Timestamp>>,
    extra: &'a IdMap<Vec<Timestamp>>,
    key: KeyId,
    buf: &'a mut Vec<Timestamp>,
) -> &'a [Timestamp] {
    match (base.get(&key), extra.get(&key)) {
        (Some(b), None) => b,
        (None, Some(e)) => e,
        (None, None) => &[],
        (Some(b), Some(e)) => {
            buf.clear();
            buf.reserve(b.len() + e.len());
            let (mut i, mut j) = (0, 0);
            while i < b.len() && j < e.len() {
                let v = if b[i] <= e[j] {
                    i += 1;
                    b[i - 1]
                } else {
                    j += 1;
                    e[j - 1]
                };
                if buf.last() != Some(&v) {
                    buf.push(v);
                }
            }
            for &v in b[i..].iter().chain(&e[j..]) {
                if buf.last() != Some(&v) {
                    buf.push(v);
                }
            }
            buf
        }
    }
}

/// Emits one interval list's start/end boundary triggers.
fn push_boundaries(il: &IntervalList, key: KeyId, out: &mut Vec<(Timestamp, bool, KeyId)>) {
    for iv in il.intervals() {
        out.push((iv.since, false, key));
        if let Some(u) = iv.until {
            out.push((u, true, key));
        }
    }
}

/// Merges buffered derived emissions into the per-definition lists.
fn fold_emits<D: Clone>(
    t: Timestamp,
    emits: &[(usize, Vec<D>)],
    per_def: &mut [Vec<(Timestamp, D)>],
) {
    for (di, ds) in emits {
        per_def[*di].extend(ds.iter().map(|d| (t, d.clone())));
    }
}

/// Merges one derived entry's emissions into the per-definition lists.
fn fold_derived<K, D: Clone>(entry: &DerivedEntry<K, D>, per_def: &mut [Vec<(Timestamp, D)>]) {
    fold_emits(entry.t, &entry.emits, per_def);
}

/// Whether an entry need not be cached: no emissions and no probes means
/// the rules ran a pure function of the trigger alone, so the empty
/// outcome can be replayed implicitly forever.
fn point_entry_elidable<K>(e: &PointEntry<K>) -> bool {
    e.inits.is_empty() && e.terms.is_empty() && e.probes.is_empty()
}

/// [`point_entry_elidable`], for derived-phase entries.
fn derived_entry_elidable<K, D>(e: &DerivedEntry<K, D>) -> bool {
    e.emits.is_empty() && e.probes.is_empty()
}

/// Copies a borrowed trigger into an owned provenance trigger.
fn owned_trigger<E: Clone, K: Clone>(trigger: Trigger<'_, E, K>) -> ProvTrigger<E, K> {
    match trigger {
        Trigger::Input(e) => ProvTrigger::Input(e.clone()),
        Trigger::Start(k) => ProvTrigger::Start(k.clone()),
        Trigger::End(k) => ProvTrigger::End(k.clone()),
    }
}

/// Takes the probes one evaluation recorded, leaving the recorder empty
/// for the next run. Without memoisation the recorder is never written
/// and the default is free (six empty vectors, no allocation).
fn take_probes<K>(recorder: &RefCell<ProbeLog<K>>, want_cache: bool) -> ProbeLog<K> {
    if want_cache {
        std::mem::take(&mut *recorder.borrow_mut())
    } else {
        ProbeLog::default()
    }
}

/// Interns buffered rule emissions into a cacheable [`PointEntry`],
/// attaching the probes the evaluation recorded. The emissions arrive in
/// the rule's own `K` type: keeping the rule run (immutable table borrow,
/// the view reads it) separate from interning (mutable borrow) is what
/// splits the borrow on the hot path.
fn intern_entry<K: Clone + Eq + std::hash::Hash>(
    table: &mut KeyTable<K>,
    t: Timestamp,
    inits: &[K],
    terms: &[K],
    probes: ProbeLog<K>,
) -> PointEntry<K> {
    PointEntry {
        t,
        inits: inits.iter().map(|k| table.intern(k)).collect(),
        terms: terms.iter().map(|k| table.intern(k)).collect(),
        probes,
    }
}

/// Per-engine scratch state reused across queries: every map, list, and
/// buffer the evaluation loop needs, kept at its high-water capacity so
/// a warm engine answers a query without allocating. Cleared (not
/// shrunk) at the start of each evaluation.
struct EvalArena<K, D> {
    /// Emission buffer for one rule run's initiations, in the rule's own
    /// key type. Cleared and refilled by every `run_point_rules` call so
    /// the per-trigger hot path moves no freshly allocated vectors.
    raw_inits: Vec<K>,
    /// Emission buffer for one rule run's terminations.
    raw_terms: Vec<K>,
    /// Fluent intervals computed so far this query, all strata; drained
    /// into the caller's [`Recognition`] afterwards.
    computed: IdMap<IntervalList>,
    /// The checkpointed intervals, accumulated stratum by stratum, so
    /// recorded probes can be re-answered against the old state.
    old_computed: IdMap<IntervalList>,
    /// Keys whose interval list differs structurally from the checkpoint.
    changed: IdSet,
    /// start/end triggers: (timestamp, is_end, key), sorted that way
    /// (key order via the table).
    boundary: Vec<(Timestamp, bool, KeyId)>,
    /// Merge scratch for appending one stratum's boundaries.
    merge_buf: Vec<(Timestamp, bool, KeyId)>,
    /// One stratum's freshly emitted boundaries, pre-merge.
    new_bounds: Vec<(Timestamp, bool, KeyId)>,
    /// Per-query initiation points (probing entries, boundary triggers,
    /// cross-terminations) merged with the base maps on the fly.
    extra_inits: IdMap<Vec<Timestamp>>,
    /// Per-query termination points.
    extra_terms: IdMap<Vec<Timestamp>>,
    /// Keys whose base lists took mid-prefix points and need re-sorting.
    resort: Vec<KeyId>,
    /// Sorted key worklist of the stratum being built.
    keys: Vec<KeyId>,
    /// Merge buffer for initiation point lists.
    ibuf: Vec<Timestamp>,
    /// Merge buffer for termination point lists.
    tbuf: Vec<Timestamp>,
    /// Derived emissions per definition, definition-major; drained into
    /// the caller's [`Recognition`] afterwards.
    per_def: Vec<Vec<(Timestamp, D)>>,
    /// Emission buffer for one derived-rule run, definition-indexed.
    raw_emits: Vec<(usize, Vec<D>)>,
    /// Recycled interval storage: the previous query's result vectors,
    /// harvested on the next `recognize_into` and reused by
    /// `IntervalList::from_points_in` — steady state computes every
    /// fluent's intervals without touching the allocator.
    il_pool: Vec<Vec<Interval>>,
    /// Recycled checkpoint-snapshot maps: each stratum's old `fluents`
    /// map, emptied into `old_computed` during change detection, comes
    /// back here to hold the next checkpoint's snapshot — so assembling
    /// an incremental checkpoint is allocation-free too.
    il_maps: Vec<IdMap<IntervalList>>,
}

// Manual impl: the derive would demand `K: Default, D: Default` for no
// reason.
impl<K, D> Default for EvalArena<K, D> {
    fn default() -> Self {
        Self {
            raw_inits: Vec::new(),
            raw_terms: Vec::new(),
            computed: IdMap::default(),
            old_computed: IdMap::default(),
            changed: IdSet::default(),
            boundary: Vec::new(),
            merge_buf: Vec::new(),
            new_bounds: Vec::new(),
            extra_inits: IdMap::default(),
            extra_terms: IdMap::default(),
            resort: Vec::new(),
            keys: Vec::new(),
            ibuf: Vec::new(),
            tbuf: Vec::new(),
            per_def: Vec::new(),
            raw_emits: Vec::new(),
            il_pool: Vec::new(),
            il_maps: Vec::new(),
        }
    }
}

/// Everything one query evaluation produces besides the arena-held
/// fluents and derived events.
struct Evaluated<E, K, D> {
    provenance: Option<ProvenanceLog<E, K>>,
    cache: Option<EngineCache<K, D>>,
    triggers_evaluated: usize,
    triggers_reused: usize,
    /// Cached entries whose recorded probes were answered differently by
    /// the new window state, forcing a re-run (a subset of
    /// `triggers_evaluated`).
    invalidated: usize,
}

/// The RTEC engine: static knowledge + event description + working memory.
///
/// ```
/// use maritime_rtec::{
///     Duration, Engine, EventDescription, FluentDef, Interval, Timestamp, Trigger, WindowSpec,
/// };
///
/// // A one-fluent description: active(id) toggled by "on"/"off" events.
/// #[derive(Clone, PartialEq)]
/// enum Ev { On(u8), Off(u8) }
/// let description = EventDescription::<(), Ev, u8, ()>::new().fluent(
///     FluentDef::new("active")
///         .initiated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
///             Some(Ev::On(id)) => vec![*id],
///             _ => vec![],
///         })
///         .terminated(|_, _, trig: Trigger<'_, Ev, u8>, _| match trig.input() {
///             Some(Ev::Off(id)) => vec![*id],
///             _ => vec![],
///         }),
/// );
///
/// let spec = WindowSpec::new(Duration::hours(1), Duration::minutes(10)).unwrap();
/// let mut engine = Engine::new((), description, spec);
/// engine.add_events([(Timestamp(100), Ev::On(7)), (Timestamp(900), Ev::Off(7))]);
/// let r = engine.recognize_at(Timestamp(1_000));
/// assert_eq!(
///     r.fluents[&7].intervals(),
///     &[Interval::closed(Timestamp(100), Timestamp(900))]
/// );
/// ```
pub struct Engine<Ctx, E, K, D, G = ()> {
    ctx: Ctx,
    description: EventDescription<Ctx, E, K, D, G>,
    window: SlidingWindow<E>,
    last_query: Option<Timestamp>,
    strategy: EvalStrategy,
    provenance: bool,
    last_provenance: Option<ProvenanceLog<E, K>>,
    cache: Option<EngineCache<K, D>>,
    /// A late arrival landed at or before the checkpoint since the last
    /// query: the cached entries no longer mirror the working memory and
    /// the next query must recompute from scratch (Figure 5).
    stale: bool,
    stats: IncrementalStats,
    /// The fluent-key symbol table. Never reset: cached entries refer to
    /// keys by id across window slides.
    table: KeyTable<K>,
    /// Reusable per-query scratch state.
    arena: EvalArena<K, D>,
}

impl<Ctx, E, K, D, G> Engine<Ctx, E, K, D, G>
where
    E: Clone,
    K: Clone + Eq + std::hash::Hash + Ord,
    D: Clone,
    G: Eq + std::hash::Hash,
{
    /// Creates an engine over the given static knowledge and description.
    pub fn new(ctx: Ctx, description: EventDescription<Ctx, E, K, D, G>, spec: WindowSpec) -> Self {
        Self {
            ctx,
            description,
            window: SlidingWindow::new(spec),
            last_query: None,
            strategy: EvalStrategy::default(),
            provenance: false,
            last_provenance: None,
            cache: None,
            stale: false,
            stats: IncrementalStats::default(),
            table: KeyTable::default(),
            arena: EvalArena::default(),
        }
    }

    /// Selects the evaluation strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active evaluation strategy.
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// Enables rule-level provenance capture (builder style). See
    /// [`Engine::set_provenance`].
    #[must_use]
    pub fn with_provenance(mut self, on: bool) -> Self {
        self.provenance = on;
        self
    }

    /// Turns rule-level provenance capture on or off. While on, each
    /// query additionally records which rule fired on which trigger for
    /// every point and emission ([`Engine::take_provenance`]), and the
    /// engine evaluates from scratch: the incremental path replays
    /// checkpointed results without re-running rules, so there would be
    /// nothing to observe. Turning it off resumes incremental evaluation
    /// at the next query.
    pub fn set_provenance(&mut self, on: bool) {
        self.provenance = on;
        if !on {
            self.last_provenance = None;
        }
    }

    /// Whether provenance capture is on.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Takes the provenance log recorded by the most recent query, if
    /// capture was on.
    pub fn take_provenance(&mut self) -> Option<ProvenanceLog<E, K>> {
        self.last_provenance.take()
    }

    /// How queries have been evaluated so far (delta path vs. full
    /// recompute, rule evaluations run vs. replayed).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Number of distinct fluent keys interned so far (the engine's key
    /// universe — roughly vessels × areas in the maritime description).
    pub fn interned_keys(&self) -> usize {
        self.table.len()
    }

    /// The static knowledge.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Streams one input event into the working memory. Arrival order is
    /// free; the buffer keeps events sorted by timestamp.
    pub fn add_event(&mut self, t: Timestamp, event: E) {
        if self.cache.as_ref().is_some_and(|c| t <= c.checkpoint) {
            self.stale = true;
        }
        self.window.insert(t, event);
    }

    /// Streams a batch of events.
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, E)>) {
        for (t, e) in events {
            self.add_event(t, e);
        }
    }

    /// Serializes the engine's between-query state into a framed
    /// checkpoint (see [`crate::ckpt`]): the window spec and contents,
    /// the last query time, strategy, staleness flag, stats, the symbol
    /// table, and the incremental cache. The static knowledge and the
    /// event description are *not* serialized — the caller reconstructs
    /// them and passes them to [`Engine::restore`]. Provenance capture
    /// state is not checkpointed either (a restored engine starts with
    /// capture off); checkpoint while a trace query is outstanding and
    /// the pending log is dropped.
    ///
    /// A restored engine's subsequent output is byte-identical to the
    /// uninterrupted engine's: the window is a pure function of the
    /// re-inserted `(t, event)` sequence (equal-timestamp order is
    /// preserved by insertion order), interned ids are dense and
    /// re-interned in id order, and the cache either replays exactly or
    /// falls back to a full recompute whose output matches by the
    /// incremental-equivalence invariant.
    pub fn checkpoint(&self) -> Vec<u8>
    where
        E: crate::ckpt::Codec,
        K: crate::ckpt::Codec,
        D: crate::ckpt::Codec,
    {
        let mut w = crate::ckpt::Writer::new();
        self.checkpoint_into(&mut w);
        w.into_frame()
    }

    /// [`Engine::checkpoint`] without the frame: appends the raw payload
    /// to `w`, for callers embedding several engines in one frame.
    pub fn checkpoint_into(&self, w: &mut crate::ckpt::Writer)
    where
        E: crate::ckpt::Codec,
        K: crate::ckpt::Codec,
        D: crate::ckpt::Codec,
    {
        use crate::ckpt::Codec;
        self.window.spec().encode(w);
        w.put_len(self.window.len());
        for (t, e) in self.window.iter() {
            t.encode(w);
            e.encode(w);
        }
        self.last_query.encode(w);
        self.strategy.encode(w);
        w.put_bool(self.stale);
        self.stats.encode(w);
        w.put_len(self.table.len());
        for i in 0..self.table.len() {
            self.table.key(KeyId(i as u32)).encode(w);
        }
        self.cache.encode(w);
    }

    /// Rebuilds an engine from a framed checkpoint produced by
    /// [`Engine::checkpoint`]. `ctx` and `description` must match the
    /// ones the checkpointed engine was built with — the checkpoint
    /// carries neither.
    pub fn restore(
        ctx: Ctx,
        description: EventDescription<Ctx, E, K, D, G>,
        bytes: &[u8],
    ) -> Result<Self, crate::ckpt::CkptError>
    where
        E: crate::ckpt::Codec,
        K: crate::ckpt::Codec,
        D: crate::ckpt::Codec,
    {
        let payload = crate::ckpt::unframe(bytes)?;
        let mut r = crate::ckpt::Reader::new(payload);
        let engine = Self::restore_from(ctx, description, &mut r)?;
        r.finish()?;
        Ok(engine)
    }

    /// [`Engine::restore`] from an already-unframed payload position, for
    /// callers embedding several engines in one frame.
    pub fn restore_from(
        ctx: Ctx,
        description: EventDescription<Ctx, E, K, D, G>,
        r: &mut crate::ckpt::Reader<'_>,
    ) -> Result<Self, crate::ckpt::CkptError>
    where
        E: crate::ckpt::Codec,
        K: crate::ckpt::Codec,
        D: crate::ckpt::Codec,
    {
        use crate::ckpt::{CkptError, Codec};
        let spec = WindowSpec::decode(r)?;
        let mut engine = Self::new(ctx, description, spec);
        let n_events = r.take_len()?;
        for _ in 0..n_events {
            let t = Timestamp::decode(r)?;
            let e = E::decode(r)?;
            // Insertion order reproduces the saved order exactly,
            // including the relative order of equal timestamps.
            engine.window.insert(t, e);
        }
        engine.last_query = Option::<Timestamp>::decode(r)?;
        engine.strategy = EvalStrategy::decode(r)?;
        let stale = r.take_bool()?;
        engine.stats = IncrementalStats::decode(r)?;
        let n_keys = r.take_len()?;
        for i in 0..n_keys {
            let key = K::decode(r)?;
            let id = engine.table.intern(&key);
            if id != KeyId(i as u32) {
                return Err(CkptError::Corrupt("duplicate interned key"));
            }
        }
        engine.cache = Option::<EngineCache<K, D>>::decode(r)?;
        if let Some(cache) = &engine.cache {
            let valid = |id: &KeyId| (id.0 as usize) < n_keys;
            let cache_ok = cache.strata.iter().all(|s| {
                s.ev_inits.keys().all(valid)
                    && s.ev_terms.keys().all(valid)
                    && s.fluents.keys().all(valid)
                    && s.boundary.iter().all(|(_, id, _)| valid(id))
            }) && cache.derived_boundary.iter().all(|(_, id, _)| valid(id));
            if !cache_ok {
                return Err(CkptError::Corrupt("cache refers to unknown key id"));
            }
        }
        engine.stale = stale;
        Ok(engine)
    }

    /// Runs recognition at query time `q`: discards events at or before
    /// `q − ω`, then computes all fluents and derived events from the
    /// remaining working memory — from scratch, or by replaying the
    /// checkpointed evaluations when the incremental strategy is active
    /// and safe.
    pub fn recognize_at(&mut self, q: Timestamp) -> Recognition<K, D> {
        let mut out = Recognition::default();
        self.recognize_into(q, &mut out);
        out
    }

    /// [`Engine::recognize_at`], writing into a caller-owned result. The
    /// output's maps and vectors are cleared and refilled, so feeding the
    /// same `Recognition` back query after query reuses their capacity —
    /// a warm engine on a steady stream answers without allocating.
    pub fn recognize_into(&mut self, q: Timestamp, out: &mut Recognition<K, D>) {
        let _span = maritime_obs::span!(names::RTEC_QUERY_NS);
        self.window.slide_to_discarding(q);
        self.last_query = Some(q);

        // A tumbling window (β = ω) evicts the entire snapshot at every
        // slide: there is no prefix to reuse, so memoising would be pure
        // overhead.
        let spec = self.window.spec();
        // Provenance capture needs every rule to actually run, which the
        // cache-replay path specifically avoids — trace queries evaluate
        // from scratch and leave no checkpoint behind.
        let want_cache = self.strategy == EvalStrategy::Incremental
            && spec.slide < spec.range
            && !self.provenance;
        let use_cache =
            want_cache && !self.stale && self.cache.as_ref().is_some_and(|c| c.checkpoint <= q);
        // Always detach the cache, even when unusable: a query must not
        // leave a checkpoint behind that does not describe its outcome.
        let cache = self.cache.take().filter(|_| use_cache);

        // Detach the window, symbol table, and arena so `evaluate` can
        // borrow the rules (`&self`) alongside them. Restored below; the
        // placeholder window allocates nothing.
        let mut window = std::mem::replace(&mut self.window, SlidingWindow::new(spec));
        let mut table = std::mem::take(&mut self.table);
        let mut arena = std::mem::take(&mut self.arena);

        // Recycle the previous result's interval storage (the caller's
        // buffers are cleared before refilling below anyway): steady-state
        // queries rebuild every fluent's intervals allocation-free.
        for (_, il) in out.fluents.drain() {
            arena.il_pool.push(il.into_storage());
        }

        // Working-memory snapshot, time-ordered and zero-copy: only
        // events inside (q - ω, q]. Events with later timestamps may
        // already sit in the buffer (batch pre-loading, out-of-order
        // delivery) but have not "happened" yet at this query time and
        // must not participate.
        let events_all = window.contiguous();
        let working_memory = events_all.partition_point(|(t, _)| *t <= q);
        let evaluated = self.evaluate(
            q,
            &events_all[..working_memory],
            cache,
            want_cache,
            &mut table,
            &mut arena,
        );
        self.window = window;

        OBS_QUERIES.inc();
        if use_cache {
            self.stats.incremental += 1;
            OBS_QUERIES_INCREMENTAL.inc();
        } else {
            self.stats.full += 1;
        }
        self.stats.triggers_evaluated += evaluated.triggers_evaluated;
        self.stats.triggers_reused += evaluated.triggers_reused;
        OBS_RULE_EVALS.add(evaluated.triggers_evaluated as u64);
        OBS_CACHE_REPLAYS.add(evaluated.triggers_reused as u64);
        OBS_CACHE_INVALIDATIONS.add(evaluated.invalidated as u64);
        OBS_WORKING_MEMORY.set(working_memory as i64);
        OBS_INTERNED_KEYS.set(table.len() as i64);
        self.stale = false;
        self.cache = evaluated.cache;
        self.last_provenance = evaluated.provenance;

        // Materialise the id-addressed results into the caller's buffers.
        out.query_time = q;
        out.working_memory = working_memory;
        out.fluents.clear();
        out.fluents.reserve(arena.computed.len());
        for (id, il) in arena.computed.drain() {
            out.fluents.insert(table.key(id).clone(), il);
        }
        out.events.clear();
        for emitted in &mut arena.per_def {
            out.events.append(emitted);
        }
        // Stable: emissions at the same timestamp keep definition order,
        // exactly as the per-definition full pass yields them.
        out.events.sort_by_key(|(t, _)| *t);

        self.table = table;
        self.arena = arena;
    }

    /// Runs one stratum's point rules for one trigger, filling the
    /// caller's emission buffers (in the rule's own key type — the caller
    /// interns them). Probes, when memoising, accumulate in the sinks'
    /// recorder for the caller to take; nothing is returned by value, so
    /// the per-trigger hot path moves no structs.
    #[allow(clippy::too_many_arguments)]
    fn run_point_rules(
        &self,
        stratum: &FluentDef<Ctx, E, K, G>,
        table: &KeyTable<K>,
        fluents: &IdMap<IntervalList>,
        sinks: &EvalSinks<'_, E, K>,
        trigger: Trigger<'_, E, K>,
        t: Timestamp,
        inits: &mut Vec<K>,
        terms: &mut Vec<K>,
    ) {
        let EvalSinks { recorder, want_cache, prov } = *sinks;
        let view = View::interned(table, fluents, want_cache.then_some(recorder));
        inits.clear();
        terms.clear();
        for (ri, rule) in stratum.initiated_at.iter().enumerate() {
            if !rule.on.admits(&trigger) {
                continue;
            }
            let out = (rule.run)(&self.ctx, &view, trigger, t);
            if let Some(prov) = prov.filter(|_| !out.is_empty()) {
                let rule = RuleRef { name: stratum.name, kind: RuleKind::Initiated, index: ri };
                let mut log = prov.borrow_mut();
                for k in &out {
                    log.note_point(k.clone(), t, rule, owned_trigger(trigger));
                }
            }
            inits.extend(out);
        }
        for (ri, rule) in stratum.terminated_at.iter().enumerate() {
            if !rule.on.admits(&trigger) {
                continue;
            }
            let out = (rule.run)(&self.ctx, &view, trigger, t);
            if let Some(prov) = prov.filter(|_| !out.is_empty()) {
                let rule = RuleRef { name: stratum.name, kind: RuleKind::Terminated, index: ri };
                let mut log = prov.borrow_mut();
                for k in &out {
                    log.note_point(k.clone(), t, rule, owned_trigger(trigger));
                }
            }
            terms.extend(out);
        }
    }

    /// Runs every derived-event definition for one trigger, filling the
    /// caller's definition-indexed emission buffer. Probes, when
    /// memoising, accumulate in the sinks' recorder for the caller to
    /// take.
    fn run_derived_rules(
        &self,
        table: &KeyTable<K>,
        fluents: &IdMap<IntervalList>,
        sinks: &EvalSinks<'_, E, K>,
        trigger: Trigger<'_, E, K>,
        t: Timestamp,
        emits: &mut Vec<(usize, Vec<D>)>,
    ) {
        let EvalSinks { recorder, want_cache, prov } = *sinks;
        let view = View::interned(table, fluents, want_cache.then_some(recorder));
        emits.clear();
        for (di, def) in self.description.events.iter().enumerate() {
            let mut out: Vec<D> = Vec::new();
            for (ri, rule) in def.rules.iter().enumerate() {
                if !rule.on.admits(&trigger) {
                    continue;
                }
                let emitted = (rule.run)(&self.ctx, &view, trigger, t);
                if let Some(prov) = prov.filter(|_| !emitted.is_empty()) {
                    let rule = RuleRef { name: def.name, kind: RuleKind::Emitted, index: ri };
                    prov.borrow_mut()
                        .note_emission(t, emitted.len(), rule, owned_trigger(trigger));
                }
                out.extend(emitted);
            }
            if !out.is_empty() {
                emits.push((di, out));
            }
        }
    }

    /// One query evaluation over the window snapshot `events`. With
    /// `cache` present, retained triggers replay their memoised entries
    /// unless a probed fluent changed; without it, every trigger runs
    /// from scratch. `want_cache` controls whether a new checkpoint is
    /// assembled for the next query. Results land in `arena` (fluents in
    /// `computed`, derived events in `per_def`), addressed by the ids of
    /// `table`.
    fn evaluate(
        &self,
        q: Timestamp,
        events: &[(Timestamp, E)],
        cache: Option<EngineCache<K, D>>,
        want_cache: bool,
        table: &mut KeyTable<K>,
        arena: &mut EvalArena<K, D>,
    ) -> Evaluated<E, K, D> {
        // The new window start: slide_to has evicted events at t ≤ cutoff,
        // so cached entries in that region are dropped — which retracts
        // their initiation/termination points, exactly the truncation the
        // rebuild needs.
        let cutoff = q - self.window.spec().range;
        let (checkpoint, old_snapshot_len, mut strata_vec, old_derived_events, old_derived_boundary) =
            match cache {
                Some(c) => (
                    Some(c.checkpoint),
                    c.snapshot_len,
                    c.strata,
                    c.derived_events,
                    c.derived_boundary,
                ),
                None => (None, 0, Vec::new(), Vec::new(), Vec::new()),
            };
        // First event past the checkpoint: everything before it was part
        // of the previous snapshot too (no late arrivals — `stale` guards
        // that), so cached snapshot indices map onto it by a uniform
        // shift of `evicted` positions.
        let delta_from = checkpoint.map_or(0, |cp| events.partition_point(|(t, _)| *t <= cp));
        debug_assert!(delta_from <= old_snapshot_len || checkpoint.is_none());
        let evicted = old_snapshot_len.saturating_sub(delta_from);

        let EvalArena {
            raw_inits,
            raw_terms,
            computed,
            old_computed,
            changed,
            boundary,
            merge_buf,
            new_bounds,
            extra_inits,
            extra_terms,
            resort,
            keys,
            ibuf,
            tbuf,
            per_def,
            raw_emits,
            il_pool,
            il_maps,
        } = arena;
        computed.clear();
        // The previous checkpoint's snapshot lists are dead now — their
        // storage feeds this query's interval building.
        for (_, il) in old_computed.drain() {
            il_pool.push(il.into_storage());
        }
        changed.clear();
        boundary.clear();
        merge_buf.clear();

        let recorder = RefCell::new(ProbeLog::default());
        // Rule-firing collector for traced queries. `None` keeps the
        // untraced path free of any per-rule bookkeeping.
        let prov_cell = self.provenance.then(|| {
            RefCell::new(ProvenanceLog {
                query_time: q,
                ..Default::default()
            })
        });
        let prov = prov_cell.as_ref();
        let sinks = EvalSinks { recorder: &recorder, want_cache, prov };
        let mut n_evaluated = 0usize;
        let mut n_reused = 0usize;
        let mut n_invalidated = 0usize;

        for (si, stratum) in self.description.fluents.iter().enumerate() {
            // Union of the stratum's declared trigger masks: a kind no
            // rule admits can skip its whole evaluation pass — the rules
            // contract to emit and probe nothing for it, so the skipped
            // pass is observationally an all-empty, elidable run.
            let smask = stratum.trigger_kinds();
            let StratumCache {
                ev_inits: mut base_inits,
                ev_terms: mut base_terms,
                events: old_events,
                boundary: old_boundary,
                fluents: mut old_fluents,
            } = strata_vec.get_mut(si).map(std::mem::take).unwrap_or_default();

            // Evict checkpointed base points at or before the new window
            // start — their events just left the window, and this is the
            // retraction of intervals that straddled it. Emptied keys are
            // dropped so the key set matches a from-scratch pass.
            for m in [&mut base_inits, &mut base_terms] {
                m.retain(|_, v| {
                    let n = v.partition_point(|p| *p <= cutoff);
                    if n > 0 {
                        v.drain(..n);
                    }
                    !v.is_empty()
                });
            }

            // Emissions that must be re-merged every query: probing event
            // entries, boundary triggers, rule-(2) cross-terminations.
            extra_inits.clear();
            extra_terms.clear();

            // Input-event triggers. Only *probing* evaluations are kept as
            // entries (replayed, or re-run when a probe was invalidated);
            // non-probing emissions live in the base maps, which the
            // eviction above has already brought up to date — the whole
            // retained prefix replays with no per-trigger work at all.
            // The delta past the checkpoint always runs.
            let mut sparse_events: Vec<(usize, PointEntry<K>)> = Vec::new();
            resort.clear();
            for (idx, entry) in old_events {
                if idx < evicted {
                    debug_assert!(entry.t <= cutoff, "evicted entry after cutoff");
                    continue;
                }
                let new_idx = idx - evicted;
                debug_assert!(new_idx < delta_from, "cached entry past the checkpoint");
                debug_assert_eq!(events[new_idx].0, entry.t, "cached entry misaligned");
                let entry = if probes_affected(&entry.probes, changed, old_computed, computed, table)
                {
                    n_evaluated += 1;
                    n_invalidated += 1;
                    self.run_point_rules(
                        stratum,
                        table,
                        computed,
                        &sinks,
                        Trigger::Input(&events[new_idx].1),
                        entry.t,
                        raw_inits,
                        raw_terms,
                    );
                    let probes = take_probes(&recorder, want_cache);
                    intern_entry(table, entry.t, raw_inits, raw_terms, probes)
                } else {
                    n_reused += 1;
                    entry
                };
                if entry.probes.is_empty() {
                    // The re-run stopped consulting the view: migrate into
                    // the base maps. The points land mid-prefix, so the
                    // touched keys need a re-sort below.
                    for k in entry.inits {
                        resort.push(k);
                        base_inits.entry(k).or_default().push(entry.t);
                    }
                    for k in entry.terms {
                        resort.push(k);
                        base_terms.entry(k).or_default().push(entry.t);
                    }
                } else {
                    fold_points(&entry, extra_inits, extra_terms);
                    sparse_events.push((new_idx, entry));
                }
            }
            // A stratum with no input-admitting rule skips the event pass.
            let delta_skip =
                if smask.intersects(TriggerKinds::INPUT) { delta_from } else { events.len() };
            for (i, (t, ev)) in events.iter().enumerate().skip(delta_skip) {
                let t = *t;
                n_evaluated += 1;
                self.run_point_rules(
                    stratum,
                    table,
                    computed,
                    &sinks,
                    Trigger::Input(ev),
                    t,
                    raw_inits,
                    raw_terms,
                );
                if !want_cache || recorder.borrow().is_empty() {
                    // Appends arrive in time order; skipping a same-time
                    // duplicate keeps the lists canonical. Interning here
                    // is the hot path: one u64 hash per emitted key.
                    for k in raw_inits.iter() {
                        let v = base_inits.entry(table.intern(k)).or_default();
                        if v.last() != Some(&t) {
                            v.push(t);
                        }
                    }
                    for k in raw_terms.iter() {
                        let v = base_terms.entry(table.intern(k)).or_default();
                        if v.last() != Some(&t) {
                            v.push(t);
                        }
                    }
                } else {
                    let probes = take_probes(&recorder, want_cache);
                    let entry = intern_entry(table, t, raw_inits, raw_terms, probes);
                    fold_points(&entry, extra_inits, extra_terms);
                    sparse_events.push((i, entry));
                }
            }
            for k in resort.drain(..) {
                if let Some(v) = base_inits.get_mut(&k) {
                    v.sort_unstable();
                    v.dedup();
                }
                if let Some(v) = base_terms.get_mut(&k) {
                    v.sort_unstable();
                    v.dedup();
                }
            }

            // Boundary triggers of the strata below, matched by identity
            // (t, is_end, key) against the freshly rebuilt boundary list —
            // id equality is key equality, so no key materialisation is
            // needed for the match. A miss on a changed key means the
            // boundary is new or moved (straddled eviction, a delta
            // termination splitting an interval, …) and is evaluated; a
            // miss on an unchanged key means the boundary existed
            // identically at the checkpoint with a stable empty outcome,
            // which replays implicitly.
            let mut boundary_entries: Vec<(bool, KeyId, PointEntry<K>)> = Vec::new();
            let mut old_bounds = old_boundary.into_iter().peekable();
            // Boundary kinds no rule admits are skipped outright; a rule
            // masked to only one kind (e.g. `initiated_on(START, …)`)
            // still gets the other kind filtered inside run_point_rules.
            let bound_iter = if smask.intersects(TriggerKinds::BOUNDARY) {
                boundary.iter()
            } else {
                [].iter()
            };
            for &(t, is_end, key) in bound_iter {
                let kind = if is_end { TriggerKinds::END } else { TriggerKinds::START };
                if !smask.intersects(kind) {
                    continue;
                }
                // Cached entries sorting before this boundary belong to
                // boundaries that no longer exist: drop them. The order is
                // the boundary list's (t, is_end, key-order) — resolved
                // through the table, since ids order by interning.
                while old_bounds
                    .peek()
                    .is_some_and(|(oe, ok, e)| (e.t, *oe, table.key(*ok)) < (t, is_end, table.key(key)))
                {
                    old_bounds.next();
                }
                let hit = old_bounds
                    .peek()
                    .is_some_and(|(oe, ok, e)| e.t == t && *oe == is_end && *ok == key);
                let entry = if hit {
                    let (_, _, e) = old_bounds.next().expect("peeked above");
                    if probes_affected(&e.probes, changed, old_computed, computed, table) {
                        n_evaluated += 1;
                        n_invalidated += 1;
                        self.run_point_rules(
                            stratum,
                            table,
                            computed,
                            &sinks,
                            boundary_trigger(is_end, table.key(key)),
                            t,
                            raw_inits,
                            raw_terms,
                        );
                        let probes = take_probes(&recorder, want_cache);
                        intern_entry(table, t, raw_inits, raw_terms, probes)
                    } else {
                        n_reused += 1;
                        e
                    }
                } else if checkpoint.is_none() || changed.contains(&key) {
                    n_evaluated += 1;
                    self.run_point_rules(
                        stratum,
                        table,
                        computed,
                        &sinks,
                        boundary_trigger(is_end, table.key(key)),
                        t,
                        raw_inits,
                        raw_terms,
                    );
                    let probes = take_probes(&recorder, want_cache);
                    intern_entry(table, t, raw_inits, raw_terms, probes)
                } else {
                    continue;
                };
                fold_points(&entry, extra_inits, extra_terms);
                if want_cache && !point_entry_elidable(&entry) {
                    boundary_entries.push((is_end, key, entry));
                }
            }

            // Canonicalize the per-query points; the base maps are already
            // sorted and deduplicated.
            for points in extra_inits.values_mut().chain(extra_terms.values_mut()) {
                points.sort_unstable();
                points.dedup();
            }

            // Build maximal intervals per key and emit boundary triggers.
            // The snapshot map comes from the recycling pool: warm engines
            // checkpoint into retained capacity.
            let mut stratum_fluents: IdMap<IntervalList> =
                il_maps.pop().unwrap_or_default();
            new_bounds.clear();
            keys.clear();
            if let Some(group_fn) = &stratum.group {
                // Grouped stratum: rule (2) — initiating one value of a
                // grouped fluent instance terminates every other value of
                // the same instance — needs the fully merged initiations,
                // and is always recomputed because group membership can
                // grow when the delta initiates a new value. Grouped
                // strata are rare, so materialising the merged maps (a
                // clone of the base) is acceptable.
                let mut initiations = base_inits.clone();
                for (k, v) in extra_inits.iter() {
                    initiations.entry(*k).or_default().extend(v.iter().copied());
                }
                let mut terminations = base_terms.clone();
                for (k, v) in extra_terms.iter() {
                    terminations.entry(*k).or_default().extend(v.iter().copied());
                }
                for points in initiations.values_mut().chain(terminations.values_mut()) {
                    points.sort_unstable();
                    points.dedup();
                }
                let mut groups: HashMap<G, Vec<KeyId>, FxBuildHasher> = HashMap::default();
                for key in initiations.keys() {
                    groups.entry(group_fn(table.key(*key))).or_default().push(*key);
                }
                let mut cross: Vec<(KeyId, Timestamp, KeyId)> = Vec::new();
                for members in groups.values() {
                    if members.len() < 2 {
                        continue;
                    }
                    for &initiator in members {
                        for &t in &initiations[&initiator] {
                            for &other in members {
                                if other != initiator {
                                    cross.push((other, t, initiator));
                                }
                            }
                        }
                    }
                }
                for (key, t, initiator) in cross {
                    if let Some(prov) = prov {
                        // Rule (2) is built in, not declared, so it gets a
                        // synthetic rule ref; the trigger names the group
                        // sibling whose initiation forced this termination.
                        prov.borrow_mut().note_point(
                            table.key(key).clone(),
                            t,
                            RuleRef {
                                name: stratum.name,
                                kind: RuleKind::CrossTerminated,
                                index: 0,
                            },
                            ProvTrigger::Start(table.key(initiator).clone()),
                        );
                    }
                    terminations.entry(key).or_default().push(t);
                }
                keys.extend(initiations.keys().copied());
                keys.sort_unstable_by(|a, b| table.key(*a).cmp(table.key(*b)));
                for &key in keys.iter() {
                    let inits = initiations.remove(&key).unwrap_or_default();
                    let mut terms = terminations.remove(&key).unwrap_or_default();
                    terms.sort_unstable();
                    terms.dedup();
                    let il = IntervalList::from_points_in(
                        il_pool.pop().unwrap_or_default(),
                        &inits,
                        &terms,
                        None,
                    );
                    push_boundaries(&il, key, new_bounds);
                    if want_cache {
                        stratum_fluents
                            .insert(key, il.clone_in(il_pool.pop().unwrap_or_default()));
                    }
                    computed.insert(key, il);
                }
            } else {
                // Ungrouped stratum: per key, the final point lists are
                // the union of the (already canonical) base list and the
                // small per-query extra list — merged on the fly into a
                // reusable buffer, with no materialised merged maps.
                keys.extend(base_inits.keys().copied());
                keys.extend(extra_inits.keys().copied());
                keys.sort_unstable_by(|a, b| table.key(*a).cmp(table.key(*b)));
                keys.dedup();
                for &key in keys.iter() {
                    let il = {
                        let inits = merged_slice(&base_inits, extra_inits, key, ibuf);
                        let terms = merged_slice(&base_terms, extra_terms, key, tbuf);
                        IntervalList::from_points_in(
                            il_pool.pop().unwrap_or_default(),
                            inits,
                            terms,
                            None,
                        )
                    };
                    push_boundaries(&il, key, new_bounds);
                    if want_cache {
                        stratum_fluents
                            .insert(key, il.clone_in(il_pool.pop().unwrap_or_default()));
                    }
                    computed.insert(key, il);
                }
            }
            new_bounds.sort_unstable_by(|a, b| {
                (a.0, a.1)
                    .cmp(&(b.0, b.1))
                    .then_with(|| table.key(a.2).cmp(table.key(b.2)))
            });
            if boundary.is_empty() {
                std::mem::swap(boundary, new_bounds);
            } else if !new_bounds.is_empty() {
                merge_boundaries_into(boundary, new_bounds, merge_buf, table);
                std::mem::swap(boundary, merge_buf);
            }

            // Change detection for the strata above: any structural
            // difference from the checkpointed list makes the key
            // "changed" — probes into it are then re-checked exactly.
            if checkpoint.is_some() {
                for (k, il) in &stratum_fluents {
                    if old_fluents.get(k) != Some(il) {
                        changed.insert(*k);
                    }
                }
                for k in old_fluents.keys() {
                    if !stratum_fluents.contains_key(k) {
                        changed.insert(*k);
                    }
                }
            }
            old_computed.extend(old_fluents.drain());
            il_maps.push(old_fluents);

            if want_cache {
                let sc = StratumCache {
                    ev_inits: base_inits,
                    ev_terms: base_terms,
                    events: sparse_events,
                    boundary: boundary_entries,
                    fluents: stratum_fluents,
                };
                // Write back in place: the strata vector is reused across
                // queries, so a steady-state engine never regrows it.
                if si < strata_vec.len() {
                    strata_vec[si] = sc;
                } else {
                    strata_vec.push(sc);
                }
            } else {
                // No checkpoint wanted: the (empty) snapshot map goes
                // straight back to the pool.
                il_maps.push(stratum_fluents);
            }
        }

        // Derived events: same replay-or-run treatment per trigger, then
        // the emissions are re-concatenated definition-major and stably
        // sorted by time — reproducing the from-scratch order exactly
        // (within one definition, same-time input-event emissions precede
        // boundary ones, the chronology tie rule). The fold lands in the
        // arena's per-definition lists; the caller flattens and sorts.
        per_def.iter_mut().for_each(Vec::clear);
        per_def.resize_with(self.description.events.len(), Vec::new);
        let (derived_events, derived_boundary) = if self.description.events.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            // Emissions are folded per definition as the triggers are
            // walked: retained + delta events in snapshot order first,
            // then every boundary in list order — so the final stable
            // sort by time reproduces the from-scratch order exactly.
            let mut derived_events: Vec<(usize, DerivedEntry<K, D>)> = Vec::new();
            for (idx, entry) in old_derived_events {
                if idx < evicted {
                    debug_assert!(entry.t <= cutoff, "evicted entry after cutoff");
                    continue;
                }
                let new_idx = idx - evicted;
                debug_assert!(new_idx < delta_from, "cached entry past the checkpoint");
                debug_assert_eq!(events[new_idx].0, entry.t, "cached entry misaligned");
                let entry = if probes_affected(&entry.probes, changed, old_computed, computed, table)
                {
                    n_evaluated += 1;
                    n_invalidated += 1;
                    self.run_derived_rules(
                        table,
                        computed,
                        &sinks,
                        Trigger::Input(&events[new_idx].1),
                        entry.t,
                        raw_emits,
                    );
                    let probes = take_probes(&recorder, want_cache);
                    DerivedEntry { t: entry.t, emits: std::mem::take(raw_emits), probes }
                } else {
                    n_reused += 1;
                    entry
                };
                fold_derived(&entry, per_def);
                if want_cache && !derived_entry_elidable(&entry) {
                    derived_events.push((new_idx, entry));
                }
            }
            // Trigger kinds no derived rule admits skip the whole pass,
            // mirroring the per-stratum gating above.
            let dmask = self
                .description
                .events
                .iter()
                .fold(TriggerKinds::NONE, |acc, d| acc.union(d.trigger_kinds()));
            let delta_skip =
                if dmask.intersects(TriggerKinds::INPUT) { delta_from } else { events.len() };
            for (i, (t, ev)) in events.iter().enumerate().skip(delta_skip) {
                n_evaluated += 1;
                self.run_derived_rules(
                    table,
                    computed,
                    &sinks,
                    Trigger::Input(ev),
                    *t,
                    raw_emits,
                );
                fold_emits(*t, raw_emits, per_def);
                if want_cache {
                    let probes = take_probes(&recorder, true);
                    if !(raw_emits.is_empty() && probes.is_empty()) {
                        let emits = std::mem::take(raw_emits);
                        derived_events.push((i, DerivedEntry { t: *t, emits, probes }));
                    }
                }
            }

            let mut derived_boundary: Vec<(bool, KeyId, DerivedEntry<K, D>)> = Vec::new();
            let mut old_bounds = old_derived_boundary.into_iter().peekable();
            let bound_iter = if dmask.intersects(TriggerKinds::BOUNDARY) {
                boundary.iter()
            } else {
                [].iter()
            };
            for &(t, is_end, key) in bound_iter {
                let kind = if is_end { TriggerKinds::END } else { TriggerKinds::START };
                if !dmask.intersects(kind) {
                    continue;
                }
                while old_bounds
                    .peek()
                    .is_some_and(|(oe, ok, e)| (e.t, *oe, table.key(*ok)) < (t, is_end, table.key(key)))
                {
                    old_bounds.next();
                }
                let hit = old_bounds
                    .peek()
                    .is_some_and(|(oe, ok, e)| e.t == t && *oe == is_end && *ok == key);
                let entry = if hit {
                    let (_, _, e) = old_bounds.next().expect("peeked above");
                    if probes_affected(&e.probes, changed, old_computed, computed, table) {
                        n_evaluated += 1;
                        n_invalidated += 1;
                        self.run_derived_rules(
                            table,
                            computed,
                            &sinks,
                            boundary_trigger(is_end, table.key(key)),
                            t,
                            raw_emits,
                        );
                        let probes = take_probes(&recorder, want_cache);
                        DerivedEntry { t, emits: std::mem::take(raw_emits), probes }
                    } else {
                        n_reused += 1;
                        e
                    }
                } else if checkpoint.is_none() || changed.contains(&key) {
                    n_evaluated += 1;
                    self.run_derived_rules(
                        table,
                        computed,
                        &sinks,
                        boundary_trigger(is_end, table.key(key)),
                        t,
                        raw_emits,
                    );
                    let probes = take_probes(&recorder, want_cache);
                    DerivedEntry { t, emits: std::mem::take(raw_emits), probes }
                } else {
                    continue;
                };
                fold_derived(&entry, per_def);
                if want_cache && !derived_entry_elidable(&entry) {
                    derived_boundary.push((is_end, key, entry));
                }
            }
            (derived_events, derived_boundary)
        };

        let new_cache = want_cache.then(|| EngineCache {
            checkpoint: q,
            snapshot_len: events.len(),
            strata: std::mem::take(&mut strata_vec),
            derived_events,
            derived_boundary,
        });
        Evaluated {
            provenance: prov_cell.map(RefCell::into_inner),
            cache: new_cache,
            triggers_evaluated: n_evaluated,
            triggers_reused: n_reused,
            invalidated: n_invalidated,
        }
    }

    /// Runs recognition at every query time of the window spec between
    /// `origin` and `until`, returning one [`Recognition`] per query.
    pub fn recognize_stream(
        &mut self,
        origin: Timestamp,
        until: Timestamp,
    ) -> Vec<Recognition<K, D>> {
        let spec = self.window.spec();
        spec.query_times(origin, until)
            .into_iter()
            .map(|q| self.recognize_at(q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{DerivedEventDef, FluentDef};
    use crate::intervals::Interval;
    use maritime_stream::Duration;

    /// Toy domain: a machine emits `on(id)` / `off(id)` / `ping(id)`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Ev {
        On(u32),
        Off(u32),
        SetMode(u32, &'static str),
    }

    /// Fluent keys: active(id)=true, mode(id)=value.
    #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
    enum Key {
        Active(u32),
        Mode(u32, &'static str),
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Out {
        Activated(u32),
        AllQuiet(u32),
        Started(Key),
    }

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn spec(range: i64, slide: i64) -> WindowSpec {
        WindowSpec::new(Duration::secs(range), Duration::secs(slide)).unwrap()
    }

    fn active_fluent() -> FluentDef<(), Ev, Key, u32> {
        FluentDef::new("active")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::On(id)) => vec![Key::Active(*id)],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::Off(id)) => vec![Key::Active(*id)],
                _ => vec![],
            })
    }

    fn description() -> EventDescription<(), Ev, Key, Out, u32> {
        EventDescription::new().fluent(active_fluent())
    }

    #[test]
    fn simple_fluent_intervals() {
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::On(1)),
            (t(50), Ev::Off(1)),
            (t(70), Ev::On(1)),
        ]);
        let r = engine.recognize_at(t(100));
        let il = &r.fluents[&Key::Active(1)];
        assert_eq!(
            il.intervals(),
            &[Interval::closed(t(10), t(50)), Interval::open(t(70))]
        );
        assert_eq!(r.working_memory, 3);
    }

    #[test]
    fn inertia_carries_value_between_events() {
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_event(t(10), Ev::On(1));
        let r = engine.recognize_at(t(500));
        assert!(r.fluents[&Key::Active(1)].holds_at(t(499)));
    }

    #[test]
    fn window_discards_old_events() {
        let mut engine = Engine::new((), description(), spec(100, 50));
        engine.add_event(t(10), Ev::On(1));
        // At q=200 the On event (t=10 <= 200-100) is gone: no intervals.
        let r = engine.recognize_at(t(200));
        assert!(!r.fluents.contains_key(&Key::Active(1)));
        assert_eq!(r.working_memory, 0);
    }

    #[test]
    fn delayed_events_incorporated_at_next_query() {
        let mut engine = Engine::new((), description(), spec(200, 50));
        engine.add_event(t(10), Ev::On(1));
        let r1 = engine.recognize_at(t(50));
        assert_eq!(r1.fluents[&Key::Active(1)].intervals(), &[Interval::open(t(10))]);
        // The Off at t=40 arrives late, after Q=50 but within the window.
        engine.add_event(t(40), Ev::Off(1));
        let r2 = engine.recognize_at(t(100));
        assert_eq!(
            r2.fluents[&Key::Active(1)].intervals(),
            &[Interval::closed(t(10), t(40))]
        );
    }

    #[test]
    fn multivalue_fluent_rule_2_cross_termination() {
        // mode(id) = v: initiating one value terminates the others.
        let mode = FluentDef::new("mode")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, m)],
                _ => vec![],
            })
            .grouped(|k: &Key| match k {
                Key::Mode(id, _) => *id,
                Key::Active(id) => *id,
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> =
            EventDescription::new().fluent(mode);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::SetMode(1, "eco")),
            (t(60), Ev::SetMode(1, "boost")),
        ]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.fluents[&Key::Mode(1, "eco")].intervals(),
            &[Interval::closed(t(10), t(60))]
        );
        assert_eq!(
            r.fluents[&Key::Mode(1, "boost")].intervals(),
            &[Interval::open(t(60))]
        );
        // Never two values at once.
        for probe in [15, 60, 70, 99] {
            let eco = r.fluents[&Key::Mode(1, "eco")].holds_at(t(probe));
            let boost = r.fluents[&Key::Mode(1, "boost")].holds_at(t(probe));
            assert!(!(eco && boost), "both values hold at {probe}");
        }
    }

    #[test]
    fn stratified_fluent_triggered_by_start_of_lower_stratum() {
        // alarm(id) = true from the moment active(id) starts, terminated
        // when active(id) ends. Uses the built-in start/end triggers.
        let alarm = FluentDef::new("alarm")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.ended() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> =
            EventDescription::new().fluent(active_fluent()).fluent(alarm);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([(t(10), Ev::On(7)), (t(80), Ev::Off(7))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.fluents[&Key::Mode(7, "alarm")].intervals(),
            &[Interval::closed(t(10), t(80))]
        );
    }

    #[test]
    fn derived_events_fire_on_triggers() {
        let activated = DerivedEventDef::new("activated")
            .rule(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Out::Activated(*id)],
                _ => vec![],
            });
        let quiet = DerivedEventDef::new("all_quiet")
            .rule(|_, view: &View<'_, Key>, trig: Trigger<'_, Ev, Key>, t| {
                match trig.ended() {
                    Some(Key::Active(id))
                        if view.count_holding_at(
                            t + Duration::secs(1),
                            |k| matches!(k, Key::Active(_)),
                        ) == 0 =>
                    {
                        vec![Out::AllQuiet(*id)]
                    }
                    _ => vec![],
                }
            });
        let desc = EventDescription::new()
            .fluent(active_fluent())
            .event(activated)
            .event(quiet);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([
            (t(10), Ev::On(1)),
            (t(20), Ev::On(2)),
            (t(50), Ev::Off(1)),
            (t(90), Ev::Off(2)),
        ]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.events,
            vec![
                (t(10), Out::Activated(1)),
                (t(20), Out::Activated(2)),
                (t(90), Out::AllQuiet(2)),
            ]
        );
    }

    #[test]
    fn future_events_do_not_participate() {
        // Events pre-loaded with timestamps after the query time have not
        // happened yet: recognition at q must ignore them entirely.
        let mut engine = Engine::new((), description(), spec(1_000, 100));
        engine.add_events([(t(10), Ev::On(1)), (t(500), Ev::Off(1))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(r.working_memory, 1);
        assert_eq!(
            r.fluents[&Key::Active(1)].intervals(),
            &[Interval::open(t(10))],
            "the future Off must not close the interval yet"
        );
        // Once the query time passes the Off, it takes effect.
        let r = engine.recognize_at(t(600));
        assert_eq!(
            r.fluents[&Key::Active(1)].intervals(),
            &[Interval::closed(t(10), t(500))]
        );
    }

    #[test]
    fn recognize_stream_runs_every_query_time() {
        let mut engine = Engine::new((), description(), spec(100, 50));
        engine.add_events([(t(10), Ev::On(1)), (t(120), Ev::Off(1))]);
        let rs = engine.recognize_stream(t(0), t(200));
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].query_time, t(50));
        // At q=50 and q=100 the fluent is ongoing.
        assert!(rs[0].fluents[&Key::Active(1)].holds_at(t(49)));
        // At q=150, the On event (t=10 <= 150-100) has been evicted; the
        // Off at 120 alone initiates nothing.
        assert!(!rs[2].fluents.contains_key(&Key::Active(1)));
    }

    #[test]
    fn out_of_order_insertion_is_equivalent_to_sorted() {
        let run = |events: Vec<(Timestamp, Ev)>| {
            let mut engine = Engine::new((), description(), spec(1_000, 100));
            engine.add_events(events);
            let r = engine.recognize_at(t(500));
            r.fluents[&Key::Active(1)].clone()
        };
        let sorted = run(vec![
            (t(10), Ev::On(1)),
            (t(50), Ev::Off(1)),
            (t(80), Ev::On(1)),
            (t(120), Ev::Off(1)),
        ]);
        let shuffled = run(vec![
            (t(80), Ev::On(1)),
            (t(10), Ev::On(1)),
            (t(120), Ev::Off(1)),
            (t(50), Ev::Off(1)),
        ]);
        assert_eq!(sorted, shuffled);
    }

    #[test]
    fn boundary_triggers_are_ordered_by_time_kind_key() {
        // Two strata both start a fluent at t=10, with the later stratum's
        // key sorting *before* the earlier one's. A derived rule that logs
        // every Start trigger exposes the boundary order: the documented
        // (time, kind, key) contract demands Active(1) before Mode(...),
        // regardless of which stratum produced its trigger first.
        let mode = FluentDef::new("mode")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, m)],
                _ => vec![],
            });
        let started = DerivedEventDef::new("started")
            .rule(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(k) => vec![Out::Started(k.clone())],
                _ => vec![],
            });
        // Stratum 0 = mode (Key::Mode sorts after Key::Active),
        // stratum 1 = active: insertion order is the reverse of key order.
        let desc: EventDescription<(), Ev, Key, Out, u32> = EventDescription::new()
            .fluent(mode)
            .fluent(active_fluent())
            .event(started);
        let mut engine = Engine::new((), desc, spec(1_000, 100));
        engine.add_events([(t(10), Ev::SetMode(1, "eco")), (t(10), Ev::On(1))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.events,
            vec![
                (t(10), Out::Started(Key::Active(1))),
                (t(10), Out::Started(Key::Mode(1, "eco"))),
            ]
        );
    }

    /// Replays the same (event, query) schedule through a from-scratch and
    /// an incremental engine and asserts every recognition matches.
    fn assert_equivalent(
        desc: impl Fn() -> EventDescription<(), Ev, Key, Out, u32>,
        spec: WindowSpec,
        schedule: &[(i64, Option<Ev>)],
    ) -> IncrementalStats {
        let mut full = Engine::new((), desc(), spec);
        let mut inc =
            Engine::new((), desc(), spec).with_strategy(EvalStrategy::Incremental);
        for (at, ev) in schedule {
            match ev {
                Some(e) => {
                    full.add_event(t(*at), e.clone());
                    inc.add_event(t(*at), e.clone());
                }
                None => {
                    let rf = full.recognize_at(t(*at));
                    let ri = inc.recognize_at(t(*at));
                    assert_eq!(rf.query_time, ri.query_time);
                    assert_eq!(rf.working_memory, ri.working_memory, "wm at q={at}");
                    assert_eq!(rf.events, ri.events, "derived events at q={at}");
                    let mut kf: Vec<&Key> = rf.fluents.keys().collect();
                    let mut ki: Vec<&Key> = ri.fluents.keys().collect();
                    kf.sort();
                    ki.sort();
                    assert_eq!(kf, ki, "fluent keys at q={at}");
                    for key in kf {
                        assert_eq!(
                            rf.fluents[key].intervals(),
                            ri.fluents[key].intervals(),
                            "intervals of {key:?} at q={at}"
                        );
                    }
                }
            }
        }
        inc.incremental_stats()
    }

    fn stratified_description() -> EventDescription<(), Ev, Key, Out, u32> {
        let alarm = FluentDef::new("alarm")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            })
            .terminated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.ended() {
                Some(Key::Active(id)) => vec![Key::Mode(*id, "alarm")],
                _ => vec![],
            });
        let activated = DerivedEventDef::new("activated")
            .rule(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(Key::Active(id)) => vec![Out::Activated(*id)],
                _ => vec![],
            });
        let quiet = DerivedEventDef::new("all_quiet")
            .rule(|_, view: &View<'_, Key>, trig: Trigger<'_, Ev, Key>, t| {
                match trig.ended() {
                    Some(Key::Active(id))
                        if view.count_holding_at(
                            t + Duration::secs(1),
                            |k| matches!(k, Key::Active(_)),
                        ) == 0 =>
                    {
                        vec![Out::AllQuiet(*id)]
                    }
                    _ => vec![],
                }
            });
        EventDescription::new()
            .fluent(active_fluent())
            .fluent(alarm)
            .event(activated)
            .event(quiet)
    }

    #[test]
    fn incremental_matches_full_over_sliding_queries() {
        let stats = assert_equivalent(
            stratified_description,
            spec(200, 50),
            &[
                (10, Some(Ev::On(1))),
                (50, None),
                (80, Some(Ev::On(2))),
                (90, Some(Ev::Off(1))),
                (100, None),
                (150, None), // idle slide, empty delta
                (180, Some(Ev::Off(2))),
                (200, None),
                (260, Some(Ev::On(1))),
                (300, None), // everything before t=100 evicted
                (350, None),
            ],
        );
        assert_eq!(stats.full, 1, "only the first query recomputes");
        assert_eq!(stats.incremental, 5);
    }

    #[test]
    fn incremental_falls_back_on_late_arrival() {
        let stats = assert_equivalent(
            stratified_description,
            spec(200, 50),
            &[
                (10, Some(Ev::On(1))),
                (50, None),
                (40, Some(Ev::Off(1))), // late: lands at/before the checkpoint
                (100, None),
                (120, Some(Ev::On(2))),
                (150, None),
            ],
        );
        assert_eq!(stats.full, 2, "the late arrival forces one fallback");
        assert_eq!(stats.incremental, 1);
    }

    #[test]
    fn incremental_retracts_straddling_intervals_on_eviction() {
        // On(1) at t=10 keeps active(1) open across several queries; once
        // the window slides past t=10 the interval's initiation is evicted
        // and the whole chain above it (alarm, derived events) must match
        // the from-scratch answer.
        assert_equivalent(
            stratified_description,
            spec(100, 50),
            &[
                (10, Some(Ev::On(1))),
                (50, None),
                (100, None),
                (150, None), // t=10 evicted here: straddle retraction
                (170, Some(Ev::On(2))),
                (200, None),
                (250, None), // On(2) straddles, then is evicted later
                (300, None),
                (350, None),
            ],
        );
    }

    #[test]
    fn incremental_handles_grouped_fluents() {
        let grouped = || {
            let mode = FluentDef::new("mode")
                .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                    Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, m)],
                    _ => vec![],
                })
                .grouped(|k: &Key| match k {
                    Key::Mode(id, _) => *id,
                    Key::Active(id) => *id,
                });
            EventDescription::new().fluent(mode)
        };
        assert_equivalent(
            grouped,
            spec(200, 50),
            &[
                (10, Some(Ev::SetMode(1, "eco"))),
                (50, None),
                // Delta initiates a *new* value: rule (2) must terminate
                // the cached "eco" interval at t=60.
                (60, Some(Ev::SetMode(1, "boost"))),
                (100, None),
                (130, Some(Ev::SetMode(1, "eco"))),
                (150, None),
                (250, None),
                (300, None),
            ],
        );
    }

    #[test]
    fn incremental_survives_window_gaps_and_non_monotone_queries() {
        assert_equivalent(
            stratified_description,
            spec(100, 50),
            &[
                (10, Some(Ev::On(1))),
                (50, None),
                // A jump far beyond checkpoint + ω: every cached entry is
                // evicted and the open interval straddles.
                (400, None),
                (420, Some(Ev::On(2))),
                (450, None),
                // Non-monotone query: must fall back, not panic.
                (430, None),
                (500, None),
            ],
        );
    }

    #[test]
    fn from_scratch_strategy_keeps_no_cache() {
        let mut engine = Engine::new((), stratified_description(), spec(200, 50));
        engine.add_event(t(10), Ev::On(1));
        engine.recognize_at(t(50));
        engine.recognize_at(t(100));
        let stats = engine.incremental_stats();
        assert_eq!(stats.incremental, 0);
        assert_eq!(stats.full, 2);
        assert_eq!(stats.triggers_reused, 0, "nothing memoised to replay");
    }

    #[test]
    fn straddled_eviction_runs_no_prefix_rules() {
        let stats = assert_equivalent(
            description,
            spec(100, 50),
            &[
                (10, Some(Ev::On(1))),
                (50, None),
                (60, Some(Ev::On(2))),
                (80, Some(Ev::Off(2))),
                (100, None),
                (150, None),
            ],
        );
        // q=50 runs On(1); q=100 runs the On(2)/Off(2) delta; q=150
        // evicts On(1) — active(1) straddled the new window start and is
        // retracted by truncating its base points. The description's
        // rules never probe the view, so no entry is ever materialised:
        // every event is evaluated exactly once in its lifetime and the
        // retained prefix replays through the base maps with no
        // per-trigger work (hence zero per-trigger reuses).
        assert_eq!(stats.full, 1);
        assert_eq!(stats.incremental, 2);
        assert_eq!(stats.triggers_evaluated, 3);
        assert_eq!(stats.triggers_reused, 0);
    }

    #[test]
    fn provenance_records_point_and_emission_firings() {
        let started = DerivedEventDef::new("started")
            .rule(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.started() {
                Some(k) => vec![Out::Started(k.clone())],
                _ => vec![],
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> =
            EventDescription::new().fluent(active_fluent()).event(started);
        let mut engine = Engine::new((), desc, spec(1_000, 100)).with_provenance(true);
        engine.add_events([(t(10), Ev::On(1)), (t(50), Ev::Off(1))]);
        let r = engine.recognize_at(t(100));
        assert_eq!(
            r.fluents[&Key::Active(1)].intervals(),
            &[Interval::closed(t(10), t(50))]
        );

        let prov = engine.take_provenance().expect("provenance captured");
        assert_eq!(prov.query_time, t(100));
        let init = prov.initiated_by(&Key::Active(1), t(10));
        assert_eq!(init.len(), 1);
        assert_eq!(init[0].rule.name, "active");
        assert_eq!(init[0].rule.kind, RuleKind::Initiated);
        assert_eq!(init[0].trigger, ProvTrigger::Input(Ev::On(1)));
        let term = prov.terminated_by(&Key::Active(1), t(50));
        assert_eq!(term.len(), 1);
        assert_eq!(term[0].rule.kind, RuleKind::Terminated);
        assert_eq!(term[0].trigger, ProvTrigger::Input(Ev::Off(1)));
        // The derived emission fired on the interval's start boundary.
        assert_eq!(prov.emissions.len(), 1);
        let em = &prov.emissions[0];
        assert_eq!(em.t, t(10));
        assert_eq!(em.fire.rule.name, "started");
        assert_eq!(em.fire.rule.kind, RuleKind::Emitted);
        assert_eq!(em.fire.trigger, ProvTrigger::Start(Key::Active(1)));
        // Taking the log is destructive until the next traced query.
        assert!(engine.take_provenance().is_none());
    }

    #[test]
    fn provenance_capture_leaves_output_identical() {
        // The same schedule through an untraced incremental engine and a
        // traced one: recognitions must match exactly, and the traced
        // engine must not have built a checkpoint.
        let schedule: &[(i64, Option<Ev>)] = &[
            (10, Some(Ev::On(1))),
            (50, None),
            (60, Some(Ev::On(2))),
            (80, Some(Ev::Off(1))),
            (100, None),
            (150, None),
        ];
        let mut plain =
            Engine::new((), description(), spec(100, 50)).with_strategy(EvalStrategy::Incremental);
        let mut traced = Engine::new((), description(), spec(100, 50))
            .with_strategy(EvalStrategy::Incremental)
            .with_provenance(true);
        for (at, ev) in schedule {
            match ev {
                Some(e) => {
                    plain.add_event(t(*at), e.clone());
                    traced.add_event(t(*at), e.clone());
                }
                None => {
                    let rp = plain.recognize_at(t(*at));
                    let rt = traced.recognize_at(t(*at));
                    assert_eq!(rp.working_memory, rt.working_memory);
                    assert_eq!(rp.events, rt.events);
                    let mut kp: Vec<&Key> = rp.fluents.keys().collect();
                    let mut kt: Vec<&Key> = rt.fluents.keys().collect();
                    kp.sort();
                    kt.sort();
                    assert_eq!(kp, kt);
                    for key in kp {
                        assert_eq!(rp.fluents[key].intervals(), rt.fluents[key].intervals());
                    }
                    assert!(traced.take_provenance().is_some());
                }
            }
        }
        // Every traced query bypassed the incremental path.
        assert_eq!(traced.incremental_stats().incremental, 0);
        assert_eq!(traced.incremental_stats().full, 3);
        assert!(plain.incremental_stats().incremental > 0);
    }

    #[test]
    fn provenance_records_grouped_cross_termination() {
        let mode = FluentDef::new("mode")
            .initiated(|_, _, trig: Trigger<'_, Ev, Key>, _| match trig.input() {
                Some(Ev::SetMode(id, m)) => vec![Key::Mode(*id, m)],
                _ => vec![],
            })
            .grouped(|k: &Key| match k {
                Key::Mode(id, _) => *id,
                Key::Active(id) => *id,
            });
        let desc: EventDescription<(), Ev, Key, Out, u32> = EventDescription::new().fluent(mode);
        let mut engine = Engine::new((), desc, spec(1_000, 100)).with_provenance(true);
        engine.add_events([(t(10), Ev::SetMode(1, "eco")), (t(60), Ev::SetMode(1, "boost"))]);
        let _ = engine.recognize_at(t(100));
        let prov = engine.take_provenance().expect("provenance captured");
        let term = prov.terminated_by(&Key::Mode(1, "eco"), t(60));
        assert!(
            term.iter().any(|f| f.rule.kind == RuleKind::CrossTerminated
                && f.trigger == ProvTrigger::Start(Key::Mode(1, "boost"))),
            "cross-termination not recorded: {term:?}"
        );
    }
}
