//! Maximal intervals and interval-list algebra.
//!
//! `holdsFor(F=V, I)` represents "I is the list of the maximal intervals
//! for which F=V holds continuously" (Table 1). Following the Event
//! Calculus convention, a fluent initiated at `Ts` and first broken at `Tf`
//! holds at every `T` with `Ts < T ≤ Tf`: the interval is left-open /
//! right-closed, `start(F=V)` occurs at `Ts` and `end(F=V)` at `Tf`.

use maritime_stream::Timestamp;
use serde::{Deserialize, Serialize};

/// One maximal interval `(since, until]`. `until = None` means the fluent
/// still holds at the current query time (an open interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// The initiation point `Ts`; the fluent holds *after* this point.
    pub since: Timestamp,
    /// The first breaking point `Tf`, inclusive; `None` while unbroken.
    pub until: Option<Timestamp>,
}

impl Interval {
    /// A closed interval `(since, until]`.
    #[must_use]
    pub fn closed(since: Timestamp, until: Timestamp) -> Self {
        Self {
            since,
            until: Some(until),
        }
    }

    /// An open interval `(since, ∞)`.
    #[must_use]
    pub fn open(since: Timestamp) -> Self {
        Self { since, until: None }
    }

    /// `holdsAt`: whether the fluent holds at `t` under this interval.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        t > self.since && self.until.is_none_or(|u| t <= u)
    }

    /// Duration in seconds; `None` for open intervals.
    #[must_use]
    pub fn duration_secs(&self) -> Option<i64> {
        self.until.map(|u| u.as_secs() - self.since.as_secs())
    }

    /// Whether the interval is empty (closed with `until ≤ since`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.until.is_some_and(|u| u <= self.since)
    }
}

/// A sorted list of disjoint, non-adjacent maximal intervals.
///
/// ```
/// use maritime_rtec::{Interval, IntervalList, Timestamp};
///
/// // The paper's example: initiated at 10 and 20, terminated at 25 and 30
/// // -> F=V holds at all T with 10 < T <= 25.
/// let il = IntervalList::from_points(
///     &[Timestamp(10), Timestamp(20)],
///     &[Timestamp(25), Timestamp(30)],
///     None,
/// );
/// assert_eq!(il.intervals(), &[Interval::closed(Timestamp(10), Timestamp(25))]);
/// assert!(il.holds_at(Timestamp(25)));
/// assert!(!il.holds_at(Timestamp(26)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalList {
    items: Vec<Interval>,
}

impl IntervalList {
    /// The empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from arbitrary intervals: drops empties, sorts, and
    /// merges overlapping or touching intervals into maximal ones.
    #[must_use]
    pub fn from_intervals(mut intervals: Vec<Interval>) -> Self {
        intervals.retain(|i| !i.is_empty());
        intervals.sort_by_key(|i| i.since);
        let mut items: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match items.last_mut() {
                // Merge when the new interval starts inside (or exactly at
                // the end of) the previous one: (a, b] ∪ (c, d] with c ≤ b.
                Some(last) if last.until.is_none() => {
                    // Previous is open: it swallows everything after it.
                }
                Some(last) if iv.since <= last.until.expect("closed") => {
                    last.until = match (last.until, iv.until) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                }
                _ => items.push(iv),
            }
        }
        Self { items }
    }

    /// Builds maximal intervals from sorted initiation and termination
    /// points — the core of `holdsFor` (§4.1): for each initiation `Ts`,
    /// find the first breaking point after `Ts`; everything in between is
    /// one maximal interval. Breaking points that precede any initiation
    /// are ignored. `horizon` closes the last interval for reporting when
    /// the fluent is still ongoing (`None` keeps it open).
    #[must_use]
    pub fn from_points(
        initiations: &[Timestamp],
        terminations: &[Timestamp],
        horizon: Option<Timestamp>,
    ) -> Self {
        Self::from_points_in(Vec::new(), initiations, terminations, horizon)
    }

    /// [`IntervalList::from_points`] reusing `items` as the backing
    /// storage (cleared first): the engine recycles interval vectors from
    /// the previous query's result instead of allocating fresh ones.
    pub(crate) fn from_points_in(
        mut items: Vec<Interval>,
        initiations: &[Timestamp],
        terminations: &[Timestamp],
        _horizon: Option<Timestamp>,
    ) -> Self {
        items.clear();
        debug_assert!(initiations.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(terminations.windows(2).all(|w| w[0] <= w[1]));
        let mut ti = 0usize;
        let mut open_since: Option<Timestamp> = None;
        for &ts in initiations {
            if let Some(since) = open_since {
                // Already open: check whether a termination closed it
                // before this initiation re-fires.
                while ti < terminations.len() && terminations[ti] <= since {
                    ti += 1;
                }
                if ti < terminations.len() && terminations[ti] < ts {
                    items.push(Interval::closed(since, terminations[ti]));
                    // open_since is re-assigned below; the fall-through
                    // while-loop also advances ti past the used point.
                } else {
                    // A termination at exactly this initiation point is
                    // cancelled: the fluent is terminated and re-initiated
                    // at the same instant, so the maximal interval runs
                    // straight through ((a, ts] ∪ (ts, …) is contiguous).
                    while ti < terminations.len() && terminations[ti] == ts {
                        ti += 1;
                    }
                    // Still open; the re-initiation itself has no effect.
                    continue;
                }
            }
            // Not open: start a new interval at ts, unless a termination at
            // the very same point kills it (termination at the initiation
            // point yields an empty interval, which is dropped).
            while ti < terminations.len() && terminations[ti] <= ts {
                ti += 1;
            }
            open_since = Some(ts);
        }
        if let Some(since) = open_since {
            while ti < terminations.len() && terminations[ti] <= since {
                ti += 1;
            }
            if ti < terminations.len() {
                items.push(Interval::closed(since, terminations[ti]));
            } else {
                items.push(Interval::open(since));
            }
        }
        Self { items }
    }

    /// The intervals, in time order.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.items
    }

    /// Takes the backing storage for recycling via
    /// [`IntervalList::from_points_in`].
    pub(crate) fn into_storage(self) -> Vec<Interval> {
        self.items
    }

    /// `Clone` into recycled backing storage (cleared first): the engine
    /// copies each fluent's list into its checkpoint snapshot without
    /// allocating on a warm arena.
    pub(crate) fn clone_in(&self, mut storage: Vec<Interval>) -> Self {
        storage.clear();
        storage.extend_from_slice(&self.items);
        Self { items: storage }
    }

    /// Number of maximal intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no intervals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `holdsAt`: binary search over the maximal intervals.
    #[must_use]
    pub fn holds_at(&self, t: Timestamp) -> bool {
        let idx = self.items.partition_point(|i| i.since < t);
        // Candidate: the last interval starting before t.
        idx > 0 && self.items[idx - 1].contains(t)
    }

    /// Union of two interval lists.
    #[must_use]
    pub fn union(&self, other: &IntervalList) -> IntervalList {
        let mut all = self.items.clone();
        all.extend(other.items.iter().copied());
        IntervalList::from_intervals(all)
    }

    /// Intersection of two interval lists.
    #[must_use]
    pub fn intersect(&self, other: &IntervalList) -> IntervalList {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            let a = self.items[i];
            let b = other.items[j];
            let since = a.since.max(b.since);
            let until = match (a.until, b.until) {
                (None, None) => None,
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (Some(x), Some(y)) => Some(x.min(y)),
            };
            let candidate = Interval { since, until };
            if !candidate.is_empty() && until.is_none_or(|u| u > since) {
                out.push(candidate);
            }
            // Advance whichever ends first.
            match (a.until, b.until) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                (Some(_), None) => i += 1,
                (None, Some(_)) => j += 1,
                (None, None) => break,
            }
        }
        IntervalList { items: out }
    }

    /// Relative complement within `(window_start, horizon]`: the maximal
    /// intervals where the fluent does *not* hold.
    #[must_use]
    pub fn complement(&self, window_start: Timestamp, horizon: Timestamp) -> IntervalList {
        let mut out = Vec::new();
        let mut cursor = window_start;
        for iv in &self.items {
            if iv.since > cursor {
                out.push(Interval::closed(cursor, iv.since.min(horizon)));
            }
            match iv.until {
                Some(u) => cursor = cursor.max(u),
                None => {
                    cursor = horizon;
                    break;
                }
            }
            if cursor >= horizon {
                break;
            }
        }
        if cursor < horizon {
            out.push(Interval::closed(cursor, horizon));
        }
        IntervalList::from_intervals(out)
    }

    /// Clips every interval to `(cutoff, horizon]`, closing open intervals
    /// at `horizon`. Used when reporting window-relative results.
    #[must_use]
    pub fn clip(&self, cutoff: Timestamp, horizon: Timestamp) -> IntervalList {
        let items = self
            .items
            .iter()
            .filter_map(|iv| {
                let since = iv.since.max(cutoff);
                let until = Some(iv.until.map_or(horizon, |u| u.min(horizon)));
                let c = Interval { since, until };
                (!c.is_empty()).then_some(c)
            })
            .collect();
        IntervalList { items }
    }

    /// Interval containment: whether `inner` lies wholly within one of the
    /// list's maximal intervals. Since maximal intervals are disjoint and
    /// non-adjacent, a continuous period of the fluent holding can only be
    /// covered by a *single* maximal interval — this is the containment
    /// check the chaos harness's gap-monotonicity oracle uses: removing
    /// input must only ever shrink or split CE intervals, so every
    /// interval recognized on the thinned stream must sit inside one
    /// recognized on the full stream.
    #[must_use]
    pub fn covers(&self, inner: &Interval) -> bool {
        if inner.is_empty() {
            return true;
        }
        let idx = self.items.partition_point(|i| i.since <= inner.since);
        // Candidate: the last interval starting at or before inner.since.
        let Some(outer) = idx.checked_sub(1).map(|i| self.items[i]) else {
            return false;
        };
        match (outer.until, inner.until) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b <= a,
        }
    }

    /// Total closed duration in seconds (open intervals contribute zero).
    #[must_use]
    pub fn total_duration_secs(&self) -> i64 {
        self.items
            .iter()
            .filter_map(Interval::duration_secs)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn interval_contains_is_left_open_right_closed() {
        let iv = Interval::closed(t(10), t(25));
        assert!(!iv.contains(t(10)));
        assert!(iv.contains(t(11)));
        assert!(iv.contains(t(25)));
        assert!(!iv.contains(t(26)));
    }

    #[test]
    fn open_interval_contains_everything_after_since() {
        let iv = Interval::open(t(10));
        assert!(!iv.contains(t(10)));
        assert!(iv.contains(t(1_000_000)));
        assert_eq!(iv.duration_secs(), None);
    }

    #[test]
    fn paper_example_initiations_10_20_terminations_25_30() {
        // "Suppose that F=V is initiated at time-points 10 and 20 and
        // terminated at time-points 25 and 30 ... F=V holds at all T such
        // that 10 < T <= 25. The event start(F=V) takes place at 10 ... and
        // end(F=V) takes place at 25 and at no other time-point."
        let il = IntervalList::from_points(&[t(10), t(20)], &[t(25), t(30)], None);
        assert_eq!(il.intervals(), &[Interval::closed(t(10), t(25))]);
        assert!(!il.holds_at(t(10)));
        assert!(il.holds_at(t(15)));
        assert!(il.holds_at(t(25)));
        assert!(!il.holds_at(t(26)));
    }

    #[test]
    fn unterminated_initiation_yields_open_interval() {
        let il = IntervalList::from_points(&[t(5)], &[], None);
        assert_eq!(il.intervals(), &[Interval::open(t(5))]);
        assert!(il.holds_at(t(100)));
    }

    #[test]
    fn termination_before_any_initiation_is_ignored() {
        let il = IntervalList::from_points(&[t(20)], &[t(10), t(30)], None);
        assert_eq!(il.intervals(), &[Interval::closed(t(20), t(30))]);
    }

    #[test]
    fn termination_at_initiation_point_does_not_break() {
        // Rule (1): broken(F=V, Ts, T) needs Ts < Tf <= T, so a
        // termination at exactly the initiation point has no effect and
        // the fluent holds from Ts on.
        let il = IntervalList::from_points(&[t(10)], &[t(10)], None);
        assert_eq!(il.intervals(), &[Interval::open(t(10))]);
    }

    #[test]
    fn alternating_points_build_multiple_intervals() {
        let il = IntervalList::from_points(
            &[t(10), t(40), t(80)],
            &[t(20), t(60), t(90)],
            None,
        );
        assert_eq!(
            il.intervals(),
            &[
                Interval::closed(t(10), t(20)),
                Interval::closed(t(40), t(60)),
                Interval::closed(t(80), t(90)),
            ]
        );
    }

    #[test]
    fn from_intervals_merges_overlaps() {
        let il = IntervalList::from_intervals(vec![
            Interval::closed(t(10), t(20)),
            Interval::closed(t(15), t(30)),
            Interval::closed(t(40), t(50)),
            Interval::closed(t(50), t(60)), // touching: merges
        ]);
        assert_eq!(
            il.intervals(),
            &[Interval::closed(t(10), t(30)), Interval::closed(t(40), t(60))]
        );
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalList::from_intervals(vec![Interval::closed(t(0), t(10))]);
        let b = IntervalList::from_intervals(vec![Interval::closed(t(5), t(20))]);
        assert_eq!(
            a.union(&b).intervals(),
            &[Interval::closed(t(0), t(20))]
        );
        assert_eq!(
            a.intersect(&b).intervals(),
            &[Interval::closed(t(5), t(10))]
        );
    }

    #[test]
    fn intersection_with_open_interval() {
        let a = IntervalList::from_intervals(vec![Interval::open(t(10))]);
        let b = IntervalList::from_intervals(vec![Interval::closed(t(5), t(30))]);
        assert_eq!(a.intersect(&b).intervals(), &[Interval::closed(t(10), t(30))]);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let a = IntervalList::from_intervals(vec![Interval::closed(t(0), t(10))]);
        let b = IntervalList::from_intervals(vec![Interval::closed(t(20), t(30))]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn complement_fills_the_gaps() {
        let a = IntervalList::from_intervals(vec![
            Interval::closed(t(10), t(20)),
            Interval::closed(t(40), t(50)),
        ]);
        let c = a.complement(t(0), t(60));
        assert_eq!(
            c.intervals(),
            &[
                Interval::closed(t(0), t(10)),
                Interval::closed(t(20), t(40)),
                Interval::closed(t(50), t(60)),
            ]
        );
    }

    #[test]
    fn complement_of_empty_is_whole_window() {
        let c = IntervalList::new().complement(t(0), t(100));
        assert_eq!(c.intervals(), &[Interval::closed(t(0), t(100))]);
    }

    #[test]
    fn clip_closes_open_intervals_at_horizon() {
        let a = IntervalList::from_intervals(vec![Interval::open(t(10))]);
        let clipped = a.clip(t(0), t(50));
        assert_eq!(clipped.intervals(), &[Interval::closed(t(10), t(50))]);
    }

    #[test]
    fn clip_drops_intervals_fully_before_cutoff() {
        let a = IntervalList::from_intervals(vec![
            Interval::closed(t(0), t(10)),
            Interval::closed(t(20), t(30)),
        ]);
        let clipped = a.clip(t(15), t(100));
        assert_eq!(clipped.intervals(), &[Interval::closed(t(20), t(30))]);
    }

    #[test]
    fn total_duration_sums_closed_intervals() {
        let a = IntervalList::from_intervals(vec![
            Interval::closed(t(0), t(10)),
            Interval::closed(t(20), t(35)),
            Interval::open(t(50)),
        ]);
        assert_eq!(a.total_duration_secs(), 25);
    }

    #[test]
    fn covers_requires_single_maximal_interval() {
        let il = IntervalList::from_intervals(vec![
            Interval::closed(t(10), t(30)),
            Interval::closed(t(50), t(70)),
            Interval::open(t(90)),
        ]);
        // Inside one maximal interval, including exact match and shared
        // endpoints.
        assert!(il.covers(&Interval::closed(t(10), t(30))));
        assert!(il.covers(&Interval::closed(t(15), t(25))));
        assert!(il.covers(&Interval::closed(t(50), t(55))));
        // Spanning the gap between two intervals is not containment.
        assert!(!il.covers(&Interval::closed(t(20), t(60))));
        // Starting before the interval opens is not containment.
        assert!(!il.covers(&Interval::closed(t(5), t(20))));
        // Entirely inside a gap.
        assert!(!il.covers(&Interval::closed(t(35), t(45))));
        // An open outer interval swallows both closed and open inners.
        assert!(il.covers(&Interval::closed(t(95), t(1_000))));
        assert!(il.covers(&Interval::open(t(95))));
        // An open inner is never covered by a closed outer.
        assert!(!il.covers(&Interval::open(t(15))));
        // Empty inners are vacuously covered; empty lists cover nothing.
        assert!(il.covers(&Interval::closed(t(40), t(40))));
        assert!(!IntervalList::new().covers(&Interval::closed(t(0), t(1))));
    }

    #[test]
    fn holds_at_uses_binary_search_correctly() {
        let il = IntervalList::from_points(
            &(0..100).map(|i| t(i * 10)).collect::<Vec<_>>(),
            &(0..100).map(|i| t(i * 10 + 5)).collect::<Vec<_>>(),
            None,
        );
        assert!(il.holds_at(t(13)));
        assert!(il.holds_at(t(15)));
        assert!(!il.holds_at(t(17)));
        assert!(!il.holds_at(t(10)));
    }
}
