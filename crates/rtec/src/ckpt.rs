//! Zero-dependency binary checkpoint encoding.
//!
//! Serializes the incremental engine's between-query state (window
//! contents, symbol table, per-stratum caches) so a whole engine can be
//! saved, killed, and restored mid-stream with byte-identical subsequent
//! output — the substrate for partition kill/restore and vessel handoff
//! (ROADMAP item 4) and the stepping stone to multi-process scale-out.
//!
//! # Format
//!
//! A checkpoint is a *frame*:
//!
//! ```text
//! magic  "MCKP"          4 bytes
//! version u16 LE          2 bytes   (currently 1)
//! payload_len u64 LE      8 bytes
//! checksum u64 LE         8 bytes   FNV-1a 64 over the payload
//! payload                 payload_len bytes
//! ```
//!
//! The payload is a flat little-endian byte stream produced by [`Codec`]
//! implementations: fixed-width integers, IEEE-754 bit patterns for
//! floats, and `u64` length prefixes for sequences. Hash maps are always
//! encoded in sorted key order, so the same logical state produces the
//! same bytes — golden checkpoint files stay stable across runs.
//!
//! Decoding never panics on hostile input: truncation, bad magic, an
//! unknown version, and checksum mismatches all surface as [`CkptError`].

use std::collections::HashMap;
use std::fmt;

use maritime_stream::{Duration, Timestamp, WindowSpec};

use crate::cache::{
    DerivedEntry, EngineCache, EvalStrategy, IncrementalStats, PointEntry, StratumCache,
};
use crate::intern::{FxBuildHasher, KeyId};
use crate::intervals::{Interval, IntervalList};
use crate::view::ProbeLog;

/// Frame magic: "maritime checkpoint".
pub const MAGIC: [u8; 4] = *b"MCKP";
/// Current frame version. Bump on any payload-layout change.
pub const VERSION: u16 = 1;
/// Bytes of framing before the payload starts.
pub const HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The frame does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic,
    /// The frame's version is not one this build can read.
    BadVersion(u16),
    /// The input ended before the declared payload (or a field) did.
    Truncated,
    /// The bytes are structurally invalid: checksum mismatch, an enum tag
    /// out of range, or a value failing an invariant.
    Corrupt(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a checkpoint: bad magic"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a 64 over `bytes` — the frame checksum.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload so far.
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Wraps the payload in the versioned frame (magic, version, length,
    /// FNV-1a checksum).
    #[must_use]
    pub fn into_frame(self) -> Vec<u8> {
        frame(&self.buf)
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a sequence length as `u64`.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked payload decoder.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a raw payload (already unframed).
    #[must_use]
    pub fn new(payload: &'a [u8]) -> Self {
        Self { buf: payload, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn take_bool(&mut self) -> Result<bool, CkptError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt("bool out of range")),
        }
    }

    /// Reads a sequence length and sanity-checks it against the bytes
    /// actually left (every element takes at least one byte), so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, CkptError> {
        let n = self.take_u64()?;
        let n = usize::try_from(n).map_err(|_| CkptError::Corrupt("length overflows usize"))?;
        if n > self.remaining() {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        self.take(n)
    }

    /// Asserts the payload was fully consumed — trailing garbage means
    /// the frame does not describe what the caller decoded.
    pub fn finish(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Corrupt("trailing bytes after payload"))
        }
    }
}

/// Wraps a payload in the versioned frame.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame and returns its payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], CkptError> {
    if bytes.len() < 4 {
        return Err(CkptError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
    if version != VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let len = u64::from_le_bytes(bytes[6..14].try_into().expect("len 8"));
    let len = usize::try_from(len).map_err(|_| CkptError::Corrupt("length overflows usize"))?;
    let checksum = u64::from_le_bytes(bytes[14..22].try_into().expect("len 8"));
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < len {
        return Err(CkptError::Truncated);
    }
    if rest.len() > len {
        return Err(CkptError::Corrupt("trailing bytes after frame"));
    }
    let payload = &rest[..len];
    if fnv1a64(payload) != checksum {
        return Err(CkptError::Corrupt("checksum mismatch"));
    }
    Ok(payload)
}

/// A value with a canonical binary encoding. Implementations must
/// roundtrip exactly: `decode(encode(v)) == v`, and equal values must
/// encode to equal bytes (maps are encoded in sorted key order).
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value, consuming exactly the bytes `encode` produced.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError>;
}

impl Codec for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u8()
    }
}

impl Codec for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u16()
    }
}

impl Codec for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u64()
    }
}

impl Codec for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_i64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        usize::try_from(r.take_u64()?).map_err(|_| CkptError::Corrupt("usize overflow"))
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_f64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_bool()
    }
}

impl Codec for char {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self as u32);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        char::from_u32(r.take_u32()?).ok_or(CkptError::Corrupt("invalid char"))
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.take_len()?;
        let bytes = r.take_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Corrupt("invalid utf-8"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CkptError::Corrupt("Option tag out of range")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec, D: Codec> Codec for (A, B, C, D) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl Codec for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Timestamp(r.take_i64()?))
    }
}

impl Codec for Duration {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Duration(r.take_i64()?))
    }
}

impl Codec for WindowSpec {
    fn encode(&self, w: &mut Writer) {
        self.range.encode(w);
        self.slide.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let range = Duration::decode(r)?;
        let slide = Duration::decode(r)?;
        WindowSpec::new(range, slide).map_err(|_| CkptError::Corrupt("invalid window spec"))
    }
}

impl Codec for KeyId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(KeyId(r.take_u32()?))
    }
}

impl Codec for Interval {
    fn encode(&self, w: &mut Writer) {
        self.since.encode(w);
        self.until.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let since = Timestamp::decode(r)?;
        let until = Option::<Timestamp>::decode(r)?;
        Ok(match until {
            Some(u) => Interval::closed(since, u),
            None => Interval::open(since),
        })
    }
}

impl Codec for IntervalList {
    fn encode(&self, w: &mut Writer) {
        self.intervals().to_vec().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        // `from_intervals` canonicalises; on an already-canonical encoded
        // list it is the identity, so roundtrips are exact.
        Ok(IntervalList::from_intervals(Vec::<Interval>::decode(r)?))
    }
}

impl Codec for EvalStrategy {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::FromScratch => 0,
            Self::Incremental => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.take_u8()? {
            0 => Ok(Self::FromScratch),
            1 => Ok(Self::Incremental),
            _ => Err(CkptError::Corrupt("EvalStrategy tag out of range")),
        }
    }
}

impl Codec for IncrementalStats {
    fn encode(&self, w: &mut Writer) {
        self.incremental.encode(w);
        self.full.encode(w);
        self.triggers_evaluated.encode(w);
        self.triggers_reused.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            incremental: usize::decode(r)?,
            full: usize::decode(r)?,
            triggers_evaluated: usize::decode(r)?,
            triggers_reused: usize::decode(r)?,
        })
    }
}

/// Encodes an [`IdMap`](crate::intern::IdMap) in ascending [`KeyId`]
/// order — hash-map iteration order never leaks into the bytes.
impl<V: Codec> Codec for HashMap<KeyId, V, FxBuildHasher> {
    fn encode(&self, w: &mut Writer) {
        let mut ids: Vec<KeyId> = self.keys().copied().collect();
        ids.sort_unstable();
        w.put_len(ids.len());
        for id in ids {
            id.encode(w);
            self[&id].encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.take_len()?;
        let mut out = Self::default();
        out.reserve(n.min(r.remaining()));
        for _ in 0..n {
            let id = KeyId::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(id, v).is_some() {
                return Err(CkptError::Corrupt("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<K: Codec> Codec for ProbeLog<K> {
    fn encode(&self, w: &mut Writer) {
        self.points.encode(w);
        self.lists.encode(w);
        self.unknown_points.encode(w);
        self.unknown_lists.encode(w);
        self.scans.encode(w);
        self.scan_all.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            points: Codec::decode(r)?,
            lists: Codec::decode(r)?,
            unknown_points: Codec::decode(r)?,
            unknown_lists: Codec::decode(r)?,
            scans: Codec::decode(r)?,
            scan_all: Codec::decode(r)?,
        })
    }
}

impl<K: Codec> Codec for PointEntry<K> {
    fn encode(&self, w: &mut Writer) {
        self.t.encode(w);
        self.inits.encode(w);
        self.terms.encode(w);
        self.probes.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            t: Codec::decode(r)?,
            inits: Codec::decode(r)?,
            terms: Codec::decode(r)?,
            probes: Codec::decode(r)?,
        })
    }
}

impl<K: Codec, D: Codec> Codec for DerivedEntry<K, D> {
    fn encode(&self, w: &mut Writer) {
        self.t.encode(w);
        self.emits.encode(w);
        self.probes.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            t: Codec::decode(r)?,
            emits: Codec::decode(r)?,
            probes: Codec::decode(r)?,
        })
    }
}

impl<K: Codec> Codec for StratumCache<K> {
    fn encode(&self, w: &mut Writer) {
        self.ev_inits.encode(w);
        self.ev_terms.encode(w);
        self.events.encode(w);
        self.boundary.encode(w);
        self.fluents.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            ev_inits: Codec::decode(r)?,
            ev_terms: Codec::decode(r)?,
            events: Codec::decode(r)?,
            boundary: Codec::decode(r)?,
            fluents: Codec::decode(r)?,
        })
    }
}

impl<K: Codec, D: Codec> Codec for EngineCache<K, D> {
    fn encode(&self, w: &mut Writer) {
        self.checkpoint.encode(w);
        self.snapshot_len.encode(w);
        self.strata.encode(w);
        self.derived_events.encode(w);
        self.derived_boundary.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            checkpoint: Codec::decode(r)?,
            snapshot_len: Codec::decode(r)?,
            strata: Codec::decode(r)?,
            derived_events: Codec::decode(r)?,
            derived_boundary: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        let back = T::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&42u8);
        roundtrip(&0xBEEFu16);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&(-7i64));
        roundtrip(&1.5f64);
        roundtrip(&true);
        roundtrip(&'A');
        roundtrip(&String::from("naïve ✓"));
        roundtrip(&Some(Timestamp(99)));
        roundtrip(&Option::<Timestamp>::None);
        roundtrip(&vec![KeyId(0), KeyId(7)]);
        roundtrip(&(Timestamp(1), Duration(2), KeyId(3)));
    }

    #[test]
    fn frame_roundtrip_and_rejection() {
        let payload = b"hello".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);

        // Bad magic.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert_eq!(unframe(&bad), Err(CkptError::BadMagic));

        // Future version.
        let mut bad = framed.clone();
        bad[4] = 0xFF;
        assert!(matches!(unframe(&bad), Err(CkptError::BadVersion(_))));

        // Truncation at every prefix length: clean error, no panic.
        for n in 0..framed.len() {
            assert!(unframe(&framed[..n]).is_err(), "prefix {n} accepted");
        }

        // Payload bit flip: checksum catches it.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(unframe(&bad), Err(CkptError::Corrupt("checksum mismatch")));

        // Trailing garbage after the frame.
        let mut bad = framed;
        bad.push(0);
        assert!(unframe(&bad).is_err());
    }

    #[test]
    fn idmap_encoding_is_canonical() {
        use crate::intern::IdMap;
        let mut a: IdMap<u64> = IdMap::default();
        let mut b: IdMap<u64> = IdMap::default();
        // Insert in different orders; bytes must agree.
        for id in [5u32, 1, 9, 3] {
            a.insert(KeyId(id), u64::from(id) * 10);
        }
        for id in [3u32, 9, 1, 5] {
            b.insert(KeyId(id), u64::from(id) * 10);
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.encode(&mut wa);
        b.encode(&mut wb);
        assert_eq!(wa.into_payload(), wb.into_payload());
    }

    #[test]
    fn corrupt_length_is_rejected_without_allocation_blowup() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        assert!(Vec::<u8>::decode(&mut r).is_err());
    }
}
