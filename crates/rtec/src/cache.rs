//! Checkpointed state carried between queries by the incremental engine.
//!
//! With an overlapping window (β < ω) consecutive queries share most of
//! their working memory: at ω = 24 h, β = 1 h roughly 96 % of the events
//! scanned at `Qᵢ` were already fully processed at `Qᵢ₋₁`. The from-scratch
//! engine re-runs every rule over that shared prefix anyway. Incremental
//! mode instead memoises every *rule evaluation* — one [`PointEntry`] per
//! (stratum, trigger) and one [`DerivedEntry`] per trigger for the derived
//! events — and at the next query replays the cached entries, running
//! rules only for the delta past the *checkpoint* (the previous query
//! time) and for the few retained triggers whose inputs actually changed.
//!
//! # Correctness model
//!
//! Rules are required to be pure functions of `(ctx, view, trigger, t)`.
//! An entry may therefore be replayed iff (a) the *same trigger* fires at
//! the same time and (b) every [`ProbeLog`] probe the rules made when the
//! entry was computed would observe the same answer against the newly
//! computed fluents. The engine enforces both:
//!
//! * **Entries are sparse.** Only evaluations that emitted something or
//!   probed the view are materialised. A trigger whose rules neither
//!   emitted nor consulted the view ran a pure function of the trigger
//!   alone — it can never change its mind, so its empty outcome is
//!   replayed *implicitly*, with no per-trigger work at all. This is the
//!   overwhelming majority: most triggers are pattern-matched away by
//!   most rule sets.
//! * **Non-probing input-event triggers** are not materialised at all:
//!   their emissions are folded into per-key point maps that replay
//!   wholesale — the next query evicts the points at or before its new
//!   window start and appends the delta. Probing event triggers are
//!   materialised and matched by snapshot index: the retained window
//!   snapshot `(Qᵢ − ω, checkpoint]` is exactly the previous snapshot
//!   minus the prefix evicted by the slide, so cached indices shift
//!   uniformly by the eviction count (a late arrival at or before the
//!   checkpoint voids this and falls back to a full recompute — the
//!   paper's Figure 5 delayed-event case).
//! * **Boundary triggers** (`start(F=V)`/`end(F=V)`) are matched by
//!   identity `(t, is_end, key)` against the freshly rebuilt boundary
//!   list. An unmatched boundary of a *changed* key (see below) is
//!   evaluated from scratch — it may have moved there when the slide
//!   clipped an interval straddling the new window start. An unmatched
//!   boundary of an unchanged key existed identically at the checkpoint
//!   and was elided as a stable empty outcome: it replays implicitly.
//! * **Probes** are re-checked against the set of *changed keys*: after
//!   each stratum is rebuilt, its new interval lists are compared with the
//!   checkpointed ones, and an entry whose probes cannot distinguish old
//!   from new state (same `holds_at` answers at the probed points, no
//!   structural change behind a `holds_for`) is replayed without running
//!   its rules.
//!
//! Entries store emissions as raw, pre-canonicalisation data: initiation
//! and termination *points* for fluent strata (order-insensitive — the
//! engine sorts and deduplicates the merged points, and recomputes the
//! rule-(2) cross-terminations of grouped fluents from the merged
//! initiations at every query), and per-definition event lists for the
//! derived phase (re-concatenated definition-major and stably sorted by
//! time, reproducing the from-scratch emission order exactly). Both paths
//! therefore produce bit-identical results; the differential harnesses in
//! `tests/` and the proptests pin that down.
//!
//! A non-monotone query time also falls back to the from-scratch path.
//!
//! Cached state refers to fluent keys by their interned [`KeyId`]s (see
//! [`crate::intern`]): ids are stable for the engine's lifetime — a
//! fallback drops the cache, never the symbol table — so entries stay
//! valid across any number of window slides. Only [`ProbeLog`]s may carry
//! owned keys, for probes of keys that had not been interned when the
//! probe ran.
//!
//! [`ProbeLog`]: crate::view::ProbeLog

use maritime_stream::Timestamp;

use crate::intern::{IdMap, KeyId};
use crate::intervals::IntervalList;
use crate::view::ProbeLog;

/// How [`Engine::recognize_at`](crate::Engine::recognize_at) evaluates a
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-derive every fluent and derived event from the full working
    /// memory at each query (the paper's §4.2 behaviour).
    #[default]
    FromScratch,
    /// Replay memoised rule evaluations from the previous query and run
    /// rules only for the delta and for invalidated triggers; falls back
    /// to from-scratch on late arrivals. Output is bit-identical.
    Incremental,
}

/// One memoised rule evaluation of a fluent stratum: what the stratum's
/// `initiatedAt`/`terminatedAt` rules produced for one trigger, plus the
/// view probes they made while doing so.
#[derive(Debug, Clone)]
pub struct PointEntry<K> {
    /// The trigger time; emissions are points at this time.
    pub t: Timestamp,
    /// Fluent keys initiated at `t`, interned.
    pub inits: Vec<KeyId>,
    /// Fluent keys terminated at `t` (before the rule-(2) expansion,
    /// which is recomputed from the merged initiations at every query).
    pub terms: Vec<KeyId>,
    /// Every view probe the rules made; replay is valid only while these
    /// answers are unchanged.
    pub probes: ProbeLog<K>,
}

/// One memoised derived-event evaluation: the emissions of every
/// definition for one trigger, plus the view probes made along the way.
#[derive(Debug, Clone)]
pub struct DerivedEntry<K, D> {
    /// The trigger time; emissions happen at this time.
    pub t: Timestamp,
    /// `(definition index, emitted events)` — only definitions that
    /// emitted something, in definition order.
    pub emits: Vec<(usize, Vec<D>)>,
    /// Every view probe the definitions' rules made.
    pub probes: ProbeLog<K>,
}

/// Checkpointed state of one stratum.
#[derive(Debug, Clone)]
pub struct StratumCache<K> {
    /// Initiation points per key from *non-probing* input-event triggers,
    /// each list sorted and deduplicated. These replay wholesale: the
    /// next query evicts the points at or before its window start and
    /// appends the delta — no per-trigger work for the retained prefix.
    pub ev_inits: IdMap<Vec<Timestamp>>,
    /// Termination points per key from non-probing input-event triggers.
    pub ev_terms: IdMap<Vec<Timestamp>>,
    /// Materialised event-trigger entries, `(snapshot index, entry)` in
    /// index order — only triggers whose rules probed the view, which
    /// are the only ones that can change their mind.
    pub events: Vec<(usize, PointEntry<K>)>,
    /// Sparse boundary-trigger entries in the boundary list's
    /// `(t, is_end, key)` order; identity is that tuple.
    pub boundary: Vec<(bool, KeyId, PointEntry<K>)>,
    /// The stratum's interval lists as computed at the checkpoint, used
    /// to detect changed keys after the next query's rebuild.
    pub fluents: IdMap<IntervalList>,
}

// Manual impl: the derive would demand `K: Default` for no reason.
impl<K> Default for StratumCache<K> {
    fn default() -> Self {
        Self {
            ev_inits: IdMap::default(),
            ev_terms: IdMap::default(),
            events: Vec::new(),
            boundary: Vec::new(),
            fluents: IdMap::default(),
        }
    }
}

/// Everything the incremental engine persists between queries.
#[derive(Debug, Clone)]
pub struct EngineCache<K, D> {
    /// The previous query time; all cached state covers `t ≤ checkpoint`.
    pub checkpoint: Timestamp,
    /// Size of the window snapshot at the checkpoint. The next query's
    /// eviction count is `snapshot_len − delta_from`, the uniform shift
    /// applied to every cached snapshot index.
    pub snapshot_len: usize,
    /// One entry per stratum, in stratification order.
    pub strata: Vec<StratumCache<K>>,
    /// Sparse derived-phase entries per input event, `(snapshot index,
    /// entry)` in index order.
    pub derived_events: Vec<(usize, DerivedEntry<K, D>)>,
    /// Sparse derived-phase entries per boundary trigger (all strata), in
    /// the boundary list's `(t, is_end, key)` order.
    pub derived_boundary: Vec<(bool, KeyId, DerivedEntry<K, D>)>,
}

/// Counters describing how queries were actually evaluated; useful for
/// benches and for asserting that a scenario exercised the fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Queries answered from the checkpointed delta path.
    pub incremental: usize,
    /// Queries answered by a full recompute (first query, late arrival,
    /// non-monotone query time, or `FromScratch` strategy).
    pub full: usize,
    /// Rule-set evaluations actually executed (one per trigger per
    /// stratum, plus one per trigger for the derived phase).
    pub triggers_evaluated: usize,
    /// Materialised entries replayed from the cache without running any
    /// rule. Triggers whose empty outcome replays implicitly (never
    /// materialised) are counted in neither bucket.
    pub triggers_reused: usize,
}
