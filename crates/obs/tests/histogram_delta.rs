//! Property test for [`Histogram::delta_since`]: windowed read-out must
//! be *additive* — over any partition of a recording sequence into
//! intervals, the cumulative `count` and `sum` equal the sum of the
//! per-interval deltas, and no delta is ever negative. This is the
//! contract the telemetry sampler depends on: any number of samplers can
//! window the same histogram concurrently without resetting it and
//! without double- or under-counting.

use maritime_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cumulative_equals_sum_of_deltas(
        // Values to record, in order, with cut points partitioning them
        // into sampling intervals.
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        cuts in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let h = Histogram::new();
        let mut cut_at: Vec<usize> = cuts
            .iter()
            .map(|&i| (i as usize) % (values.len() + 1))
            .collect();
        cut_at.push(values.len());
        cut_at.sort_unstable();
        cut_at.dedup();

        let mut base = h.snapshot();
        let mut next = 0usize;
        let mut delta_count = 0u64;
        let mut delta_sum = 0u64;
        for &cut in &cut_at {
            while next < cut {
                h.record(values[next]);
                next += 1;
            }
            let d = h.delta_since(&base);
            delta_count += d.count;
            delta_sum += d.sum;
            // Per-interval exactness, not just additivity in aggregate.
            let interval = &values[cut - (d.count as usize)..cut];
            prop_assert_eq!(d.sum, interval.iter().sum::<u64>());
            if d.count > 0 {
                let mean = d.mean();
                let lo = *interval.iter().min().unwrap() as f64;
                let hi = *interval.iter().max().unwrap() as f64;
                prop_assert!(mean >= lo && mean <= hi, "mean {mean} outside [{lo}, {hi}]");
            }
            base = h.snapshot();
        }

        prop_assert_eq!(delta_count, values.len() as u64);
        prop_assert_eq!(delta_sum, values.iter().sum::<u64>());
        prop_assert_eq!(h.count(), delta_count);
        prop_assert_eq!(h.sum(), delta_sum);
    }

    #[test]
    fn empty_intervals_read_as_zero(values in prop::collection::vec(0u64..10_000, 0..50)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let quiet = h.delta_since(&h.snapshot());
        prop_assert_eq!(
            quiet,
            HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, p50: 0, p90: 0, p99: 0 }
        );
    }
}
