//! Golden-file test for the snapshot encoders.
//!
//! Both encoders promise byte-stable output (entries sorted by name, fixed
//! field order), so they are diffed verbatim against checked-in fixtures.
//! If an encoder change is intentional, regenerate the fixtures by running
//! this test with `OBS_BLESS=1` and commit the diff.

use maritime_obs::{encode, Descriptor, MetricKind, MetricsRegistry};

/// A small registry with one metric of each kind, including values that
/// exercise histogram bucketing above the exact range.
fn golden_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::with_catalog(&[
        Descriptor {
            name: "ais_positions_total",
            kind: MetricKind::Counter,
            unit: "reports",
            help: "Position reports decoded",
        },
        Descriptor {
            name: "tracker_active_vessels",
            kind: MetricKind::Gauge,
            unit: "vessels",
            help: "Vessels currently tracked",
        },
        Descriptor {
            name: "rtec_query_ns",
            kind: MetricKind::Histogram,
            unit: "ns",
            help: "Wall time per recognition query",
        },
    ]);
    reg.counter("ais_positions_total").add(12_345);
    reg.gauge("tracker_active_vessels").set(-3);
    for v in [17u64, 1_000, 65_536, 1_000_000, 123_456_789] {
        reg.histogram("rtec_query_ns").record(v);
    }
    reg
}

fn check(actual: &str, fixture: &str, golden: &str) {
    if std::env::var_os("OBS_BLESS").is_some() {
        let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("bless fixture");
        return;
    }
    assert_eq!(
        actual, golden,
        "{fixture} drifted; run with OBS_BLESS=1 to regenerate if intentional"
    );
}

#[test]
fn prometheus_text_matches_golden() {
    let text = encode::prometheus_text(&golden_registry().snapshot());
    check(
        &text,
        "golden.prom",
        include_str!("fixtures/golden.prom"),
    );
}

#[test]
fn json_matches_golden() {
    let text = encode::json(&golden_registry().snapshot());
    check(&text, "golden.json", include_str!("fixtures/golden.json"));
}
