//! Golden-file test for the Chrome Trace Event encoder.
//!
//! `chrome::encode` promises byte-stable output for a given span list
//! (fixed field order, no whitespace variation), so a representative
//! timeline — multiple threads, out-of-order insertion, a name needing
//! JSON escaping, zero-duration and large spans — is diffed verbatim
//! against a checked-in fixture. If an encoder change is intentional,
//! regenerate with `OBS_BLESS=1` and commit the diff.

use maritime_obs::chrome::{self, TimelineSpan};

/// A fixed span list covering the encoder's edge cases. Deliberately not
/// sorted: `encode` renders exactly what it is given, in order.
fn golden_spans() -> Vec<TimelineSpan> {
    vec![
        TimelineSpan { name: "slide", tid: 1, ts_us: 0, dur_us: 1_250 },
        TimelineSpan { name: "track", tid: 1, ts_us: 10, dur_us: 700 },
        TimelineSpan { name: "tracker_slide_ns", tid: 2, ts_us: 15, dur_us: 680 },
        TimelineSpan { name: "tracker_slide_ns", tid: 3, ts_us: 15, dur_us: 655 },
        TimelineSpan { name: "recognize", tid: 1, ts_us: 800, dur_us: 0 },
        TimelineSpan { name: "odd \"stage\"\n", tid: 1, ts_us: 900, dur_us: 350 },
        TimelineSpan { name: "rtec_query_ns", tid: 1, ts_us: 901, dur_us: u64::MAX },
    ]
}

#[test]
fn chrome_trace_matches_golden() {
    let actual = chrome::encode(&golden_spans());
    if std::env::var_os("OBS_BLESS").is_some() {
        let path = format!(
            "{}/tests/fixtures/golden_trace.json",
            env!("CARGO_MANIFEST_DIR")
        );
        std::fs::write(&path, &actual).expect("bless fixture");
        return;
    }
    assert_eq!(
        actual,
        include_str!("fixtures/golden_trace.json"),
        "golden_trace.json drifted; run with OBS_BLESS=1 to regenerate if intentional"
    );
}
