//! Keeps `OBSERVABILITY.md` and the metric catalog in lockstep.
//!
//! Every metric in [`maritime_obs::names::CATALOG`] and every labeled
//! family in [`maritime_obs::names::FAMILIES`] must be documented in the
//! handbook, and every identifier in the handbook that *looks like* a
//! metric name (stage prefix + snake_case) must exist in the catalog or
//! the family list — so renames, additions, and removals all fail this
//! test until the handbook is updated.

use std::collections::BTreeSet;

use maritime_obs::names::{CATALOG, FAMILIES};

const HANDBOOK: &str = include_str!("../../../OBSERVABILITY.md");

const PREFIXES: &[&str] = &[
    "ais_", "tracker_", "shard_", "stream_", "geo_", "modstore_", "rtec_", "cer_", "pipeline_",
    "trace_", "chaos_", "serve_",
];

/// Identifier-shaped tokens in the handbook that carry a stage prefix.
/// Only backticked spans are considered, which is how the handbook cites
/// metric names; prose mentions stage names ("tracker slides") freely.
fn documented_names() -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for span in HANDBOOK.split('`').skip(1).step_by(2) {
        // A cited name may carry a field accessor, e.g. `rtec_query_ns.p99`.
        let token: String = span
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if PREFIXES.iter().any(|p| token.starts_with(p)) && token.contains('_') {
            names.insert(token);
        }
    }
    names
}

/// Catalog metrics plus labeled-family base names: everything the
/// registry can emit, and everything the handbook must cover.
fn known_names() -> BTreeSet<&'static str> {
    CATALOG
        .iter()
        .map(|d| d.name)
        .chain(FAMILIES.iter().map(|f| f.name))
        .collect()
}

#[test]
fn every_catalog_metric_is_documented() {
    let documented = documented_names();
    let missing: Vec<&str> = known_names()
        .into_iter()
        .filter(|n| !documented.contains(*n))
        .collect();
    assert!(
        missing.is_empty(),
        "metrics missing from OBSERVABILITY.md: {missing:?}"
    );
}

#[test]
fn every_documented_metric_exists() {
    let known = known_names();
    let phantom: Vec<String> = documented_names()
        .into_iter()
        .filter(|n| !known.contains(n.as_str()))
        .collect();
    assert!(
        phantom.is_empty(),
        "OBSERVABILITY.md cites metrics not in the catalog: {phantom:?}"
    );
}
