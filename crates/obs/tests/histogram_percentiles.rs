//! Property test: histogram percentile read-out brackets the exact
//! order-statistic within the log-linear design error.
//!
//! For any recorded multiset and any quantile q, `value_at_quantile(q)`
//! must be ≥ the exact q-th order statistic (the walk stops in the bucket
//! containing it, and reports that bucket's upper bound) and must not
//! overshoot by more than one bucket width (≤ 1/32 relative) — clamped to
//! the recorded maximum.

use maritime_obs::Histogram;
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank rule:
/// rank = max(1, ceil(q·n)), 1-based.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn percentiles_bracket_exact_order_statistics(
        mut values in prop::collection::vec(0u64..=1u64 << 40, 1..200),
        q in 0.01f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let max = *values.last().unwrap();

        let exact = exact_quantile(&values, q);
        let got = h.value_at_quantile(q);
        // Never below the exact statistic...
        prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
        // ...and at most one bucket above it (1/32 relative + 1 for the
        // sub-linear lowest octave), clamped to the recorded max.
        let slack = exact / 32 + 1;
        prop_assert!(
            got <= (exact + slack).min(max),
            "q={q}: got {got} > exact {exact} + slack {slack} (max {max})"
        );
    }

    #[test]
    fn count_sum_min_max_are_exact(values in prop::collection::vec(0u64..=1u64 << 40, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }
}
