//! Snapshot encoders: Prometheus text exposition and JSON.
//!
//! Both encoders are hand-rolled over [`Snapshot`] — the obs crate links
//! into every hot path and must stay dependency-free, and the formats are
//! small enough that a serializer would be more code than the writer.
//! Output is deterministic (entries sorted by name, fixed field order), so
//! golden-file tests can diff it byte-for-byte.
//!
//! Histograms are exposed in Prometheus *summary* form (pre-computed
//! quantiles plus `_sum`/`_count`): the read-out side of the log-linear
//! histogram already collapses buckets to percentiles, and a summary keeps
//! scrape payloads a constant size per metric.

use std::fmt::Write as _;

use crate::registry::{MetricValue, Snapshot};

/// Encodes a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Counters and gauges map directly; histograms are exposed as
/// summaries with `quantile` labels.
#[must_use]
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for e in &snapshot.entries {
        let d = e.descriptor;
        if !d.help.is_empty() {
            let unit = if d.unit.is_empty() {
                String::new()
            } else {
                format!(" [{}]", d.unit)
            };
            let _ = writeln!(out, "# HELP {} {}{unit}", d.name, d.help);
        }
        match e.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {} counter", d.name);
                let _ = writeln!(out, "{} {v}", d.name);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {} gauge", d.name);
                let _ = writeln!(out, "{} {v}", d.name);
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {} summary", d.name);
                let _ = writeln!(out, "{}{{quantile=\"0.5\"}} {}", d.name, h.p50);
                let _ = writeln!(out, "{}{{quantile=\"0.9\"}} {}", d.name, h.p90);
                let _ = writeln!(out, "{}{{quantile=\"0.99\"}} {}", d.name, h.p99);
                let _ = writeln!(out, "{}_sum {}", d.name, h.sum);
                let _ = writeln!(out, "{}_count {}", d.name, h.count);
            }
        }
    }
    out
}

/// Encodes a snapshot as a JSON object keyed by metric name, sorted, with
/// a fixed field order per metric — byte-stable for golden-file diffing
/// and trivially machine-readable (`jq '.rtec_query_ns.p99'`).
#[must_use]
pub fn json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    for (i, e) in snapshot.entries.iter().enumerate() {
        let d = e.descriptor;
        let _ = write!(
            out,
            "  {}: {{\"type\": {}, \"unit\": {}, ",
            json_str(d.name),
            json_str(match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            }),
            json_str(d.unit),
        );
        match e.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                );
            }
        }
        let comma = if i + 1 == snapshot.entries.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "}}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Quotes and escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Descriptor, MetricKind, MetricsRegistry};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::with_catalog(&[
            Descriptor {
                name: "ais_positions_total",
                kind: MetricKind::Counter,
                unit: "reports",
                help: "Position reports decoded",
            },
            Descriptor {
                name: "tracker_active_vessels",
                kind: MetricKind::Gauge,
                unit: "vessels",
                help: "Vessels currently tracked",
            },
            Descriptor {
                name: "rtec_query_ns",
                kind: MetricKind::Histogram,
                unit: "ns",
                help: "Wall time per recognition query",
            },
        ]);
        reg.counter("ais_positions_total").add(120);
        reg.gauge("tracker_active_vessels").set(8);
        for v in [100u64, 200, 300] {
            reg.histogram("rtec_query_ns").record(v);
        }
        reg
    }

    #[test]
    fn prometheus_has_type_lines_and_quantiles() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE ais_positions_total counter"));
        assert!(text.contains("ais_positions_total 120"));
        assert!(text.contains("# TYPE tracker_active_vessels gauge"));
        assert!(text.contains("# TYPE rtec_query_ns summary"));
        assert!(text.contains("rtec_query_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rtec_query_ns_sum 600"));
        assert!(text.contains("rtec_query_ns_count 3"));
    }

    #[test]
    fn json_is_sorted_and_parsable_shape() {
        let text = json(&sample_registry().snapshot());
        let ais = text.find("ais_positions_total").unwrap();
        let rtec = text.find("rtec_query_ns").unwrap();
        let tracker = text.find("tracker_active_vessels").unwrap();
        assert!(ais < rtec && rtec < tracker, "entries must sort by name");
        assert!(text.contains("\"value\": 120"));
        assert!(text.contains("\"count\": 3, \"sum\": 600"));
        assert!(text.ends_with("}\n"));
        // No trailing comma before the closing brace.
        assert!(!text.contains(",\n}"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
