//! Snapshot encoders: Prometheus text exposition and JSON.
//!
//! Both encoders are hand-rolled over [`Snapshot`] — the obs crate links
//! into every hot path and must stay dependency-free, and the formats are
//! small enough that a serializer would be more code than the writer.
//! Output is deterministic (entries sorted by name, fixed field order), so
//! golden-file tests can diff it byte-for-byte.
//!
//! Histograms are exposed in Prometheus *summary* form (pre-computed
//! quantiles plus `_sum`/`_count`): the read-out side of the log-linear
//! histogram already collapses buckets to percentiles, and a summary keeps
//! scrape payloads a constant size per metric.

use std::fmt::Write as _;

use crate::registry::{MetricValue, Snapshot};

/// Splits a labeled-family member name (`base{label="v"}`) into its base
/// and label part; a plain name has no label part.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Encodes a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Counters and gauges map directly; histograms are exposed as
/// summaries with `quantile` labels. Labeled-family members (names of the
/// form `base{label="v"}`, which sort adjacently) share one `# HELP` /
/// `# TYPE` block per base name, and histogram members merge `quantile`
/// into their existing label set — so the output stays parseable by a
/// real Prometheus scraper.
#[must_use]
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_base: Option<&str> = None;
    for e in &snapshot.entries {
        let d = e.descriptor;
        let (base, labels) = split_labels(d.name);
        if last_base != Some(base) {
            last_base = Some(base);
            if !d.help.is_empty() {
                let unit = if d.unit.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", d.unit)
                };
                let _ = writeln!(out, "# HELP {base} {}{unit}", d.help);
            }
            let ty = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# TYPE {base} {ty}");
        }
        match e.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{} {v}", d.name);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{} {v}", d.name);
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    match labels {
                        Some(l) => {
                            let _ = writeln!(out, "{base}{{{l},quantile=\"{q}\"}} {v}");
                        }
                        None => {
                            let _ = writeln!(out, "{base}{{quantile=\"{q}\"}} {v}");
                        }
                    }
                }
                match labels {
                    Some(l) => {
                        let _ = writeln!(out, "{base}_sum{{{l}}} {}", h.sum);
                        let _ = writeln!(out, "{base}_count{{{l}}} {}", h.count);
                    }
                    None => {
                        let _ = writeln!(out, "{base}_sum {}", h.sum);
                        let _ = writeln!(out, "{base}_count {}", h.count);
                    }
                }
            }
        }
    }
    out
}

/// Encodes a snapshot as a JSON object keyed by metric name, sorted, with
/// a fixed field order per metric — byte-stable for golden-file diffing
/// and trivially machine-readable (`jq '.rtec_query_ns.p99'`).
#[must_use]
pub fn json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    for (i, e) in snapshot.entries.iter().enumerate() {
        let d = e.descriptor;
        let _ = write!(
            out,
            "  {}: {{\"type\": {}, \"unit\": {}, ",
            json_str(d.name),
            json_str(match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            }),
            json_str(d.unit),
        );
        match e.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                );
            }
        }
        let comma = if i + 1 == snapshot.entries.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "}}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Quotes and escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Descriptor, MetricKind, MetricsRegistry};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::with_catalog(&[
            Descriptor {
                name: "ais_positions_total",
                kind: MetricKind::Counter,
                unit: "reports",
                help: "Position reports decoded",
            },
            Descriptor {
                name: "tracker_active_vessels",
                kind: MetricKind::Gauge,
                unit: "vessels",
                help: "Vessels currently tracked",
            },
            Descriptor {
                name: "rtec_query_ns",
                kind: MetricKind::Histogram,
                unit: "ns",
                help: "Wall time per recognition query",
            },
        ]);
        reg.counter("ais_positions_total").add(120);
        reg.gauge("tracker_active_vessels").set(8);
        for v in [100u64, 200, 300] {
            reg.histogram("rtec_query_ns").record(v);
        }
        reg
    }

    #[test]
    fn prometheus_has_type_lines_and_quantiles() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE ais_positions_total counter"));
        assert!(text.contains("ais_positions_total 120"));
        assert!(text.contains("# TYPE tracker_active_vessels gauge"));
        assert!(text.contains("# TYPE rtec_query_ns summary"));
        assert!(text.contains("rtec_query_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rtec_query_ns_sum 600"));
        assert!(text.contains("rtec_query_ns_count 3"));
    }

    #[test]
    fn json_is_sorted_and_parsable_shape() {
        let text = json(&sample_registry().snapshot());
        let ais = text.find("ais_positions_total").unwrap();
        let rtec = text.find("rtec_query_ns").unwrap();
        let tracker = text.find("tracker_active_vessels").unwrap();
        assert!(ais < rtec && rtec < tracker, "entries must sort by name");
        assert!(text.contains("\"value\": 120"));
        assert!(text.contains("\"count\": 3, \"sum\": 600"));
        assert!(text.ends_with("}\n"));
        // No trailing comma before the closing brace.
        assert!(!text.contains(",\n}"));
    }

    #[test]
    fn labeled_families_share_one_help_type_block() {
        use crate::registry::FamilyDescriptor;
        let reg = MetricsRegistry::new();
        let lines = FamilyDescriptor {
            name: "serve_source_lines_total",
            label: "source",
            kind: MetricKind::Counter,
            unit: "lines",
            help: "Raw lines per source",
        };
        let lat = FamilyDescriptor {
            name: "cer_rule_latency_ns",
            label: "rule",
            kind: MetricKind::Histogram,
            unit: "ns",
            help: "Recognition latency by rule",
        };
        reg.labeled_counter(&lines, "0").add(4);
        reg.labeled_counter(&lines, "1").add(9);
        reg.labeled_histogram(&lat, "suspicious").record(1000);
        let text = prometheus_text(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE serve_source_lines_total counter").count(),
            1,
            "one TYPE block for the whole family:\n{text}"
        );
        assert!(text.contains("serve_source_lines_total{source=\"0\"} 4"));
        assert!(text.contains("serve_source_lines_total{source=\"1\"} 9"));
        // Histogram members merge quantile into the label set and suffix
        // _sum/_count on the base name.
        assert!(text.contains("cer_rule_latency_ns{rule=\"suspicious\",quantile=\"0.99\"}"));
        assert!(text.contains("cer_rule_latency_ns_sum{rule=\"suspicious\"} 1000"));
        assert!(text.contains("cer_rule_latency_ns_count{rule=\"suspicious\"} 1"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
