//! Crash-dump flight recorder.
//!
//! A fixed-capacity ring buffer of recent structured trace events —
//! decode errors, shard backpressure stalls, window slides, recognition
//! deadline overruns — kept continuously so that *when* something goes
//! wrong the last N interesting things the pipeline did are already in
//! memory, like an aircraft flight recorder. The ring dumps to JSON:
//!
//! * on an anomaly trigger ([`trigger_dump`]): recognition deadline
//!   overrun, channel-full stall, or panic (see [`install_panic_hook`]),
//!   writing to the path registered with [`arm_dump`];
//! * on demand ([`dump_to`]): `surveil --flight-dump <path>`.
//!
//! Writers claim a slot with one `fetch_add` on the sequence counter —
//! the ring itself is lock-free and writers never wait on each other for
//! a slot; only the claimed slot's payload swap takes an (uncontended in
//! practice) per-slot lock, because event details are heap strings.
//! Recording is gated on the crate's global [`enabled`](crate::enabled)
//! switch and detail strings are built lazily, so a disabled pipeline
//! pays one load and a predicted branch per would-be event.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::encode::json_str;

/// Events retained by the global recorder (the newest
/// [`DEFAULT_CAPACITY`] survive; older ones are overwritten).
pub const DEFAULT_CAPACITY: usize = 1024;

/// What kind of thing happened. The set mirrors the pipeline's known
/// trouble spots; `Note` is the escape hatch for ad-hoc annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// An AIS sentence failed to decode (malformed, bad checksum, …).
    DecodeError,
    /// A feeder blocked on a full bounded shard channel.
    Backpressure,
    /// A sliding-window advance (normal, but invaluable context).
    WindowSlide,
    /// A recognition query exceeded the configured deadline.
    RecognitionOverrun,
    /// A thread panicked (recorded by the panic hook).
    Panic,
    /// Anything else worth remembering.
    Note,
}

impl FlightKind {
    /// Stable lowercase identifier used in dumps.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::DecodeError => "decode_error",
            FlightKind::Backpressure => "backpressure",
            FlightKind::WindowSlide => "window_slide",
            FlightKind::RecognitionOverrun => "recognition_overrun",
            FlightKind::Panic => "panic",
            FlightKind::Note => "note",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total events ever recorded, 0-based).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Event category.
    pub kind: FlightKind,
    /// Free-form, human-oriented detail line.
    pub detail: String,
}

/// A fixed-capacity ring of [`FlightEvent`]s. Most callers use the
/// process-global instance via [`record`]; owning one directly is for
/// tests.
pub struct FlightRecorder {
    epoch: Instant,
    next: AtomicU64,
    slots: Vec<Mutex<Option<FlightEvent>>>,
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent events.
    ///
    /// # Panics
    /// If `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        Self {
            epoch: Instant::now(),
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (≥ retained count).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Appends an event, overwriting the oldest once the ring is full.
    pub fn record(&self, kind: FlightKind, detail: String) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let at_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let slot = &self.slots[usize::try_from(seq).unwrap_or(usize::MAX) % self.slots.len()];
        *slot.lock().expect("flight slot poisoned") = Some(FlightEvent {
            seq,
            at_us,
            kind,
            detail,
        });
    }

    /// The retained events in sequence order (oldest first). Events being
    /// overwritten concurrently may be missing; order is still strict.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("flight slot poisoned").clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Serializes the retained events as a JSON document. `reason` names
    /// the trigger ("panic", "recognition-overrun", "on-demand", …).
    #[must_use]
    pub fn dump_json(&self, reason: &str) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(128 + events.len() * 96);
        out.push_str("{\"reason\":");
        out.push_str(&json_str(reason));
        out.push_str(&format!(
            ",\"recorded\":{},\"capacity\":{},\"events\":[",
            self.recorded(),
            self.capacity()
        ));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"seq\":{},\"at_us\":{},\"kind\":{},\"detail\":{}}}",
                e.seq,
                e.at_us,
                json_str(e.kind.as_str()),
                json_str(&e.detail)
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
static ARMED: Mutex<Option<PathBuf>> = Mutex::new(None);
static PANIC_HOOK: Once = Once::new();

/// The process-global recorder ([`DEFAULT_CAPACITY`] slots).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

/// Records an event on the global recorder. The detail string is only
/// built — and the recorder only touched — while recording is enabled.
pub fn record(kind: FlightKind, detail: impl FnOnce() -> String) {
    if !crate::enabled() {
        return;
    }
    recorder().record(kind, detail());
    crate::counter(crate::names::TRACE_FLIGHT_EVENTS).inc();
}

/// Registers the file anomaly triggers dump to. Until armed,
/// [`trigger_dump`] is a no-op, so ad-hoc tools cannot scribble files by
/// surprise.
pub fn arm_dump(path: impl Into<PathBuf>) {
    *ARMED.lock().expect("flight arm lock poisoned") = Some(path.into());
}

/// Dumps the global recorder to the armed path, if any. Returns the path
/// written. Called from anomaly sites (deadline overrun, channel-full
/// stall, panic hook); IO errors are reported on stderr, never panicked
/// on — the recorder must stay harmless at its moment of glory.
pub fn trigger_dump(reason: &str) -> Option<PathBuf> {
    let path = ARMED.lock().expect("flight arm lock poisoned").clone()?;
    match dump_to(&path, reason) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("flight recorder: failed to dump to {}: {e}", path.display());
            None
        }
    }
}

/// Writes the global recorder's JSON dump to `path` (on-demand path,
/// `surveil --flight-dump`).
pub fn dump_to(path: &Path, reason: &str) -> io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, recorder().dump_json(reason))?;
    crate::counter(crate::names::TRACE_FLIGHT_DUMPS).inc();
    Ok(())
}

/// Chains a panic hook that records the panic and fires [`trigger_dump`]
/// before the default hook runs. Installing twice is a no-op.
pub fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            record(FlightKind::Panic, || info.to_string());
            trigger_dump("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(FlightKind::Note, format!("event {i}"));
        }
        let snap = r.snapshot();
        assert_eq!(r.recorded(), 10);
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest four retained, in order");
    }

    #[test]
    fn concurrent_records_all_land() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        r.record(FlightKind::WindowSlide, format!("t{t} i{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.recorded(), 64);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 64);
        // Every sequence number 0..64 present exactly once.
        let mut seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 64);
    }

    #[test]
    fn dump_json_shape() {
        let r = FlightRecorder::new(8);
        r.record(FlightKind::DecodeError, "bad \"checksum\"".to_string());
        r.record(FlightKind::RecognitionOverrun, "q=7200 took 12ms".to_string());
        let dump = r.dump_json("unit-test");
        assert!(dump.starts_with("{\"reason\":\"unit-test\""));
        assert!(dump.contains("\"recorded\":2,\"capacity\":8"));
        assert!(dump.contains("\"kind\":\"decode_error\""));
        assert!(dump.contains("bad \\\"checksum\\\""));
        assert!(dump.contains("\"kind\":\"recognition_overrun\""));
        assert!(dump.trim_end().ends_with("]}"));
    }

    #[test]
    fn armed_dump_fires_on_injected_recognition_overrun() {
        crate::set_enabled(true);
        let path = std::env::temp_dir().join("flight-overrun-injected.json");
        let _ = std::fs::remove_file(&path);
        arm_dump(&path);
        record(FlightKind::RecognitionOverrun, || {
            "q=7200 took 57ms (deadline 10ms)".to_string()
        });
        let written = trigger_dump("recognition-overrun").expect("armed dump must fire");
        assert_eq!(written, path);
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.starts_with("{\"reason\":\"recognition-overrun\""));
        assert!(dump.contains("\"kind\":\"recognition_overrun\""));
        assert!(dump.contains("deadline 10ms"));
        *ARMED.lock().unwrap() = None;
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trigger_dump_without_arming_is_noop() {
        // Other tests may arm the global path; this test only asserts the
        // free function is callable. The unarmed branch is covered by a
        // fresh process in the e2e suite.
        let r = FlightRecorder::new(2);
        assert_eq!(r.snapshot().len(), 0);
    }
}
