//! The canonical metric catalog.
//!
//! Every metric the pipeline emits is declared exactly once here, with its
//! kind, unit, and a one-line help string. The global registry pre-seeds
//! itself from [`CATALOG`] so a snapshot always lists the full set (zeros
//! included), the encoders have help/unit text to hand, and the
//! `OBSERVABILITY.md` handbook can be diffed against this list by a test.
//!
//! Naming follows Prometheus conventions: `snake_case`, a stage prefix
//! (`ais_`, `tracker_`, `shard_`, `stream_`, `geo_`, `modstore_`, `rtec_`,
//! `cer_`, `pipeline_`, `trace_`, `chaos_`, `serve_`), `_total` suffix on
//! counters, `_ns` suffix on nanosecond histograms.

//!
//! Labeled families ([`FAMILIES`]) follow the same conventions on their
//! base name; members carry the label in braces
//! (`serve_source_lines_total{source="3"}`) and inherit the family's
//! unit/help.

use crate::registry::{Descriptor, FamilyDescriptor, MetricKind};

// ---- AIS decode ----------------------------------------------------------

/// NMEA sentences scanned by the AIS decoder.
pub const AIS_SENTENCES: &str = "ais_sentences_total";
/// Position reports decoded and admitted downstream.
pub const AIS_POSITIONS: &str = "ais_positions_total";
/// Sentences rejected as structurally malformed.
pub const AIS_MALFORMED: &str = "ais_malformed_total";
/// Sentences rejected on NMEA checksum mismatch.
pub const AIS_BAD_CHECKSUM: &str = "ais_bad_checksum_total";
/// Static/voyage declarations (message type 5) decoded.
pub const AIS_VOYAGE_DECLARATIONS: &str = "ais_voyage_declarations_total";
/// Multi-fragment messages abandoned with fragments missing (truncated).
pub const AIS_TRUNCATED_FRAGMENTS: &str = "ais_truncated_fragments_total";

// ---- Trajectory tracker --------------------------------------------------

/// Raw position updates ingested by the mobility tracker.
pub const TRACKER_POINTS_INGESTED: &str = "tracker_points_ingested_total";
/// Critical points emitted (the compressed trajectory synopsis).
pub const TRACKER_CRITICAL_POINTS: &str = "tracker_critical_points_total";
/// Position updates dropped by the noise/outlier filter.
pub const TRACKER_NOISE_DROPS: &str = "tracker_noise_drops_total";
/// Vessels currently tracked.
pub const TRACKER_ACTIVE_VESSELS: &str = "tracker_active_vessels";
/// Critical points currently resident in the tracking window.
pub const TRACKER_WINDOW_POINTS: &str = "tracker_window_points";
/// Critical points evicted as the tracking window slid forward.
pub const TRACKER_EVICTED_POINTS: &str = "tracker_evicted_points_total";
/// Wall time per tracker window slide.
pub const TRACKER_SLIDE_NS: &str = "tracker_slide_ns";

// ---- Sharded tracker -----------------------------------------------------

/// Per-shard batches routed by the MMSI-hash router.
pub const SHARD_BATCHES_ROUTED: &str = "shard_batches_routed_total";
/// Slide/finish commands sent to shard workers but not yet completed.
pub const SHARD_COMMANDS_INFLIGHT: &str = "shard_commands_inflight";
/// Time the feeder spent blocked sending into a shard's bounded channel.
pub const SHARD_SEND_WAIT_NS: &str = "shard_send_wait_ns";
/// Largest-minus-smallest routed batch size in the most recent slide.
pub const SHARD_BATCH_IMBALANCE: &str = "shard_batch_imbalance";

// ---- Stream windowing ----------------------------------------------------

/// Window slide operations across all sliding windows.
pub const STREAM_WINDOW_SLIDES: &str = "stream_window_slides_total";
/// Items evicted from sliding windows by slides.
pub const STREAM_WINDOW_EVICTIONS: &str = "stream_window_evictions_total";
/// Input batches formed by the slide batcher.
pub const STREAM_BATCHES: &str = "stream_batches_total";
/// Items admitted past the watermark by the admission buffer (late).
pub const STREAM_LATE_ADMISSIONS: &str = "stream_late_admissions_total";
/// Event-time lag (watermark minus item timestamp) of items released by
/// the admission buffer, in nanoseconds of event time.
pub const STREAM_ADMISSION_LAG_NS: &str = "stream_admission_lag_ns";
/// Items currently held back by the admission buffer.
pub const STREAM_ADMISSION_BUFFERED: &str = "stream_admission_buffered";

// ---- Geo spatial index ---------------------------------------------------

/// Neighbour-candidate lookups served by the grid index.
pub const GEO_GRID_LOOKUPS: &str = "geo_grid_lookups_total";

// ---- Trajectory store ----------------------------------------------------

/// Critical points staged into the trajectory store.
pub const MODSTORE_POINTS_STAGED: &str = "modstore_points_staged_total";
/// Reconstructed trips loaded out of the trajectory store.
pub const MODSTORE_TRIPS_LOADED: &str = "modstore_trips_loaded_total";

// ---- RTEC engine ---------------------------------------------------------

/// Recognition queries answered by the RTEC engine.
pub const RTEC_QUERIES: &str = "rtec_queries_total";
/// Queries answered via the incremental (checkpoint-replay) path.
pub const RTEC_QUERIES_INCREMENTAL: &str = "rtec_queries_incremental_total";
/// Rule trigger evaluations performed.
pub const RTEC_RULE_EVALUATIONS: &str = "rtec_rule_evaluations_total";
/// Trigger evaluations skipped by replaying cached results.
pub const RTEC_CACHE_REPLAYS: &str = "rtec_cache_replays_total";
/// Cached entries invalidated by changed keys and re-evaluated.
pub const RTEC_CACHE_INVALIDATIONS: &str = "rtec_cache_invalidations_total";
/// Wall time per recognition query.
pub const RTEC_QUERY_NS: &str = "rtec_query_ns";
/// Events resident in the engine's working memory (window).
pub const RTEC_WORKING_MEMORY_EVENTS: &str = "rtec_working_memory_events";
/// Distinct fluent keys interned in engine symbol tables.
pub const RTEC_INTERNED_KEYS: &str = "rtec_interned_keys";

// ---- Complex event recognition -------------------------------------------

/// Low-level events fed into the maritime recognizer.
pub const CER_INPUT_EVENTS: &str = "cer_input_events_total";
/// Composite-event intervals recognized (suspicious + illegal fishing).
pub const CER_CE_RECOGNIZED: &str = "cer_ce_recognized_total";
/// Instantaneous alerts raised (illegal shipping, dangerous shipping).
pub const CER_ALERTS: &str = "cer_alerts_total";
/// Vessels handed off between longitude bands by the partition coordinator.
pub const CER_PARTITION_MIGRATIONS: &str = "cer_partition_migrations_total";
/// Size of the most recent engine checkpoint written, bytes.
pub const CER_CHECKPOINT_BYTES: &str = "cer_checkpoint_bytes";
/// Wall time to serialize an engine checkpoint.
pub const CER_CHECKPOINT_WRITE_NS: &str = "cer_checkpoint_write_ns";
/// Wall time to restore an engine from a checkpoint.
pub const CER_CHECKPOINT_RESTORE_NS: &str = "cer_checkpoint_restore_ns";

// ---- Pipeline orchestration ----------------------------------------------

/// Window slides completed by the surveillance pipeline.
pub const PIPELINE_SLIDES: &str = "pipeline_slides_total";
/// Wall time of the tracking phase per slide.
pub const PIPELINE_TRACKING_NS: &str = "pipeline_tracking_ns";
/// Wall time of the store-staging phase per slide.
pub const PIPELINE_STAGING_NS: &str = "pipeline_staging_ns";
/// Wall time of the trip-reconstruction phase per slide.
pub const PIPELINE_RECONSTRUCTION_NS: &str = "pipeline_reconstruction_ns";
/// Wall time of the recognizer-loading phase per slide.
pub const PIPELINE_LOADING_NS: &str = "pipeline_loading_ns";
/// Wall time of the recognition phase per slide.
pub const PIPELINE_RECOGNITION_NS: &str = "pipeline_recognition_ns";
/// End-to-end wall time per slide (all phases).
pub const PIPELINE_SLIDE_NS: &str = "pipeline_slide_ns";
/// Recognition phases that exceeded the configured deadline.
pub const PIPELINE_DEADLINE_OVERRUNS: &str = "pipeline_deadline_overruns_total";

// ---- Tracing -------------------------------------------------------------

/// Structured events captured by the flight recorder.
pub const TRACE_FLIGHT_EVENTS: &str = "trace_flight_events_total";
/// Flight-recorder JSON dumps written (triggered or on demand).
pub const TRACE_FLIGHT_DUMPS: &str = "trace_flight_dumps_total";
/// Stage spans collected onto the Chrome-trace timeline.
pub const TRACE_TIMELINE_SPANS: &str = "trace_timeline_spans_total";
/// CE provenance chains assembled by traced recognition.
pub const TRACE_PROVENANCE_CHAINS: &str = "trace_provenance_chains_total";

// ---- Chaos harness -------------------------------------------------------

/// Perturbation ops applied to sentence streams by the chaos harness.
pub const CHAOS_OPS_APPLIED: &str = "chaos_ops_applied_total";
/// Sentences removed by drop / gap / vessel-drop perturbations.
pub const CHAOS_SENTENCES_DROPPED: &str = "chaos_sentences_dropped_total";
/// Sentences re-sent by the duplication perturbation.
pub const CHAOS_SENTENCES_DUPLICATED: &str = "chaos_sentences_duplicated_total";
/// Sentences damaged by truncation or payload corruption.
pub const CHAOS_SENTENCES_CORRUPTED: &str = "chaos_sentences_corrupted_total";
/// Sentences displaced in arrival time (reorder, jitter, late arrival).
pub const CHAOS_SENTENCES_DELAYED: &str = "chaos_sentences_delayed_total";
/// Metamorphic oracle checks evaluated.
pub const CHAOS_ORACLE_CHECKS: &str = "chaos_oracle_checks_total";
/// Metamorphic oracle checks that found a violation.
pub const CHAOS_ORACLE_FAILURES: &str = "chaos_oracle_failures_total";

// ---- Live server (`surveil serve`) ---------------------------------------

/// NMEA sources (TCP connections / UDP peers) currently connected.
pub const SERVE_SOURCES_CONNECTED: &str = "serve_sources_connected";
/// NMEA sources ever accepted since server start.
pub const SERVE_SOURCES: &str = "serve_sources_total";
/// Raw lines received across all sources (pre-filter).
pub const SERVE_SENTENCES: &str = "serve_sentences_total";
/// Lines dropped by the per-source syntactic filter.
pub const SERVE_FILTERED_LINES: &str = "serve_filtered_lines_total";
/// Lines dropped as cross-source duplicates within the dedup window.
pub const SERVE_DEDUP_DROPS: &str = "serve_dedup_drops_total";
/// Ingest-channel sends that blocked on a full pipeline (backpressure).
pub const SERVE_INGEST_STALLS: &str = "serve_ingest_stalls_total";
/// CE subscribers (TCP + SSE) currently connected.
pub const SERVE_SUBSCRIBERS_CONNECTED: &str = "serve_subscribers_connected";
/// CE subscribers ever accepted since server start.
pub const SERVE_SUBSCRIBERS: &str = "serve_subscribers_total";
/// Events enqueued to subscriber queues (one per event per subscriber).
pub const SERVE_EVENTS_BROADCAST: &str = "serve_events_broadcast_total";
/// Subscribers evicted for not draining their bounded queue.
pub const SERVE_SLOW_EVICTIONS: &str = "serve_slow_evictions_total";
/// Events discarded because a subscriber was evicted mid-stream.
pub const SERVE_DROPPED_EVENTS: &str = "serve_dropped_events_total";
/// HTTP requests answered by the metrics/SSE endpoint.
pub const SERVE_HTTP_REQUESTS: &str = "serve_http_requests_total";
/// End-of-stream flushes processed (`#flush` control lines).
pub const SERVE_FLUSHES: &str = "serve_flushes_total";
/// Wall-clock latency from sentence admission to alert emission, per
/// recognizing slide.
pub const SERVE_E2E_LATENCY_NS: &str = "serve_e2e_latency_ns";
/// Current SLO health state (0 = ok, 1 = degraded, 2 = critical).
pub const SERVE_HEALTH_STATE: &str = "serve_health_state";
/// SLO health state transitions since server start.
pub const SERVE_HEALTH_TRANSITIONS: &str = "serve_health_transitions_total";
/// Telemetry ring samples recorded by the serve driver.
pub const SERVE_SAMPLES: &str = "serve_samples_total";
/// Machine-readable ops alerts broadcast on health transitions.
pub const SERVE_OPS_ALERTS: &str = "serve_ops_alerts_total";

// ---- Labeled families ----------------------------------------------------

/// Raw lines received per source (`source` label).
pub const SERVE_SOURCE_LINES: FamilyDescriptor = fc(
    "serve_source_lines_total",
    "source",
    "lines",
    "Raw lines received from one source (pre-filter)",
);
/// Lines accepted past filter and dedup per source.
pub const SERVE_SOURCE_ACCEPTED: FamilyDescriptor = fc(
    "serve_source_accepted_total",
    "source",
    "lines",
    "Lines from one source accepted past filter and dedup",
);
/// Lines dropped by the syntactic filter per source.
pub const SERVE_SOURCE_FILTERED: FamilyDescriptor = fc(
    "serve_source_filtered_total",
    "source",
    "lines",
    "Lines from one source dropped by the syntactic filter",
);
/// Lines dropped as cross-source duplicates per source.
pub const SERVE_SOURCE_DUPLICATES: FamilyDescriptor = fc(
    "serve_source_duplicates_total",
    "source",
    "lines",
    "Lines from one source dropped as cross-source duplicates",
);
/// Complex events recognized per CE rule (`rule` label).
pub const CER_RULE_RECOGNIZED: FamilyDescriptor = fc(
    "cer_rule_recognized_total",
    "rule",
    "events",
    "Complex events recognized, by CE rule",
);
/// Recognition-phase wall time of slides in which the rule fired.
pub const CER_RULE_LATENCY_NS: FamilyDescriptor = fh(
    "cer_rule_latency_ns",
    "rule",
    "ns",
    "Recognition-phase wall time of slides in which one rule fired",
);

/// Every labeled family the pipeline can emit. Families register members
/// on first use, so a snapshot lists only the label values actually seen.
pub const FAMILIES: &[FamilyDescriptor] = &[
    SERVE_SOURCE_LINES,
    SERVE_SOURCE_ACCEPTED,
    SERVE_SOURCE_FILTERED,
    SERVE_SOURCE_DUPLICATES,
    CER_RULE_RECOGNIZED,
    CER_RULE_LATENCY_NS,
];

/// One catalog row.
const fn c(name: &'static str, unit: &'static str, help: &'static str) -> Descriptor {
    Descriptor {
        name,
        kind: MetricKind::Counter,
        unit,
        help,
    }
}

/// One gauge row.
const fn g(name: &'static str, unit: &'static str, help: &'static str) -> Descriptor {
    Descriptor {
        name,
        kind: MetricKind::Gauge,
        unit,
        help,
    }
}

/// One histogram row.
const fn h(name: &'static str, unit: &'static str, help: &'static str) -> Descriptor {
    Descriptor {
        name,
        kind: MetricKind::Histogram,
        unit,
        help,
    }
}

/// One counter family.
const fn fc(
    name: &'static str,
    label: &'static str,
    unit: &'static str,
    help: &'static str,
) -> FamilyDescriptor {
    FamilyDescriptor {
        name,
        label,
        kind: MetricKind::Counter,
        unit,
        help,
    }
}

/// One histogram family.
const fn fh(
    name: &'static str,
    label: &'static str,
    unit: &'static str,
    help: &'static str,
) -> FamilyDescriptor {
    FamilyDescriptor {
        name,
        label,
        kind: MetricKind::Histogram,
        unit,
        help,
    }
}

/// Every metric the pipeline can emit, in stage order.
pub const CATALOG: &[Descriptor] = &[
    // AIS decode
    c(AIS_SENTENCES, "sentences", "NMEA sentences scanned by the AIS decoder"),
    c(AIS_POSITIONS, "reports", "Position reports decoded and admitted downstream"),
    c(AIS_MALFORMED, "sentences", "Sentences rejected as structurally malformed"),
    c(AIS_BAD_CHECKSUM, "sentences", "Sentences rejected on NMEA checksum mismatch"),
    c(AIS_VOYAGE_DECLARATIONS, "messages", "Static/voyage declarations (type 5) decoded"),
    c(AIS_TRUNCATED_FRAGMENTS, "messages", "Multi-fragment messages abandoned incomplete"),
    // Tracker
    c(TRACKER_POINTS_INGESTED, "points", "Raw position updates ingested by the tracker"),
    c(TRACKER_CRITICAL_POINTS, "points", "Critical points emitted (compressed synopsis)"),
    c(TRACKER_NOISE_DROPS, "points", "Position updates dropped by the noise filter"),
    g(TRACKER_ACTIVE_VESSELS, "vessels", "Vessels currently tracked"),
    g(TRACKER_WINDOW_POINTS, "points", "Critical points resident in the tracking window"),
    c(TRACKER_EVICTED_POINTS, "points", "Critical points evicted by window slides"),
    h(TRACKER_SLIDE_NS, "ns", "Wall time per tracker window slide"),
    // Sharded tracker
    c(SHARD_BATCHES_ROUTED, "batches", "Per-shard batches routed by the MMSI-hash router"),
    g(SHARD_COMMANDS_INFLIGHT, "commands", "Shard commands sent but not yet completed"),
    h(SHARD_SEND_WAIT_NS, "ns", "Feeder blocking time on bounded shard channels"),
    g(SHARD_BATCH_IMBALANCE, "points", "Max-minus-min routed batch size, latest slide"),
    // Stream windowing
    c(STREAM_WINDOW_SLIDES, "slides", "Window slide operations across sliding windows"),
    c(STREAM_WINDOW_EVICTIONS, "items", "Items evicted from sliding windows"),
    c(STREAM_BATCHES, "batches", "Input batches formed by the slide batcher"),
    c(STREAM_LATE_ADMISSIONS, "items", "Items admitted past the watermark (late)"),
    h(STREAM_ADMISSION_LAG_NS, "ns", "Event-time lag of items released by admission"),
    g(STREAM_ADMISSION_BUFFERED, "items", "Items currently held back by admission"),
    // Geo
    c(GEO_GRID_LOOKUPS, "lookups", "Neighbour-candidate lookups on the grid index"),
    // Store
    c(MODSTORE_POINTS_STAGED, "points", "Critical points staged into the trajectory store"),
    c(MODSTORE_TRIPS_LOADED, "trips", "Reconstructed trips loaded from the store"),
    // RTEC
    c(RTEC_QUERIES, "queries", "Recognition queries answered by the RTEC engine"),
    c(RTEC_QUERIES_INCREMENTAL, "queries", "Queries answered via the incremental path"),
    c(RTEC_RULE_EVALUATIONS, "evaluations", "Rule trigger evaluations performed"),
    c(RTEC_CACHE_REPLAYS, "evaluations", "Trigger evaluations skipped via cached results"),
    c(RTEC_CACHE_INVALIDATIONS, "entries", "Cached entries invalidated and re-evaluated"),
    h(RTEC_QUERY_NS, "ns", "Wall time per recognition query"),
    g(RTEC_WORKING_MEMORY_EVENTS, "events", "Events resident in engine working memory"),
    g(RTEC_INTERNED_KEYS, "keys", "Distinct fluent keys interned in engine symbol tables"),
    // CER
    c(CER_INPUT_EVENTS, "events", "Low-level events fed into the maritime recognizer"),
    c(CER_CE_RECOGNIZED, "intervals", "Composite-event intervals recognized"),
    c(CER_ALERTS, "alerts", "Instantaneous alerts raised"),
    c(CER_PARTITION_MIGRATIONS, "vessels", "Vessels handed off between longitude bands"),
    g(CER_CHECKPOINT_BYTES, "bytes", "Size of the most recent engine checkpoint written"),
    h(CER_CHECKPOINT_WRITE_NS, "ns", "Wall time to serialize an engine checkpoint"),
    h(CER_CHECKPOINT_RESTORE_NS, "ns", "Wall time to restore an engine from a checkpoint"),
    // Pipeline
    c(PIPELINE_SLIDES, "slides", "Window slides completed by the pipeline"),
    h(PIPELINE_TRACKING_NS, "ns", "Tracking-phase wall time per slide"),
    h(PIPELINE_STAGING_NS, "ns", "Store-staging-phase wall time per slide"),
    h(PIPELINE_RECONSTRUCTION_NS, "ns", "Trip-reconstruction-phase wall time per slide"),
    h(PIPELINE_LOADING_NS, "ns", "Recognizer-loading-phase wall time per slide"),
    h(PIPELINE_RECOGNITION_NS, "ns", "Recognition-phase wall time per slide"),
    h(PIPELINE_SLIDE_NS, "ns", "End-to-end wall time per slide"),
    c(PIPELINE_DEADLINE_OVERRUNS, "slides", "Recognition phases exceeding the deadline"),
    // Tracing
    c(TRACE_FLIGHT_EVENTS, "events", "Structured events captured by the flight recorder"),
    c(TRACE_FLIGHT_DUMPS, "dumps", "Flight-recorder JSON dumps written"),
    c(TRACE_TIMELINE_SPANS, "spans", "Stage spans collected onto the Chrome-trace timeline"),
    c(TRACE_PROVENANCE_CHAINS, "chains", "CE provenance chains assembled by traced recognition"),
    // Chaos harness
    c(CHAOS_OPS_APPLIED, "ops", "Perturbation ops applied to sentence streams"),
    c(CHAOS_SENTENCES_DROPPED, "sentences", "Sentences removed by drop perturbations"),
    c(CHAOS_SENTENCES_DUPLICATED, "sentences", "Sentences re-sent by duplication"),
    c(CHAOS_SENTENCES_CORRUPTED, "sentences", "Sentences truncated or payload-corrupted"),
    c(CHAOS_SENTENCES_DELAYED, "sentences", "Sentences displaced in arrival time"),
    c(CHAOS_ORACLE_CHECKS, "checks", "Metamorphic oracle checks evaluated"),
    c(CHAOS_ORACLE_FAILURES, "checks", "Metamorphic oracle checks that found a violation"),
    // Live server
    g(SERVE_SOURCES_CONNECTED, "sources", "NMEA sources currently connected"),
    c(SERVE_SOURCES, "sources", "NMEA sources ever accepted since server start"),
    c(SERVE_SENTENCES, "lines", "Raw lines received across all sources (pre-filter)"),
    c(SERVE_FILTERED_LINES, "lines", "Lines dropped by the per-source syntactic filter"),
    c(SERVE_DEDUP_DROPS, "lines", "Lines dropped as cross-source duplicates"),
    c(SERVE_INGEST_STALLS, "sends", "Ingest sends that blocked on a full pipeline"),
    g(SERVE_SUBSCRIBERS_CONNECTED, "subscribers", "CE subscribers currently connected"),
    c(SERVE_SUBSCRIBERS, "subscribers", "CE subscribers ever accepted since server start"),
    c(SERVE_EVENTS_BROADCAST, "events", "Events enqueued to subscriber queues"),
    c(SERVE_SLOW_EVICTIONS, "subscribers", "Subscribers evicted for not draining their queue"),
    c(SERVE_DROPPED_EVENTS, "events", "Events discarded because a subscriber was evicted"),
    c(SERVE_HTTP_REQUESTS, "requests", "HTTP requests answered by the metrics endpoint"),
    c(SERVE_FLUSHES, "flushes", "End-of-stream flushes processed (#flush control)"),
    h(SERVE_E2E_LATENCY_NS, "ns", "Admission-to-alert wall latency per recognizing slide"),
    g(SERVE_HEALTH_STATE, "state", "SLO health state (0 ok, 1 degraded, 2 critical)"),
    c(SERVE_HEALTH_TRANSITIONS, "transitions", "SLO health state transitions"),
    c(SERVE_SAMPLES, "samples", "Telemetry ring samples recorded by the serve driver"),
    c(SERVE_OPS_ALERTS, "alerts", "Machine-readable ops alerts broadcast on transitions"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_names_are_unique() {
        let mut seen = HashSet::new();
        for d in CATALOG {
            assert!(seen.insert(d.name), "duplicate catalog name {}", d.name);
        }
    }

    #[test]
    fn catalog_follows_conventions() {
        let prefixes = [
            "ais_", "tracker_", "shard_", "stream_", "geo_", "modstore_", "rtec_", "cer_",
            "pipeline_", "trace_", "chaos_", "serve_",
        ];
        for d in CATALOG {
            assert!(
                prefixes.iter().any(|p| d.name.starts_with(p)),
                "{} lacks a stage prefix",
                d.name
            );
            match d.kind {
                MetricKind::Counter => assert!(
                    d.name.ends_with("_total"),
                    "counter {} must end in _total",
                    d.name
                ),
                MetricKind::Histogram => assert!(
                    d.name.ends_with("_ns"),
                    "histogram {} must end in _ns",
                    d.name
                ),
                MetricKind::Gauge => assert!(
                    !d.name.ends_with("_total"),
                    "gauge {} must not end in _total",
                    d.name
                ),
            }
            assert!(!d.help.is_empty() && !d.unit.is_empty());
        }
    }

    #[test]
    fn families_follow_conventions() {
        let prefixes = [
            "ais_", "tracker_", "shard_", "stream_", "geo_", "modstore_", "rtec_", "cer_",
            "pipeline_", "trace_", "chaos_", "serve_",
        ];
        let mut seen = HashSet::new();
        for f in FAMILIES {
            assert!(seen.insert(f.name), "duplicate family name {}", f.name);
            assert!(
                CATALOG.iter().all(|d| d.name != f.name),
                "family {} collides with a plain catalog metric",
                f.name
            );
            assert!(
                prefixes.iter().any(|p| f.name.starts_with(p)),
                "{} lacks a stage prefix",
                f.name
            );
            match f.kind {
                MetricKind::Counter => assert!(
                    f.name.ends_with("_total"),
                    "counter family {} must end in _total",
                    f.name
                ),
                MetricKind::Histogram => assert!(
                    f.name.ends_with("_ns"),
                    "histogram family {} must end in _ns",
                    f.name
                ),
                MetricKind::Gauge => assert!(
                    !f.name.ends_with("_total"),
                    "gauge family {} must not end in _total",
                    f.name
                ),
            }
            assert!(!f.help.is_empty() && !f.unit.is_empty() && !f.label.is_empty());
            assert_eq!(
                f.member_name("7"),
                format!("{}{{{}=\"7\"}}", f.name, f.label)
            );
        }
    }

    #[test]
    fn catalog_spans_required_stages() {
        // The acceptance criteria require >= 20 metrics spanning these
        // stage prefixes.
        assert!(CATALOG.len() >= 20);
        for p in ["ais_", "tracker_", "stream_", "rtec_", "cer_"] {
            assert!(
                CATALOG.iter().any(|d| d.name.starts_with(p)),
                "no metric with prefix {p}"
            );
        }
    }
}
