//! Chrome Trace Event timeline export.
//!
//! Converts the pipeline's stage spans into the Chrome Trace Event
//! format — the JSON schema understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) — so one sliding-window run can be
//! inspected as a per-thread timeline: every window slide shows its
//! decode / track / slide / recognize phases, and sharded tracker slides
//! appear as parallel lanes (one `tid` per OS thread).
//!
//! The collector is *installed*, not merely enabled: until
//! [`install`] is called the per-span cost is a single relaxed
//! atomic load (asserted by `obs_overhead` in `crates/bench`). Spans feed
//! the timeline through the existing [`SpanTimer`](crate::SpanTimer)
//! drop path, so instrumented sites pay nothing extra — the same clock
//! reads serve both the latency histograms and the timeline.
//!
//! Timestamps are microseconds relative to the install instant (the
//! trace-viewer convention); thread ids are small ordinals assigned on
//! first use per OS thread.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::encode::json_str;

/// Spans kept before the timeline stops collecting (a safety valve for
/// very long runs; ~56 MB at the cap).
pub const MAX_SPANS: usize = 1 << 20;

/// One completed stage span on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSpan {
    /// Stage name (normally a histogram name from [`crate::names`]).
    pub name: &'static str,
    /// Ordinal of the OS thread the span ran on.
    pub tid: u64,
    /// Start, in microseconds since the timeline epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct Timeline {
    epoch: Instant,
    spans: Mutex<Vec<TimelineSpan>>,
    dropped: AtomicU64,
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static TIMELINE: OnceLock<Timeline> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Installs the global timeline collector and starts the trace epoch.
/// Idempotent; there is deliberately no uninstall (a timeline covers one
/// process run, exported once at the end).
pub fn install() {
    TIMELINE.get_or_init(|| Timeline {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    });
    INSTALLED.store(true, Ordering::Release);
}

/// Whether the timeline collector is installed. One relaxed load — this
/// is the whole cost a span pays when timelines are off.
#[inline]
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Records one completed span. No-op until [`install`] has run. `start`
/// is the span's own clock reading, so the histogram and the timeline
/// share a single pair of clock reads.
pub fn record(name: &'static str, start: Instant, elapsed: Duration) {
    if !is_installed() {
        return;
    }
    let Some(timeline) = TIMELINE.get() else {
        return;
    };
    let ts_us = u64::try_from(
        start
            .checked_duration_since(timeline.epoch)
            .unwrap_or_default()
            .as_micros(),
    )
    .unwrap_or(u64::MAX);
    let dur_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    let span = TimelineSpan {
        name,
        tid: TID.with(|t| *t),
        ts_us,
        dur_us,
    };
    let mut spans = timeline.spans.lock().expect("timeline poisoned");
    if spans.len() >= MAX_SPANS {
        drop(spans);
        timeline.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    spans.push(span);
    drop(spans);
    crate::counter(crate::names::TRACE_TIMELINE_SPANS).inc();
}

/// Takes a sorted snapshot of every span collected so far (clearing
/// nothing — export is repeatable). Empty when not installed.
#[must_use]
pub fn spans() -> Vec<TimelineSpan> {
    let Some(timeline) = TIMELINE.get() else {
        return Vec::new();
    };
    let mut out = timeline.spans.lock().expect("timeline poisoned").clone();
    out.sort_by(|a, b| {
        (a.ts_us, a.tid, a.name, a.dur_us).cmp(&(b.ts_us, b.tid, b.name, b.dur_us))
    });
    out
}

/// Spans rejected after the [`MAX_SPANS`] safety cap was hit.
#[must_use]
pub fn dropped() -> u64 {
    TIMELINE
        .get()
        .map_or(0, |t| t.dropped.load(Ordering::Relaxed))
}

/// Encodes spans as a Chrome Trace Event JSON document (`ph:"X"`
/// complete events, microsecond timestamps), loadable in Perfetto or
/// `chrome://tracing`. Deterministic for a given span list.
#[must_use]
pub fn encode(spans: &[TimelineSpan]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":{},\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            json_str(s.name),
            s.ts_us,
            s.dur_us,
            s.tid
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Encodes the installed timeline's collected spans. An empty (but still
/// loadable) document when nothing was collected.
#[must_use]
pub fn export_json() -> String {
    encode(&spans())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_deterministic_and_wellformed() {
        let spans = vec![
            TimelineSpan { name: "pipeline_tracking_ns", tid: 1, ts_us: 0, dur_us: 250 },
            TimelineSpan { name: "pipeline_recognition_ns", tid: 1, ts_us: 250, dur_us: 90 },
        ];
        let a = encode(&spans);
        let b = encode(&spans);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ts\":250"));
        assert!(a.trim_end().ends_with("]}"));
    }

    #[test]
    fn encode_empty_is_loadable() {
        assert_eq!(
            encode(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
        );
    }

    #[test]
    fn install_collects_spans() {
        install();
        assert!(is_installed());
        let start = Instant::now();
        record("tracker_slide_ns", start, Duration::from_micros(42));
        let collected = spans();
        assert!(
            collected
                .iter()
                .any(|s| s.name == "tracker_slide_ns" && s.dur_us == 42),
            "span not collected: {collected:?}"
        );
        assert!(export_json().contains("tracker_slide_ns"));
    }
}
