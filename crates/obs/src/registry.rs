//! The process-wide metric registry.
//!
//! Registration (name → metric) goes through a mutex, but that slow path
//! is hit once per call site: hot paths hold a `&'static` reference to the
//! metric itself — either obtained once at startup or cached in a
//! [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] static — so recording
//! is a single relaxed atomic op with no lock and no hash lookup.
//!
//! The global registry is pre-seeded with the full canonical catalog
//! ([`crate::names::CATALOG`]), so snapshots always enumerate every
//! pipeline metric (zeros included) and the acceptance test can diff the
//! name list against `OBSERVABILITY.md` without running every stage.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};

/// The shape of a metric: what operations it supports and how it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Value distribution with percentile read-out.
    Histogram,
}

/// Static description of one metric: its name, kind, unit, and help text.
#[derive(Debug, Clone, Copy)]
pub struct Descriptor {
    /// Unique snake_case name (see [`crate::names`] for conventions).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Unit of the recorded values (`ns`, `points`, `sentences`, ...).
    pub unit: &'static str,
    /// One-line description for encoders and the handbook.
    pub help: &'static str,
}

/// Static description of a *labeled metric family*: a small
/// fixed-cardinality set of metrics sharing one base name, one label key,
/// and one unit/help — e.g. `serve_source_lines_total{source="3"}`.
///
/// Families layer on the plain registry instead of replacing it: each
/// `(family, label value)` pair registers an ordinary metric whose name
/// carries the label (`base{label="value"}`), so snapshots, both
/// encoders, and the time-series ring see family members with zero new
/// machinery — and the hot-path cost model is untouched, because a
/// member, once resolved, is the same `&'static` atomic as any other
/// metric. Cardinality is the caller's contract: label values must come
/// from a small bounded set (source ids, CE rule names), never from
/// unbounded input.
#[derive(Debug, Clone, Copy)]
pub struct FamilyDescriptor {
    /// Base name, following the same conventions as plain metrics.
    pub name: &'static str,
    /// The single label key (`source`, `rule`).
    pub label: &'static str,
    /// Counter, gauge, or histogram — every member has this kind.
    pub kind: MetricKind,
    /// Unit shared by every member.
    pub unit: &'static str,
    /// Help line shared by every member.
    pub help: &'static str,
}

impl FamilyDescriptor {
    /// The full member name for `value`: `base{label="value"}`.
    #[must_use]
    pub fn member_name(&self, value: &str) -> String {
        format!("{}{{{}=\"{}\"}}", self.name, self.label, value)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Registered {
    descriptor: Descriptor,
    metric: Metric,
}

/// A registry of named metrics. [`MetricsRegistry::global`] is the one the
/// pipeline uses; fresh instances exist for tests.
pub struct MetricsRegistry {
    inner: Mutex<HashMap<&'static str, Registered>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a registry pre-seeded with every metric in `catalog`.
    #[must_use]
    pub fn with_catalog(catalog: &[Descriptor]) -> Self {
        let reg = Self::new();
        for d in catalog {
            reg.register(*d);
        }
        reg
    }

    /// The process-wide registry, pre-seeded with the canonical catalog on
    /// first access.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| MetricsRegistry::with_catalog(crate::names::CATALOG))
    }

    fn register(&self, d: Descriptor) {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        map.entry(d.name).or_insert_with(|| {
            let metric = match d.kind {
                MetricKind::Counter => Metric::Counter(Box::leak(Box::new(Counter::new()))),
                MetricKind::Gauge => Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
                MetricKind::Histogram => Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
            };
            Registered {
                descriptor: d,
                metric,
            }
        });
    }

    /// The counter registered under `name`, registering it ad hoc (with an
    /// empty unit/help) if absent. Panics if `name` is registered with a
    /// different kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.ensure(name, MetricKind::Counter);
        let map = self.inner.lock().expect("metrics registry poisoned");
        match &map[name].metric {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge registered under `name` (ad-hoc registered if absent).
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.ensure(name, MetricKind::Gauge);
        let map = self.inner.lock().expect("metrics registry poisoned");
        match &map[name].metric {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram registered under `name` (ad-hoc registered if absent).
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.ensure(name, MetricKind::Histogram);
        let map = self.inner.lock().expect("metrics registry poisoned");
        match &map[name].metric {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// The counter member of `family` for label `value`, registering it on
    /// first use with the family's unit/help. Panics if the name is
    /// already registered with a different kind.
    pub fn labeled_counter(&self, family: &FamilyDescriptor, value: &str) -> &'static Counter {
        match self.labeled(family, value, MetricKind::Counter) {
            Metric::Counter(c) => c,
            _ => unreachable!("labeled() checked the kind"),
        }
    }

    /// The gauge member of `family` for label `value` (see
    /// [`MetricsRegistry::labeled_counter`]).
    pub fn labeled_gauge(&self, family: &FamilyDescriptor, value: &str) -> &'static Gauge {
        match self.labeled(family, value, MetricKind::Gauge) {
            Metric::Gauge(g) => g,
            _ => unreachable!("labeled() checked the kind"),
        }
    }

    /// The histogram member of `family` for label `value` (see
    /// [`MetricsRegistry::labeled_counter`]).
    pub fn labeled_histogram(&self, family: &FamilyDescriptor, value: &str) -> &'static Histogram {
        match self.labeled(family, value, MetricKind::Histogram) {
            Metric::Histogram(h) => h,
            _ => unreachable!("labeled() checked the kind"),
        }
    }

    /// Resolves (registering on first use) one family member. The member
    /// name is leaked exactly once per `(family, value)` pair; callers on
    /// repeating paths should cache the returned reference.
    fn labeled(&self, family: &FamilyDescriptor, value: &str, kind: MetricKind) -> Metric {
        assert!(
            family.kind == kind,
            "family {} is a {:?}, requested as {kind:?}",
            family.name,
            family.kind
        );
        let full = family.member_name(value);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        if let Some(r) = map.get(full.as_str()) {
            assert!(
                r.metric.kind() == kind,
                "metric {full} is a {:?}, requested as {kind:?}",
                r.metric.kind()
            );
            return match &r.metric {
                Metric::Counter(c) => Metric::Counter(c),
                Metric::Gauge(g) => Metric::Gauge(g),
                Metric::Histogram(h) => Metric::Histogram(h),
            };
        }
        let name: &'static str = Box::leak(full.into_boxed_str());
        let metric = match kind {
            MetricKind::Counter => Metric::Counter(Box::leak(Box::new(Counter::new()))),
            MetricKind::Gauge => Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
            MetricKind::Histogram => Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
        };
        let out = match &metric {
            Metric::Counter(c) => Metric::Counter(c),
            Metric::Gauge(g) => Metric::Gauge(g),
            Metric::Histogram(h) => Metric::Histogram(h),
        };
        map.insert(
            name,
            Registered {
                descriptor: Descriptor {
                    name,
                    kind,
                    unit: family.unit,
                    help: family.help,
                },
                metric,
            },
        );
        out
    }

    fn ensure(&self, name: &'static str, kind: MetricKind) {
        {
            let map = self.inner.lock().expect("metrics registry poisoned");
            if let Some(r) = map.get(name) {
                assert!(
                    r.metric.kind() == kind,
                    "metric {name} is a {:?}, requested as {kind:?}",
                    r.metric.kind()
                );
                return;
            }
        }
        self.register(Descriptor {
            name,
            kind,
            unit: "",
            help: "",
        });
    }

    /// Names of all registered metrics, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut names: Vec<_> = map.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut entries: Vec<SnapshotEntry> = map
            .values()
            .map(|r| SnapshotEntry {
                descriptor: r.descriptor,
                value: match &r.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.descriptor.name);
        Snapshot { entries }
    }
}

/// The observed value of one metric at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One metric in a [`Snapshot`]: its descriptor plus its value.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotEntry {
    /// The metric's static description.
    pub descriptor: Descriptor,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

impl SnapshotEntry {
    /// Whether the metric has recorded anything (nonzero counter/gauge, or
    /// a histogram with at least one observation).
    #[must_use]
    pub fn is_nonzero(&self) -> bool {
        match self.value {
            MetricValue::Counter(v) => v != 0,
            MetricValue::Gauge(v) => v != 0,
            MetricValue::Histogram(h) => h.count != 0,
        }
    }
}

/// A point-in-time view of a registry, sorted by metric name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// The entry for `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries
            .binary_search_by_key(&name, |e| e.descriptor.name)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The counter reading for `name`, 0 if absent or not a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name).map(|e| e.value) {
            Some(MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// The gauge reading for `name`, 0 if absent or not a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name).map(|e| e.value) {
            Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// The histogram summary for `name`, if present and a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.get(name).map(|e| e.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// A const-constructible handle to a global counter, resolved on first use
/// and cached so subsequent updates skip the registry entirely.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a handle to the global counter `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The cached counter reference.
    #[inline]
    pub fn get_ref(&self) -> &'static Counter {
        self.cell
            .get_or_init(|| MetricsRegistry::global().counter(self.name))
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.get_ref().inc();
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get_ref().add(n);
    }
}

/// A const-constructible handle to a global gauge (see [`LazyCounter`]).
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// Declares a handle to the global gauge `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The cached gauge reference.
    #[inline]
    pub fn get_ref(&self) -> &'static Gauge {
        self.cell
            .get_or_init(|| MetricsRegistry::global().gauge(self.name))
    }

    /// Sets the gauge level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.get_ref().set(v);
    }

    /// Adds `delta` to the gauge (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.get_ref().add(delta);
    }
}

/// A const-constructible handle to a global histogram (see [`LazyCounter`]).
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declares a handle to the global histogram `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The cached histogram reference.
    #[inline]
    pub fn get_ref(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| MetricsRegistry::global().histogram(self.name))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.get_ref().record(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_preseeds_every_name() {
        let reg = MetricsRegistry::with_catalog(crate::names::CATALOG);
        let names = reg.names();
        assert_eq!(names.len(), crate::names::CATALOG.len());
        for d in crate::names::CATALOG {
            assert!(names.contains(&d.name));
        }
    }

    #[test]
    fn snapshot_reads_back_updates() {
        let reg = MetricsRegistry::with_catalog(crate::names::CATALOG);
        reg.counter(crate::names::AIS_SENTENCES).add(7);
        reg.gauge(crate::names::TRACKER_ACTIVE_VESSELS).set(42);
        reg.histogram(crate::names::PIPELINE_SLIDE_NS).record(1000);
        let s = reg.snapshot();
        assert_eq!(s.counter(crate::names::AIS_SENTENCES), 7);
        assert_eq!(s.gauge(crate::names::TRACKER_ACTIVE_VESSELS), 42);
        assert_eq!(
            s.histogram(crate::names::PIPELINE_SLIDE_NS).unwrap().count,
            1
        );
    }

    #[test]
    fn snapshot_is_sorted_and_searchable() {
        let reg = MetricsRegistry::with_catalog(crate::names::CATALOG);
        let s = reg.snapshot();
        let mut sorted = s.entries.clone();
        sorted.sort_by_key(|e| e.descriptor.name);
        assert!(s
            .entries
            .iter()
            .zip(&sorted)
            .all(|(a, b)| a.descriptor.name == b.descriptor.name));
        assert!(s.get(crate::names::RTEC_QUERIES).is_some());
        assert!(s.get("no_such_metric").is_none());
    }

    #[test]
    #[should_panic(expected = "is a Counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::with_catalog(crate::names::CATALOG);
        let _ = reg.gauge(crate::names::AIS_SENTENCES);
    }

    #[test]
    fn labeled_family_members_register_with_shared_metadata() {
        let reg = MetricsRegistry::new();
        let fam = FamilyDescriptor {
            name: "serve_source_lines_total",
            label: "source",
            kind: MetricKind::Counter,
            unit: "lines",
            help: "Raw lines per source",
        };
        let a = reg.labeled_counter(&fam, "0");
        let b = reg.labeled_counter(&fam, "1");
        let a_again = reg.labeled_counter(&fam, "0");
        assert!(std::ptr::eq(a, a_again), "same member resolves once");
        a.add(3);
        b.add(5);
        let s = reg.snapshot();
        assert_eq!(s.counter("serve_source_lines_total{source=\"0\"}"), 3);
        assert_eq!(s.counter("serve_source_lines_total{source=\"1\"}"), 5);
        let e = s.get("serve_source_lines_total{source=\"0\"}").unwrap();
        assert_eq!(e.descriptor.unit, "lines");
        assert_eq!(e.descriptor.help, "Raw lines per source");
    }

    #[test]
    #[should_panic(expected = "requested as")]
    fn labeled_kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let fam = FamilyDescriptor {
            name: "serve_source_lines_total",
            label: "source",
            kind: MetricKind::Counter,
            unit: "lines",
            help: "Raw lines per source",
        };
        let _ = reg.labeled_gauge(&fam, "0");
    }

    #[test]
    fn lazy_handles_resolve_against_global() {
        static C: LazyCounter = LazyCounter::new(crate::names::GEO_GRID_LOOKUPS);
        let before = MetricsRegistry::global()
            .counter(crate::names::GEO_GRID_LOOKUPS)
            .get();
        C.inc();
        C.add(2);
        let after = MetricsRegistry::global()
            .counter(crate::names::GEO_GRID_LOOKUPS)
            .get();
        assert_eq!(after - before, 3);
    }
}
