//! Lock-free counters and gauges.
//!
//! Both are a single cache line of state updated with relaxed atomic
//! read-modify-write operations. Relaxed ordering is sufficient: metrics
//! are statistical observations, not synchronization points — a snapshot
//! taken concurrently with updates may miss in-flight increments but
//! never tears or double-counts, so sums over disjoint writers (e.g. the
//! MMSI-sharded tracker workers) are exact once the writers are joined.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level: window fill, active vessels, queue depth.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level. No-op while recording is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). No-op while recording is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to `v` if it is currently lower (a high-water
    /// mark). No-op while recording is disabled.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_add_max() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set_max(5);
        assert_eq!(g.get(), 7, "set_max must not lower the level");
        g.set_max(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
