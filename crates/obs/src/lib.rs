//! Observability substrate for the maritime surveillance pipeline.
//!
//! The paper's system was operated as a live monitor, and its evaluation
//! reports per-window latency, critical-point compression, and recognition
//! throughput as the headline operational figures (§5, Figures 6–11). This
//! crate is the substrate that makes those figures visible on a *running*
//! pipeline rather than only in benchmark harnesses:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotone and level metrics
//!   (single relaxed atomic op on the hot path);
//! * [`Histogram`] — fixed-bucket log-linear (HDR-style) histograms for
//!   latencies and sizes, with percentile read-out at ≤ ~3 % relative
//!   error and no allocation on record;
//! * [`SpanTimer`] and the [`span!`] macro — RAII stage timers that feed
//!   a histogram on drop;
//! * [`MetricsRegistry`] — the process-wide registry, pre-seeded with the
//!   canonical metric catalog ([`names::CATALOG`]); snapshots encode to
//!   Prometheus text ([`encode::prometheus_text`]) or JSON
//!   ([`encode::json`]);
//! * a global kill switch ([`set_enabled`]) so a pipeline configured with
//!   metrics off pays only a predicted branch per would-be update;
//! * a crash-dump [`flight`] recorder — a fixed-capacity ring of recent
//!   structured trace events that dumps to JSON on anomaly triggers
//!   (deadline overrun, channel-full stall, panic) or on demand;
//! * a [`chrome`] Trace Event timeline — named spans double as Perfetto
//!   slices when the collector is installed, at no extra clock reads.
//!
//! Every metric name is declared once, in [`names`], and documented in
//! `OBSERVABILITY.md` at the repository root; a test diffs the two so the
//! catalog and the operator's handbook cannot drift apart.
//!
//! This crate deliberately has **zero dependencies** (std only): it is
//! linked by every runtime crate, including the lowest layers (`geo`,
//! `stream`), so it must never introduce a dependency cycle or pull codec
//! machinery into the hot paths it measures.

#![deny(missing_docs)]

pub mod chrome;
pub mod encode;
pub mod flight;
pub mod histogram;
pub mod metric;
pub mod names;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::{
    Descriptor, FamilyDescriptor, LazyCounter, LazyGauge, LazyHistogram, MetricKind, MetricValue,
    MetricsRegistry, Snapshot, SnapshotEntry,
};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use span::SpanTimer;
pub use timeseries::{GaugeWindow, RatePoint, Sample, SampleRing};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global recording switch. `true` at startup so standalone components
/// (tests, benches, examples) observe themselves without ceremony; the
/// pipeline sets it from `SurveillanceConfig.metrics`.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns metric recording on or off process-wide. When off, every update
/// degrades to one relaxed load and a predicted branch (< 1 % of tracker
/// throughput — asserted by `obs_overhead` in `crates/bench`).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global counter registered under `name` (must be in the catalog or
/// already registered). Prefer a cached [`LazyCounter`] on hot paths.
pub fn counter(name: &'static str) -> &'static Counter {
    MetricsRegistry::global().counter(name)
}

/// The global gauge registered under `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    MetricsRegistry::global().gauge(name)
}

/// The global histogram registered under `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    MetricsRegistry::global().histogram(name)
}

/// A snapshot of the global registry, sorted by metric name.
pub fn snapshot() -> Snapshot {
    MetricsRegistry::global().snapshot()
}
