//! Time-series telemetry: a fixed-capacity ring of periodic registry
//! samples, with rate/delta derivation for counters and windowed min/max
//! for gauges.
//!
//! A cumulative snapshot answers "how many lines ever"; an operator wants
//! "lines per second over the last five minutes". [`SampleRing`] closes
//! that gap in-process: the serve driver records a full registry
//! [`Snapshot`] every sampling interval (each watermark slide / idle
//! tick), the ring keeps the newest `capacity` of them, and the
//! derivation helpers ([`counter_rate`], [`gauge_window`]) turn any two
//! adjacent samples into per-interval deltas and rates without ever
//! resetting the underlying cumulative metrics.
//!
//! Concurrency: the ring is single-writer (the serve driver), any-reader
//! (HTTP handlers, the health engine, `surveil watch`). A slot exchange
//! is one `Arc` pointer swap under a per-slot mutex held for nanoseconds —
//! the expensive work (taking the snapshot, encoding JSON) happens
//! entirely outside the ring, and the ingest hot path never touches the
//! ring at all. Readers never block the writer for more than a pointer
//! swap, and a torn read is impossible: a slot always holds either the
//! old sample or the new one, never a mixture.
//!
//! Counter deltas are monotone by construction: if a counter reads
//! *lower* than in the previous sample (a process restart mid-scrape, or
//! a test resetting state), the delta is clamped to the new reading
//! instead of going negative — the standard Prometheus `rate()` restart
//! heuristic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::{MetricValue, Snapshot};

/// One periodic sample: a monotone sequence number, a monotonic clock
/// stamp (nanoseconds since the ring was created), and the full registry
/// snapshot taken at that instant.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Sample number since the ring was created (0-based, never reused).
    pub seq: u64,
    /// Nanoseconds since ring creation, from a monotonic clock.
    pub at_ns: u64,
    /// The registry at that instant.
    pub snapshot: Snapshot,
}

/// A fixed-capacity ring of [`Sample`]s. See the module docs for the
/// concurrency contract.
pub struct SampleRing {
    slots: Box<[Mutex<Option<Arc<Sample>>>]>,
    /// Total samples ever recorded (the next sequence number).
    head: AtomicU64,
    origin: Instant,
}

impl std::fmt::Debug for SampleRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleRing")
            .field("capacity", &self.slots.len())
            .field("total", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SampleRing {
    /// An empty ring keeping the newest `capacity` samples (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots: Vec<Mutex<Option<Arc<Sample>>>> =
            (0..capacity).map(|_| Mutex::new(None)).collect();
        Self {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// How many samples the ring retains.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total samples ever recorded (≥ the number currently retained).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.total() as usize).min(self.capacity())
    }

    /// Whether no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Records `snapshot` as the next sample, overwriting the oldest once
    /// the ring is full. Returns the sample's sequence number.
    pub fn record(&self, snapshot: Snapshot) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let sample = Arc::new(Sample {
            seq,
            at_ns: self.origin.elapsed().as_nanos() as u64,
            snapshot,
        });
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("sample ring slot poisoned") = Some(sample);
        seq
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Arc<Sample>> {
        self.samples().pop()
    }

    /// All retained samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<Arc<Sample>> {
        let mut out: Vec<Arc<Sample>> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("sample ring slot poisoned").clone())
            .collect();
        out.sort_unstable_by_key(|s| s.seq);
        out
    }
}

/// One derived per-interval point for a counter: the delta between two
/// adjacent samples and the implied rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Stamp of the interval's closing sample (ns since ring creation).
    pub at_ns: u64,
    /// Interval length in nanoseconds.
    pub interval_ns: u64,
    /// Counter increase across the interval (clamped at restarts, never
    /// negative).
    pub delta: u64,
    /// `delta` normalized to events per second (0.0 for an empty
    /// interval).
    pub per_sec: f64,
}

/// Per-interval deltas and rates for counter `name` across `samples`
/// (oldest first, as [`SampleRing::samples`] returns them). One point per
/// adjacent pair; fewer than two samples yield no points.
#[must_use]
pub fn counter_rate(samples: &[Arc<Sample>], name: &str) -> Vec<RatePoint> {
    samples
        .windows(2)
        .map(|w| {
            let (prev, cur) = (&w[0], &w[1]);
            let delta = counter_delta(prev.snapshot.counter(name), cur.snapshot.counter(name));
            let interval_ns = cur.at_ns.saturating_sub(prev.at_ns);
            let per_sec = if interval_ns == 0 {
                0.0
            } else {
                delta as f64 * 1e9 / interval_ns as f64
            };
            RatePoint {
                at_ns: cur.at_ns,
                interval_ns,
                delta,
                per_sec,
            }
        })
        .collect()
}

/// Monotone counter delta with the Prometheus restart heuristic: a
/// reading below the previous one is treated as a counter reset, so the
/// delta is the new reading rather than a negative value.
#[must_use]
pub fn counter_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

/// Windowed summary of a gauge across a run of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeWindow {
    /// Smallest reading in the window.
    pub min: i64,
    /// Largest reading in the window.
    pub max: i64,
    /// The newest reading.
    pub last: i64,
}

/// Min/max/last for gauge `name` across `samples`; `None` when the gauge
/// appears in no sample (or `samples` is empty).
#[must_use]
pub fn gauge_window(samples: &[Arc<Sample>], name: &str) -> Option<GaugeWindow> {
    let mut window: Option<GaugeWindow> = None;
    for s in samples {
        let Some(MetricValue::Gauge(v)) = s.snapshot.get(name).map(|e| e.value) else {
            continue;
        };
        window = Some(match window {
            None => GaugeWindow {
                min: v,
                max: v,
                last: v,
            },
            Some(w) => GaugeWindow {
                min: w.min.min(v),
                max: w.max.max(v),
                last: v,
            },
        });
    }
    window
}

/// Encodes the retained samples as one JSON document — the
/// `/metrics/history` payload. Shape:
///
/// ```json
/// {"capacity":256,"total":9,"samples":[
///   {"seq":1,"at_ns":2000371,"metrics":{ ...same shape as /metrics.json... }},
///   ...
/// ]}
/// ```
#[must_use]
pub fn history_json(ring: &SampleRing) -> String {
    let samples = ring.samples();
    let mut out = format!(
        "{{\"capacity\":{},\"total\":{},\"samples\":[\n",
        ring.capacity(),
        ring.total()
    );
    for (i, s) in samples.iter().enumerate() {
        let metrics = crate::encode::json(&s.snapshot);
        out.push_str(&format!(
            "{{\"seq\":{},\"at_ns\":{},\"metrics\":{}}}{}\n",
            s.seq,
            s.at_ns,
            metrics.trim_end(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Descriptor, MetricKind, SnapshotEntry};

    fn counter_entry(name: &'static str, v: u64) -> SnapshotEntry {
        SnapshotEntry {
            descriptor: Descriptor {
                name,
                kind: MetricKind::Counter,
                unit: "items",
                help: "test",
            },
            value: MetricValue::Counter(v),
        }
    }

    fn gauge_entry(name: &'static str, v: i64) -> SnapshotEntry {
        SnapshotEntry {
            descriptor: Descriptor {
                name,
                kind: MetricKind::Gauge,
                unit: "items",
                help: "test",
            },
            value: MetricValue::Gauge(v),
        }
    }

    /// A snapshot with one counter `c` and one gauge `g` (sorted order).
    fn snap(c: u64, g: i64) -> Snapshot {
        Snapshot {
            entries: vec![counter_entry("c", c), gauge_entry("g", g)],
        }
    }

    #[test]
    fn empty_ring_has_no_samples_and_valid_json() {
        let ring = SampleRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
        assert!(ring.latest().is_none());
        assert!(ring.samples().is_empty());
        let json = history_json(&ring);
        assert!(json.contains("\"total\":0"));
        assert!(json.contains("\"samples\":[\n]}"));
        assert!(counter_rate(&ring.samples(), "c").is_empty());
        assert!(gauge_window(&ring.samples(), "g").is_none());
    }

    #[test]
    fn single_sample_yields_no_rate_points() {
        let ring = SampleRing::new(4);
        ring.record(snap(10, 1));
        assert_eq!(ring.len(), 1);
        assert!(counter_rate(&ring.samples(), "c").is_empty());
        // ...but the gauge window is already meaningful.
        assert_eq!(
            gauge_window(&ring.samples(), "g"),
            Some(GaugeWindow {
                min: 1,
                max: 1,
                last: 1
            })
        );
    }

    #[test]
    fn wraparound_keeps_the_newest_capacity_samples_in_order() {
        let ring = SampleRing::new(4);
        for i in 0..10u64 {
            let seq = ring.record(snap(i * 100, i as i64));
            assert_eq!(seq, i);
        }
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.len(), 4);
        let samples = ring.samples();
        let seqs: Vec<u64> = samples.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, newest 4 survive");
        assert_eq!(ring.latest().unwrap().seq, 9);
        // Stamps are monotone.
        assert!(samples.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn counter_rates_are_never_negative_even_across_restarts() {
        let ring = SampleRing::new(8);
        // Monotone growth, then a restart (counter falls back to 5), then
        // growth again.
        for c in [0u64, 100, 250, 5, 30] {
            ring.record(snap(c, 0));
        }
        let rates = counter_rate(&ring.samples(), "c");
        assert_eq!(rates.len(), 4);
        let deltas: Vec<u64> = rates.iter().map(|r| r.delta).collect();
        assert_eq!(deltas, vec![100, 150, 5, 25], "restart clamps to new reading");
        assert!(rates.iter().all(|r| r.per_sec >= 0.0));
    }

    #[test]
    fn gauge_window_tracks_min_max_last() {
        let ring = SampleRing::new(8);
        for g in [3i64, -2, 7, 4] {
            ring.record(snap(0, g));
        }
        assert_eq!(
            gauge_window(&ring.samples(), "g"),
            Some(GaugeWindow {
                min: -2,
                max: 7,
                last: 4
            })
        );
        assert!(gauge_window(&ring.samples(), "absent").is_none());
    }

    #[test]
    fn history_json_dumps_every_retained_sample() {
        let ring = SampleRing::new(2);
        ring.record(snap(1, 1));
        ring.record(snap(2, 2));
        ring.record(snap(3, 3));
        let json = history_json(&ring);
        assert!(json.contains("\"capacity\":2"));
        assert!(json.contains("\"total\":3"));
        assert_eq!(json.matches("\"seq\":").count(), 2, "ring holds 2 of 3");
        assert!(json.contains("\"seq\":1"));
        assert!(json.contains("\"seq\":2"));
        assert!(!json.contains("\"seq\":0"));
        assert!(json.contains("\"metrics\":{"));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn unknown_counter_reads_as_zero_rate() {
        let ring = SampleRing::new(4);
        ring.record(snap(1, 0));
        ring.record(snap(2, 0));
        let rates = counter_rate(&ring.samples(), "not_registered");
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].delta, 0);
        assert_eq!(rates[0].per_sec, 0.0);
    }
}
