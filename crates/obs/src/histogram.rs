//! Fixed-bucket log-linear histograms with HDR-style percentile read-out.
//!
//! Values (non-negative integers — nanoseconds, byte counts, batch sizes)
//! are binned into buckets whose width grows with magnitude: values below
//! 32 get an exact bucket each, and every octave above that is split into
//! 32 linear sub-buckets. The bucket count is fixed (no allocation on
//! record) and the relative quantization error is bounded by 1/32 ≈ 3 %,
//! the same precision/footprint trade-off as a 5-significant-bit HDR
//! histogram.
//!
//! Recording is one relaxed `fetch_add` on the bucket plus bookkeeping on
//! `count`/`sum`/`min`/`max`; snapshots walk the bucket array without
//! stopping writers, so a snapshot taken during a run is approximate but
//! internally consistent enough for operational read-out.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Octaves above the exact range covered before saturating. 58 octaves on
/// top of the 2^5 exact range covers the full u64 domain.
const OCTAVES: usize = 59;
/// Total bucket count: one exact bucket per value < 32, then 32 per octave.
const BUCKETS: usize = SUB_COUNT as usize + OCTAVES * SUB_COUNT as usize;

/// Bucket index for a value.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    let idx = SUB_COUNT as usize + octave * SUB_COUNT as usize + sub;
    idx.min(BUCKETS - 1)
}

/// Largest value that maps into bucket `idx` (the bucket's upper bound).
#[inline]
fn upper_bound(idx: usize) -> u64 {
    if idx < SUB_COUNT as usize {
        return idx as u64;
    }
    let rel = idx - SUB_COUNT as usize;
    let octave = (rel / SUB_COUNT as usize) as u32;
    let sub = (rel % SUB_COUNT as usize) as u64;
    let low = (SUB_COUNT + sub) << octave; // lowest value in the bucket
    low.saturating_add((1u64 << octave) - 1)
}

/// A lock-free log-linear histogram. See the module docs for the bucket
/// scheme; construct via [`Histogram::new`] (usually through the registry).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (~15 KiB of buckets).
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. No-op while recording is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the exact recorded maximum. Returns 0 for an empty histogram. The
    /// quantization error is at most one part in 32 of the value.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// What was recorded *since* `base` was snapshotted: a windowed
    /// read-out that never resets the cumulative state, so any number of
    /// independent samplers can window the same histogram.
    ///
    /// `count` and `sum` in the returned snapshot are interval-exact
    /// (saturating at a counter reset, so never negative), which makes
    /// [`HistogramSnapshot::mean`] of the delta the exact per-interval
    /// mean — the figure the telemetry sampler reports as a rate. `min`,
    /// `max`, and the percentiles cannot be reconstructed for the
    /// interval from two summaries alone; they are carried over from the
    /// *cumulative* distribution as conservative bounds (and zeroed when
    /// the interval recorded nothing). A property test pins the additive
    /// contract: cumulative `count`/`sum` ≡ the sum of deltas over any
    /// partition of the recording sequence.
    #[must_use]
    pub fn delta_since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let cur = self.snapshot();
        let count = cur.count.saturating_sub(base.count);
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
            };
        }
        HistogramSnapshot {
            count,
            sum: cur.sum.saturating_sub(base.sum),
            min: cur.min,
            max: cur.max,
            p50: cur.p50,
            p90: cur.p90,
            p99: cur.p99,
        }
    }

    /// A point-in-time summary of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 if empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median (≤ ~3 % quantization error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations, 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_32() {
        for v in 0..32u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(upper_bound(v as usize), v);
        }
    }

    #[test]
    fn index_and_bound_are_consistent() {
        // Every value must land in a bucket whose range contains it, with
        // relative width <= 1/32.
        let probes = [
            32u64,
            33,
            63,
            64,
            100,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 20) + 12_345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = index_of(v);
            let hi = upper_bound(idx);
            assert!(hi >= v, "upper bound {hi} below value {v}");
            if idx < BUCKETS - 1 {
                // The bucket above must start past v.
                let lo_next = upper_bound(idx).saturating_add(1);
                assert!(index_of(lo_next) > idx || lo_next == 0);
                // Quantization error bound: hi - v < hi / 32 + 1.
                assert!(hi - v <= hi / 32 + 1, "error too large for {v}: hi={hi}");
            }
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // 1/32 relative error plus one for integer rounding.
        let close = |got: u64, want: u64| {
            assert!(
                got >= want && got <= want + want / 16 + 1,
                "quantile {got} not within bound of {want}"
            );
        };
        close(s.p50, 500);
        close(s.p90, 900);
        close(s.p99, 990);
    }

    #[test]
    fn delta_since_windows_without_resetting() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let base = h.snapshot();
        for v in [100u64, 200] {
            h.record(v);
        }
        let d = h.delta_since(&base);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 300);
        assert!((d.mean() - 150.0).abs() < 1e-9);
        // Cumulative state untouched.
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 360);
        // An empty interval reads as all zeros.
        let quiet = h.delta_since(&h.snapshot());
        assert_eq!(quiet.count, 0);
        assert_eq!(quiet.sum, 0);
        assert_eq!(quiet.max, 0);
    }

    #[test]
    fn max_clamps_quantile() {
        let h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.value_at_quantile(1.0), 1_000_003);
        assert_eq!(h.snapshot().p50, 1_000_003);
    }
}
