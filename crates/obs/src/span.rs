//! RAII stage timers.
//!
//! A [`SpanTimer`] starts a clock when constructed and records the elapsed
//! nanoseconds into a histogram when dropped, so a stage is timed by
//! holding a guard for its scope:
//!
//! ```
//! let _span = maritime_obs::span!("pipeline_tracking_ns");
//! // ... stage body; elapsed ns recorded when _span drops ...
//! ```
//!
//! The [`span!`](crate::span!) macro caches the histogram lookup in a hidden static, so
//! entering a span costs one `Instant::now()` and leaving it costs one
//! clock read plus one relaxed `fetch_add`. While recording is disabled
//! the drop still reads the clock but the record is a no-op; use
//! [`SpanTimer::disabled`]-aware call sites only if that clock read ever
//! shows up in a profile (it has not — see `obs_overhead` in
//! `crates/bench`).

use std::time::Instant;

use crate::histogram::Histogram;

/// An RAII guard that records its lifetime, in nanoseconds, into a
/// histogram on drop.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanTimer {
    start: Instant,
    sink: Option<&'static Histogram>,
}

impl SpanTimer {
    /// Starts a span feeding `sink`.
    pub fn from_histogram(sink: &'static Histogram) -> Self {
        Self {
            start: Instant::now(),
            sink: Some(sink),
        }
    }

    /// Starts a span feeding the global histogram `name`. Prefer the
    /// [`span!`](crate::span!) macro, which caches the registry lookup.
    pub fn named(name: &'static str) -> Self {
        Self::from_histogram(crate::histogram(name))
    }

    /// A span that records nothing on drop.
    pub fn disabled() -> Self {
        Self {
            start: Instant::now(),
            sink: None,
        }
    }

    /// Nanoseconds elapsed since the span started.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Ends the span now, recording the elapsed time.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.record(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Opens a [`SpanTimer`] on the named global histogram, caching the
/// registry lookup in a hidden static so repeated entries are lock-free.
///
/// ```
/// {
///     let _span = maritime_obs::span!("rtec_query_ns");
///     // ... timed work ...
/// } // elapsed ns recorded here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __OBS_SPAN_SINK: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        $crate::SpanTimer::from_histogram(__OBS_SPAN_SINK.get_ref())
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        {
            let span = SpanTimer::from_histogram(h);
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() >= 1_000_000);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "recorded {} ns", h.sum());
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = SpanTimer::disabled();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(span.elapsed_ns() >= 1_000_000);
        span.finish(); // nothing to record into; must not panic
    }

    #[test]
    fn span_macro_feeds_named_histogram() {
        let before = crate::snapshot()
            .histogram(crate::names::TRACKER_SLIDE_NS)
            .unwrap()
            .count;
        {
            let _span = crate::span!(crate::names::TRACKER_SLIDE_NS);
        }
        let after = crate::snapshot()
            .histogram(crate::names::TRACKER_SLIDE_NS)
            .unwrap()
            .count;
        assert_eq!(after - before, 1);
    }
}
