//! RAII stage timers.
//!
//! A [`SpanTimer`] starts a clock when constructed and records the elapsed
//! nanoseconds into a histogram when dropped, so a stage is timed by
//! holding a guard for its scope:
//!
//! ```
//! let _span = maritime_obs::span!("pipeline_tracking_ns");
//! // ... stage body; elapsed ns recorded when _span drops ...
//! ```
//!
//! The [`span!`](crate::span!) macro caches the histogram lookup in a hidden static, so
//! entering a span costs one `Instant::now()` and leaving it costs one
//! clock read plus one relaxed `fetch_add`. Named spans double as
//! Chrome-trace timeline events: when the [`chrome`](crate::chrome)
//! collector is installed the same pair of clock reads also lands a
//! `ph:"X"` slice on the timeline, so instrumented sites never pay
//! twice. [`SpanTimer::disabled`] skips the clock entirely — it carries
//! no `Instant` at all — so a call site that opts out at runtime pays
//! only the branch that chose it.

use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// An RAII guard that records its lifetime, in nanoseconds, into a
/// histogram on drop — and, when the Chrome-trace timeline is installed,
/// records the same interval as a timeline slice.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanTimer {
    /// `None` for disabled spans: constructing one performs no clock read.
    start: Option<Instant>,
    sink: Option<&'static Histogram>,
    /// Stage name for the timeline; `None` keeps the span histogram-only.
    name: Option<&'static str>,
}

impl SpanTimer {
    /// Starts a span feeding `sink`.
    pub fn from_histogram(sink: &'static Histogram) -> Self {
        Self {
            start: Some(Instant::now()),
            sink: Some(sink),
            name: None,
        }
    }

    /// Starts a named stage span feeding `sink` and, when installed, the
    /// Chrome-trace timeline. This is what [`span!`](crate::span!) expands to.
    pub fn stage(name: &'static str, sink: &'static Histogram) -> Self {
        Self {
            start: Some(Instant::now()),
            sink: Some(sink),
            name: Some(name),
        }
    }

    /// Starts a span feeding the global histogram `name`. Prefer the
    /// [`span!`](crate::span!) macro, which caches the registry lookup.
    pub fn named(name: &'static str) -> Self {
        Self::stage(name, crate::histogram(name))
    }

    /// A span that records nothing on drop and never reads the clock:
    /// construction, [`elapsed_ns`](Self::elapsed_ns) (always zero), and
    /// drop are all branch-only.
    pub fn disabled() -> Self {
        Self {
            start: None,
            sink: None,
            name: None,
        }
    }

    /// Nanoseconds elapsed since the span started; zero for a
    /// [`disabled`](Self::disabled) span.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map_or(0, |s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Ends the span now, recording the elapsed time.
    pub fn finish(self) {
        drop(self);
    }

    /// Ends the span now and returns the elapsed wall time it recorded
    /// (zero for a disabled span). One clock read serves the return
    /// value, the histogram, and the timeline.
    pub fn stop(mut self) -> Duration {
        self.record()
    }

    /// Single measurement point shared by drop and [`stop`](Self::stop):
    /// reads the clock once, feeds the histogram and (if installed) the
    /// timeline, and disarms the span so a later drop is a no-op.
    fn record(&mut self) -> Duration {
        let Some(start) = self.start.take() else {
            return Duration::ZERO;
        };
        let elapsed = start.elapsed();
        if let Some(sink) = self.sink {
            sink.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        if let Some(name) = self.name {
            if crate::chrome::is_installed() {
                crate::chrome::record(name, start, elapsed);
            }
        }
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record();
    }
}

/// Opens a [`SpanTimer`] on the named global histogram, caching the
/// registry lookup in a hidden static so repeated entries are lock-free.
/// The name also labels the span on the Chrome-trace timeline when the
/// collector is installed.
///
/// ```
/// {
///     let _span = maritime_obs::span!("rtec_query_ns");
///     // ... timed work ...
/// } // elapsed ns recorded here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __OBS_SPAN_SINK: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        $crate::SpanTimer::stage($name, __OBS_SPAN_SINK.get_ref())
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        {
            let span = SpanTimer::from_histogram(h);
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() >= 1_000_000);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "recorded {} ns", h.sum());
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = SpanTimer::disabled();
        std::thread::sleep(std::time::Duration::from_millis(1));
        // No clock was read at construction, so there is no elapsed time
        // to report — the disabled constructor's entire point.
        assert_eq!(span.elapsed_ns(), 0);
        span.finish(); // nothing to record into; must not panic
    }

    #[test]
    fn stop_returns_elapsed_once() {
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        let span = SpanTimer::from_histogram(h);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let elapsed = span.stop();
        assert!(elapsed.as_nanos() >= 1_000_000);
        // stop() disarmed the guard: exactly one histogram record.
        assert_eq!(h.count(), 1);
        assert_eq!(SpanTimer::disabled().stop(), Duration::ZERO);
    }

    #[test]
    fn span_macro_feeds_named_histogram() {
        let before = crate::snapshot()
            .histogram(crate::names::TRACKER_SLIDE_NS)
            .unwrap()
            .count;
        {
            let _span = crate::span!(crate::names::TRACKER_SLIDE_NS);
        }
        let after = crate::snapshot()
            .histogram(crate::names::TRACKER_SLIDE_NS)
            .unwrap()
            .count;
        assert_eq!(after - before, 1);
    }
}
