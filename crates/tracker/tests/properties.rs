//! Property-based tests for the trajectory detection component.

use maritime_ais::{FleetConfig, FleetSimulator, Mmsi, PositionTuple};
use maritime_geo::{destination, GeoPoint};
use maritime_stream::{Duration, Timestamp};
use maritime_tracker::compression::measure_compression;
use maritime_tracker::synopsis::TrajectorySynopsis;
use maritime_tracker::vessel::VesselTracker;
use maritime_tracker::{Annotation, CriticalPoint, TrackerParams};
use proptest::prelude::*;

/// A random but physically plausible single-vessel trace: piecewise legs
/// with varying speeds/bearings, occasional dwell.
fn arb_trace() -> impl Strategy<Value = Vec<(GeoPoint, Timestamp)>> {
    let leg = (0.0f64..360.0, 0.5f64..20.0, 3usize..25, 20i64..120);
    prop::collection::vec(leg, 1..8).prop_map(|legs| {
        let mut pos = GeoPoint::new(24.0, 38.0);
        let mut t = Timestamp(0);
        let mut out = vec![(pos, t)];
        for (bearing, knots, n, step) in legs {
            let step_m = maritime_geo::knots_to_mps(knots) * step as f64;
            for _ in 0..n {
                pos = destination(pos, bearing, step_m);
                t = t + Duration::secs(step);
                out.push((pos, t));
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn critical_points_are_a_time_ordered_subset_window(trace in arb_trace()) {
        let mut tracker = VesselTracker::new(Mmsi(1), TrackerParams::default());
        let mut cps: Vec<CriticalPoint> = trace
            .iter()
            .flat_map(|(p, t)| tracker.process(*p, *t))
            .collect();
        cps.extend(tracker.finish());
        // Timestamps never exceed the trace horizon and are non-negative.
        let horizon = trace.last().unwrap().1;
        for cp in &cps {
            prop_assert!(cp.timestamp >= Timestamp(0));
            prop_assert!(cp.timestamp <= horizon);
        }
        // Compression never *increases* data: at most one critical point
        // per raw fix plus the durative closers.
        prop_assert!(cps.len() <= trace.len() * 2 + 2);
    }

    #[test]
    fn stop_intervals_are_well_formed(trace in arb_trace()) {
        let mut tracker = VesselTracker::new(Mmsi(1), TrackerParams::default());
        let mut cps: Vec<CriticalPoint> = trace
            .iter()
            .flat_map(|(p, t)| tracker.process(*p, *t))
            .collect();
        cps.extend(tracker.finish());
        // stop_start and stop_end alternate, starts first.
        let mut open = false;
        for cp in &cps {
            match cp.annotation {
                Annotation::StopStart => {
                    prop_assert!(!open, "nested stop start");
                    open = true;
                }
                Annotation::StopEnd { duration, .. } => {
                    prop_assert!(open, "stop end without start");
                    prop_assert!(duration.as_secs() >= 0);
                    open = false;
                }
                _ => {}
            }
        }
        prop_assert!(!open, "unclosed stop after finish()");
    }

    #[test]
    fn processing_is_deterministic(trace in arb_trace()) {
        let run = || {
            let mut tracker = VesselTracker::new(Mmsi(1), TrackerParams::default());
            let mut cps: Vec<CriticalPoint> = trace
                .iter()
                .flat_map(|(p, t)| tracker.process(*p, *t))
                .collect();
            cps.extend(tracker.finish());
            cps.iter()
                .map(|c| (c.timestamp, c.annotation.label()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn synopsis_interpolation_is_bounded_by_trace_extent(trace in arb_trace()) {
        let mut tracker = VesselTracker::new(Mmsi(1), TrackerParams::default());
        let mut cps: Vec<CriticalPoint> = trace
            .iter()
            .flat_map(|(p, t)| tracker.process(*p, *t))
            .collect();
        cps.extend(tracker.finish());
        let synopsis = TrajectorySynopsis::new(cps);
        if synopsis.is_empty() {
            return Ok(());
        }
        let bbox = maritime_geo::BoundingBox::around(
            &synopsis.polyline(),
        ).unwrap().inflated(1e-9);
        // Interpolated positions stay within the synopsis bounding box
        // (linear interpolation cannot extrapolate).
        for probe in (0..=trace.last().unwrap().1.as_secs()).step_by(97) {
            let p = synopsis.position_at(Timestamp(probe)).unwrap();
            prop_assert!(bbox.contains(p), "{p:?} outside {bbox:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fleet_compression_ratio_in_unit_range_and_counts_conserve(seed in any::<u64>()) {
        let sim = FleetSimulator::new(FleetConfig { vessels: 5, ..FleetConfig::tiny(seed) });
        let stream: Vec<PositionTuple> = sim
            .generate()
            .into_iter()
            .map(PositionTuple::from)
            .collect();
        let (report, critical) = measure_compression(&stream, TrackerParams::default());
        prop_assert!((0.0..=1.0).contains(&report.ratio));
        prop_assert_eq!(report.raw_positions as usize, stream.len());
        prop_assert_eq!(report.critical_points as usize, critical.len());
        // Per-vessel counts conserve.
        let raw_sum: u64 = report.per_vessel.values().map(|(r, _)| *r).sum();
        prop_assert_eq!(raw_sum, report.raw_positions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shard_routing_is_stable_and_in_range(
        shards in 1usize..17,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        use maritime_stream::ShardRouter;
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        for k in keys {
            let shard = a.route(k);
            prop_assert!(shard < shards);
            // Routing is a pure function of (key, shard count): two
            // routers agree, and repeated calls agree.
            prop_assert_eq!(shard, b.route(k));
            prop_assert_eq!(shard, a.route(k));
        }
    }

    #[test]
    fn shard_routing_is_uniform_within_tolerance(
        shards in 2usize..9,
        base in 0u32..1_000_000,
    ) {
        use maritime_stream::ShardRouter;
        // Realistic MMSI blocks share a long prefix; the mixer must still
        // spread them evenly. Tolerance: ±25% of the expected share over
        // a 4 000-vessel fleet.
        let router = ShardRouter::new(shards);
        let fleet = 4_000u32;
        let mut counts = vec![0usize; shards];
        for i in 0..fleet {
            counts[router.route(u64::from(237_000_000 + base + i))] += 1;
        }
        let expected = fleet as usize / shards;
        for (shard, &n) in counts.iter().enumerate() {
            prop_assert!(
                n > expected * 3 / 4 && n < expected * 5 / 4,
                "shard {shard} got {n} of ~{expected}: {counts:?}"
            );
        }
    }
}
