//! Proof that the steady-state tracking path allocates nothing.
//!
//! Per incoming fix the vessel tracker used to copy its history deque
//! into a scratch `Vec` for the mean-speed outlier test and return a
//! fresh `Vec` of critical points — two heap allocations per position.
//! The struct-of-arrays [`HistoryRing`] and the `*_into` buffer-reuse
//! APIs removed both; this test pins that down with a counting global
//! allocator (the `crates/geo/tests/no_alloc.rs` idiom).
//!
//! This lives in its own integration-test binary because it installs a
//! `#[global_allocator]`, which must not leak into other test binaries.
//!
//! [`HistoryRing`]: maritime_tracker::history::HistoryRing

use std::alloc::{GlobalAlloc, Layout, System};

use maritime_ais::{Mmsi, PositionTuple};
use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;
use maritime_tracker::{CriticalPoint, MobilityTracker, TrackerParams};

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates concurrently
// with the test thread, so a process-global count would be flaky. A
// const-initialized `Cell<usize>` has no destructor and no lazy init, so
// touching it from inside the allocator cannot recurse.
std::thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = THREAD_ALLOCATIONS.with(std::cell::Cell::get);
    let result = f();
    (THREAD_ALLOCATIONS.with(std::cell::Cell::get) - before, result)
}

/// Straight constant-speed cruise for a small fleet: after the initial
/// transient (track start, speed stabilization) the steady state emits
/// nothing and must allocate nothing.
fn cruise(fleet: u32, start: i64, fixes: i64) -> Vec<PositionTuple> {
    let mut out = Vec::new();
    for step in 0..fixes {
        for v in 0..fleet {
            let t = start + step;
            // ~0.0005 deg of longitude per 10 s tick at lat 37.9 is a
            // steady ~8.5 kn — comfortably inside the normal-motion band.
            out.push(PositionTuple {
                mmsi: Mmsi(237_000_001 + v),
                position: GeoPoint::new(
                    23.0 + f64::from(v) * 0.5 + t as f64 * 0.000_5,
                    37.9 + f64::from(v) * 0.1,
                ),
                timestamp: Timestamp(t * 10),
            });
        }
    }
    out
}

#[test]
fn steady_state_tracking_allocates_nothing() {
    let params = TrackerParams::default();
    let mut tracker = MobilityTracker::new(params);
    let mut out: Vec<CriticalPoint> = Vec::new();

    // Warm up: creates the per-vessel trackers (MMSI map inserts, history
    // rings), registers the lazy metric counters, and rides out the
    // track-start transient.
    let warm = cruise(5, 0, 200);
    tracker.process_batch_into(warm.iter(), &mut out);
    let transient = out.len();
    assert!(transient >= 5, "each vessel must at least emit a track start");
    out.clear();

    // Measured: the same fleet continues the same cruise.
    let steady = cruise(5, 200, 200);
    let (allocs, ()) = allocations(|| {
        tracker.process_batch_into(steady.iter(), &mut out);
    });
    assert_eq!(allocs, 0, "steady-state tracking must not touch the heap");

    // And one-at-a-time processing is equally clean.
    let more = cruise(5, 400, 50);
    let (allocs, ()) = allocations(|| {
        for tuple in &more {
            tracker.process_into(*tuple, &mut out);
        }
    });
    assert_eq!(allocs, 0, "per-tuple tracking must not touch the heap");

    let stats = tracker.stats();
    assert_eq!(stats.raw, (warm.len() + steady.len() + more.len()) as u64);
    assert_eq!(stats.outliers, 0, "the cruise must not trip the outlier filter");
}
