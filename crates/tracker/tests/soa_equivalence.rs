//! Differential property: tracking over the struct-of-arrays history ring
//! is observationally identical across serial and sharded execution.
//!
//! The [`HistoryRing`] caches pair distances and sums them instead of
//! re-walking the fix deque with fresh Haversine evaluations; its module
//! proptest already pins the mean-speed value bit for bit. This suite
//! closes the loop at the *output* level: across random multi-vessel
//! voyages, the serial windowed tracker and the [`ShardedTracker`] at
//! 1, 2, and 4 shards must produce byte-identical critical-point streams
//! under JSON serialization — the same oracle as the fixed-fleet
//! `tests/sharded_equivalence.rs`, here over arbitrary trajectories.
//!
//! [`HistoryRing`]: maritime_tracker::history::HistoryRing
//! [`ShardedTracker`]: maritime_tracker::ShardedTracker

use maritime_ais::{Mmsi, PositionTuple};
use maritime_geo::{destination, knots_to_mps, GeoPoint};
use maritime_stream::{Duration, SlideBatches, Timestamp, WindowSpec};
use maritime_tracker::{
    canonical_order, CriticalPoint, ShardedTracker, TrackerParams, WindowedTracker,
};
use proptest::prelude::*;

/// A random but physically plausible voyage: piecewise legs with varying
/// bearings and speeds, fixed reporting cadence.
fn arb_voyage() -> impl Strategy<Value = Vec<(GeoPoint, Timestamp)>> {
    let leg = (0.0f64..360.0, 0.5f64..20.0, 3usize..20, 20i64..120);
    prop::collection::vec(leg, 1..6).prop_map(|legs| {
        let mut pos = GeoPoint::new(24.0, 38.0);
        let mut t = Timestamp(0);
        let mut out = vec![(pos, t)];
        for (bearing, knots, n, step) in legs {
            let step_m = knots_to_mps(knots) * step as f64;
            for _ in 0..n {
                pos = destination(pos, bearing, step_m);
                t = t + Duration::secs(step);
                out.push((pos, t));
            }
        }
        out
    })
}

/// Interleaves per-vessel voyages into one time-ordered fleet stream.
fn fleet_stream(voyages: Vec<Vec<(GeoPoint, Timestamp)>>) -> Vec<(Timestamp, PositionTuple)> {
    let mut stream: Vec<(Timestamp, PositionTuple)> = voyages
        .into_iter()
        .enumerate()
        .flat_map(|(v, voyage)| {
            let mmsi = Mmsi(237_000_001 + v as u32);
            voyage.into_iter().map(move |(position, timestamp)| {
                (timestamp, PositionTuple { mmsi, position, timestamp })
            })
        })
        .collect();
    stream.sort_by_key(|(t, tuple)| (*t, tuple.mmsi));
    stream
}

fn window() -> WindowSpec {
    WindowSpec::new(Duration::minutes(10), Duration::minutes(5)).unwrap()
}

fn serial_trace(stream: &[(Timestamp, PositionTuple)]) -> String {
    let w = window();
    let mut tracker = WindowedTracker::new(TrackerParams::default(), w);
    let mut fresh: Vec<CriticalPoint> = Vec::new();
    for batch in SlideBatches::new(stream.iter().copied(), w, Timestamp::ZERO) {
        let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
        let mut f = tracker.slide(batch.query_time, &tuples).fresh_critical;
        canonical_order(&mut f);
        fresh.extend(f);
    }
    let (mut last, _residual) = tracker.finish();
    canonical_order(&mut last);
    fresh.extend(last);
    serde_json::to_string(&fresh).unwrap()
}

fn sharded_trace(stream: &[(Timestamp, PositionTuple)], shards: usize) -> String {
    let w = window();
    let mut tracker = ShardedTracker::new(TrackerParams::default(), w, shards);
    let mut fresh: Vec<CriticalPoint> = Vec::new();
    for batch in SlideBatches::new(stream.iter().copied(), w, Timestamp::ZERO) {
        let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
        fresh.extend(tracker.slide(batch.query_time, &tuples).merged.fresh_critical);
    }
    let (last, _residual) = tracker.finish();
    fresh.extend(last);
    serde_json::to_string(&fresh).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_voyages_track_identically_at_any_shard_count(
        voyages in prop::collection::vec(arb_voyage(), 1..6),
    ) {
        let stream = fleet_stream(voyages);
        let serial = serial_trace(&stream);
        for shards in [1usize, 2, 4] {
            let sharded = sharded_trace(&stream, shards);
            prop_assert_eq!(
                &serial, &sharded,
                "critical-point stream diverged at {} shard(s)", shards
            );
        }
    }
}
