//! Per-vessel detection state machine.
//!
//! Implements §3.1 for a single vessel: instantaneous events (pause, speed
//! change, turn, off-course outlier) from the two most recent positions,
//! and long-lasting events (communication gap, smooth turn, long-term
//! stop, slow motion) from the last `m` positions. The complexity per
//! incoming tuple is O(1) for instantaneous events and gaps, O(m) for the
//! long-lasting ones, exactly as analysed in the paper.

use std::collections::VecDeque;

use maritime_ais::Mmsi;
use maritime_geo::{haversine_distance_m, signed_angle_diff_deg, GeoPoint};
use maritime_obs::{names, LazyCounter};
use maritime_stream::Timestamp;

use crate::events::{Annotation, CriticalPoint};

/// Off-course fixes discarded by the noise filter, fleet-wide.
static OBS_NOISE_DROPS: LazyCounter = LazyCounter::new(names::TRACKER_NOISE_DROPS);
use crate::history::HistoryRing;
use crate::params::TrackerParams;
use crate::velocity::VelocityVector;

/// One accepted fix with its derived motion attributes.
#[derive(Debug, Clone, Copy)]
struct Fix {
    position: GeoPoint,
    timestamp: Timestamp,
    velocity: VelocityVector,
    /// Whether `velocity` was measured from two real fixes (false for the
    /// first-ever fix and the fix right after a gap, where no meaningful
    /// previous velocity exists).
    velocity_known: bool,
}

/// State of an in-progress long-term stop.
#[derive(Debug, Clone)]
struct StopRun {
    start: Timestamp,
    anchor: GeoPoint,
    sum_lon: f64,
    sum_lat: f64,
    count: usize,
    confirmed: bool,
}

impl StopRun {
    fn new(p: GeoPoint, t: Timestamp) -> Self {
        Self {
            start: t,
            anchor: p,
            sum_lon: p.lon,
            sum_lat: p.lat,
            count: 1,
            confirmed: false,
        }
    }

    fn push(&mut self, p: GeoPoint) {
        self.sum_lon += p.lon;
        self.sum_lat += p.lat;
        self.count += 1;
    }

    fn centroid(&self) -> GeoPoint {
        GeoPoint {
            lon: self.sum_lon / self.count as f64,
            lat: self.sum_lat / self.count as f64,
        }
    }
}

/// State of an in-progress slow-motion run.
#[derive(Debug, Clone)]
struct SlowRun {
    /// Positions of the run so far (bounded by `m` for the median report).
    points: VecDeque<(GeoPoint, Timestamp)>,
    count: usize,
    confirmed: bool,
}

/// Counters the tracker accumulates per vessel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VesselStats {
    /// Raw positional tuples received (including discarded ones).
    pub raw: u64,
    /// Critical points emitted.
    pub critical: u64,
    /// Off-course positions discarded as noise.
    pub outliers: u64,
    /// Duplicate/out-of-order tuples ignored.
    pub stale: u64,
}

/// The per-vessel mobility tracker.
#[derive(Debug)]
pub struct VesselTracker {
    mmsi: Mmsi,
    params: TrackerParams,
    /// Most recent accepted fix.
    last: Option<Fix>,
    /// Recent accepted fixes (≤ m) in a struct-of-arrays ring with cached
    /// pair distances, for the mean-velocity query of the outlier test.
    history: HistoryRing,
    /// Signed heading deltas of the last ≤ m−1 steps, for smooth turns.
    turn_deltas: VecDeque<f64>,
    stop: Option<StopRun>,
    slow: Option<SlowRun>,
    /// A communication gap has been reported (by [`VesselTracker::sweep_gap`])
    /// and not yet closed by a new fix.
    gap_open: bool,
    stats: VesselStats,
}

impl VesselTracker {
    /// Creates a tracker for one vessel.
    #[must_use]
    pub fn new(mmsi: Mmsi, params: TrackerParams) -> Self {
        Self {
            mmsi,
            params,
            last: None,
            history: HistoryRing::new(params.m),
            turn_deltas: VecDeque::with_capacity(params.m),
            stop: None,
            slow: None,
            gap_open: false,
            stats: VesselStats::default(),
        }
    }

    /// The vessel this tracker follows.
    #[must_use]
    pub fn mmsi(&self) -> Mmsi {
        self.mmsi
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> VesselStats {
        self.stats
    }

    /// Processes one positional tuple, returning any critical points it
    /// triggers (possibly none — most raw positions are superfluous).
    pub fn process(&mut self, position: GeoPoint, t: Timestamp) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        self.process_into(position, t, &mut out);
        out
    }

    /// Processes one positional tuple, appending any critical points it
    /// triggers to `out` — the allocation-free form of
    /// [`VesselTracker::process`] for callers that reuse one buffer across
    /// a whole batch. Emission order is identical.
    pub fn process_into(&mut self, position: GeoPoint, t: Timestamp, out: &mut Vec<CriticalPoint>) {
        self.stats.raw += 1;

        let Some(last) = self.last else {
            // First fix ever: anchor the trajectory.
            let v = VelocityVector::stationary();
            self.accept(position, t, v, false);
            out.push(self.point(position, t, Annotation::TrackStart, v));
            return;
        };

        if t <= last.timestamp {
            // The stream is append-only; duplicates and out-of-order fixes
            // at tracker level are ignored (windowing upstream reorders
            // mildly-late tuples already).
            self.stats.stale += 1;
            return;
        }

        // ---- Communication gap (long-lasting, O(1)) --------------------
        if (t - last.timestamp) > self.params.gap_period {
            if self.gap_open {
                // The gap was already reported by a sweep while the vessel
                // was silent; only close it now.
                self.gap_open = false;
            } else {
                // Close any open durative states at the silence point: the
                // course is unknown during the gap.
                self.close_stop(out, last.timestamp, last.position, last.velocity);
                self.close_slow(out, last.timestamp, last.position, last.velocity);
                out.push(self.point(
                    last.position,
                    last.timestamp,
                    Annotation::GapStart,
                    last.velocity,
                ));
            }
            let v = VelocityVector::between(last.position, last.timestamp, position, t)
                .unwrap_or_else(VelocityVector::stationary);
            self.reset_motion_state();
            self.accept(position, t, v, false);
            out.push(self.point(position, t, Annotation::GapEnd, v));
            return;
        }
        if self.gap_open {
            // A sweep reported a gap, but this (late-arriving) fix shows
            // the silence was shorter than ΔT after all. Close the gap at
            // the new fix so downstream consumers see a balanced pair.
            self.gap_open = false;
            let v = VelocityVector::between(last.position, last.timestamp, position, t)
                .expect("t > last.timestamp");
            self.accept(position, t, v, true);
            out.push(self.point(position, t, Annotation::GapEnd, v));
            return;
        }

        let v_now = VelocityVector::between(last.position, last.timestamp, position, t)
            .expect("t > last.timestamp");

        // ---- Off-course outlier (instantaneous) -------------------------
        // "A very abrupt change in vessel's velocity (both in speed and
        // heading)" relative to the known course abstracted by the mean
        // velocity over the last m positions (§3.1, Figure 2(d)).
        if self.is_outlier(v_now, last.velocity, last.velocity_known) {
            self.stats.outliers += 1;
            OBS_NOISE_DROPS.inc();
            return;
        }

        // ---- Instantaneous events ---------------------------------------
        let v_prev = last.velocity;
        let prev_known = last.velocity_known;
        let is_pause = v_now.speed_knots < self.params.v_min_knots;
        let moving_now = !is_pause;
        let was_moving = prev_known && v_prev.speed_knots >= self.params.v_min_knots;

        // Heading is only meaningful when the vessel actually moves.
        let turn_change = if moving_now && was_moving {
            signed_angle_diff_deg(v_prev.heading_deg, v_now.heading_deg)
        } else {
            0.0
        };
        let is_sharp_turn = turn_change.abs() > self.params.turn_threshold_deg;

        let speed_changed = moving_now
            && prev_known
            && v_now
                .relative_speed_change(v_prev)
                .is_some_and(|r| r > self.params.alpha);

        // ---- Long-term stop (pause/turn run within radius r) -----------
        let in_stop_run = is_pause || (self.stop.is_some() && is_sharp_turn);
        if in_stop_run {
            match &mut self.stop {
                Some(run) if haversine_distance_m(run.anchor, position) <= self.params.stop_radius_m => {
                    run.push(position);
                    if !run.confirmed && run.count >= self.params.m {
                        run.confirmed = true;
                        let (anchor, start) = (run.anchor, run.start);
                        out.push(self.point(anchor, start, Annotation::StopStart, v_now));
                    }
                }
                _ => {
                    // Starting a new run (or drifted out of the old circle:
                    // close it if confirmed, then restart).
                    self.close_stop(out, t, position, v_now);
                    self.stop = Some(StopRun::new(position, t));
                }
            }
        } else {
            self.close_stop(out, t, position, v_now);
        }

        // ---- Slow motion (low-speed run along a path) -------------------
        let is_low = moving_now && v_now.speed_knots <= self.params.v_low_knots;
        if is_low {
            let run = self.slow.get_or_insert_with(|| SlowRun {
                points: VecDeque::with_capacity(self.params.m),
                count: 0,
                confirmed: false,
            });
            if run.points.len() == self.params.m {
                run.points.pop_front();
            }
            run.points.push_back((position, t));
            run.count += 1;
            if !run.confirmed && run.count >= self.params.m {
                run.confirmed = true;
                let (mp, mt) = median_point(run.points.make_contiguous());
                out.push(self.point(mp, mt, Annotation::SlowMotionStart, v_now));
            }
        } else {
            self.close_slow(out, t, position, v_now);
        }

        // ---- Turns -------------------------------------------------------
        if is_sharp_turn {
            out.push(self.point(
                position,
                t,
                Annotation::Turn { change_deg: turn_change },
                v_now,
            ));
            self.turn_deltas.clear();
        } else if moving_now && was_moving {
            // Accumulate drift over the last m−1 steps for smooth turns.
            if self.turn_deltas.len() == self.params.m.saturating_sub(1) {
                self.turn_deltas.pop_front();
            }
            self.turn_deltas.push_back(turn_change);
            let cumulative: f64 = self.turn_deltas.iter().sum();
            if cumulative.abs() > self.params.turn_threshold_deg {
                out.push(self.point(
                    position,
                    t,
                    Annotation::SmoothTurn { cumulative_deg: cumulative },
                    v_now,
                ));
                self.turn_deltas.clear();
            }
        } else {
            self.turn_deltas.clear();
        }

        // ---- Speed change ------------------------------------------------
        if speed_changed && !is_sharp_turn {
            out.push(self.point(
                position,
                t,
                Annotation::SpeedChange {
                    prev_knots: v_prev.speed_knots,
                    now_knots: v_now.speed_knots,
                },
                v_now,
            ));
        }

        self.accept(position, t, v_now, true);
    }

    /// Flushes open durative states at end of stream (or vessel removal)
    /// and anchors the trajectory tail with a [`Annotation::TrackEnd`]
    /// point at the last accepted fix, so reconstruction covers the final
    /// leg of the voyage.
    pub fn finish(&mut self) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// Buffer-reusing form of [`VesselTracker::finish`].
    pub fn finish_into(&mut self, out: &mut Vec<CriticalPoint>) {
        if let Some(last) = self.last.take() {
            self.close_stop(out, last.timestamp, last.position, last.velocity);
            self.close_slow(out, last.timestamp, last.position, last.velocity);
            out.push(self.point(
                last.position,
                last.timestamp,
                Annotation::TrackEnd,
                last.velocity,
            ));
        }
    }

    /// Reports a communication gap for a vessel that has been silent for
    /// more than ΔT as of `now`, without waiting for its next fix — the
    /// push-style detection needed for vessels that never report again
    /// (e.g. a transmitter switched off for good near a protected area).
    ///
    /// Emits at most one [`Annotation::GapStart`] per silence: repeated
    /// sweeps are idempotent, and the eventual next fix (if any) emits the
    /// matching [`Annotation::GapEnd`] instead of a duplicate start.
    pub fn sweep_gap(&mut self, now: Timestamp) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        self.sweep_gap_into(now, &mut out);
        out
    }

    /// Buffer-reusing form of [`VesselTracker::sweep_gap`].
    pub fn sweep_gap_into(&mut self, now: Timestamp, out: &mut Vec<CriticalPoint>) {
        let Some(last) = self.last else {
            return;
        };
        if self.gap_open || (now - last.timestamp) <= self.params.gap_period {
            return;
        }
        self.close_stop(out, last.timestamp, last.position, last.velocity);
        self.close_slow(out, last.timestamp, last.position, last.velocity);
        out.push(self.point(
            last.position,
            last.timestamp,
            Annotation::GapStart,
            last.velocity,
        ));
        self.reset_motion_state();
        self.gap_open = true;
    }

    /// Whether a communication gap is currently open (reported by a sweep
    /// and not yet closed by a fresh fix).
    #[must_use]
    pub fn gap_open(&self) -> bool {
        self.gap_open
    }

    /// Whether a long-term stop is currently confirmed.
    #[must_use]
    pub fn in_confirmed_stop(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.confirmed)
    }

    /// Whether slow motion is currently confirmed.
    #[must_use]
    pub fn in_confirmed_slow_motion(&self) -> bool {
        self.slow.as_ref().is_some_and(|s| s.confirmed)
    }

    // ---- internals ------------------------------------------------------

    fn is_outlier(&self, v_now: VelocityVector, v_prev: VelocityVector, prev_known: bool) -> bool {
        if self.history.len() < 3 {
            return false;
        }
        // Bounded sum over cached pair distances — bit-identical to the
        // former collect-and-recompute over `velocity::mean_speed_knots`,
        // without the allocation and the m−1 Haversine evaluations.
        let Some(mean) = self.history.mean_speed_knots() else {
            return false;
        };
        // Hard speed explosion: no plausible vessel motion.
        let hard = v_now.speed_knots
            > (mean * self.params.outlier_speed_factor).max(self.params.outlier_speed_floor_knots);
        // Softer spike: clearly faster than the recent course AND veering
        // sharply off the previous heading — the "both speed and heading"
        // signature of a corrupted fix.
        let spike = prev_known
            && v_now.speed_knots > (mean * 2.0).max(25.0)
            && v_now.heading_change_deg(v_prev) > 60.0;
        hard || spike
    }

    fn accept(
        &mut self,
        position: GeoPoint,
        t: Timestamp,
        v: VelocityVector,
        velocity_known: bool,
    ) {
        self.last = Some(Fix {
            position,
            timestamp: t,
            velocity: v,
            velocity_known,
        });
        self.history.push(position, t);
    }

    fn reset_motion_state(&mut self) {
        self.history.clear();
        self.turn_deltas.clear();
        self.stop = None;
        self.slow = None;
    }

    fn close_stop(
        &mut self,
        out: &mut Vec<CriticalPoint>,
        t: Timestamp,
        position: GeoPoint,
        v: VelocityVector,
    ) {
        if let Some(run) = self.stop.take() {
            if run.confirmed {
                let duration = t - run.start;
                out.push(self.point(
                    position,
                    t,
                    Annotation::StopEnd {
                        centroid: run.centroid(),
                        duration,
                    },
                    v,
                ));
            }
        }
    }

    fn close_slow(
        &mut self,
        out: &mut Vec<CriticalPoint>,
        t: Timestamp,
        position: GeoPoint,
        v: VelocityVector,
    ) {
        if let Some(run) = self.slow.take() {
            if run.confirmed {
                out.push(self.point(position, t, Annotation::SlowMotionEnd, v));
            }
        }
    }

    fn point(
        &mut self,
        position: GeoPoint,
        t: Timestamp,
        annotation: Annotation,
        v: VelocityVector,
    ) -> CriticalPoint {
        self.stats.critical += 1;
        CriticalPoint {
            mmsi: self.mmsi,
            position,
            timestamp: t,
            annotation,
            speed_knots: v.speed_knots,
            heading_deg: v.heading_deg,
        }
    }
}

/// Median position of a run: the element whose timestamp is the middle of
/// the run (the paper reports "the median of these m positions").
fn median_point(points: &[(GeoPoint, Timestamp)]) -> (GeoPoint, Timestamp) {
    points[points.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Annotation as A;
    use maritime_geo::{destination, knots_to_mps};

    fn tracker() -> VesselTracker {
        VesselTracker::new(Mmsi(237_000_001), TrackerParams::default())
    }

    /// Generates fixes along a straight line at constant speed.
    fn straight_leg(
        from: GeoPoint,
        bearing: f64,
        speed_knots: f64,
        step_secs: i64,
        n: usize,
        t0: Timestamp,
    ) -> Vec<(GeoPoint, Timestamp)> {
        let step_m = knots_to_mps(speed_knots) * step_secs as f64;
        (0..n)
            .map(|i| {
                (
                    destination(from, bearing, step_m * i as f64),
                    t0 + maritime_stream::Duration::secs(step_secs * i as i64),
                )
            })
            .collect()
    }

    fn feed(tr: &mut VesselTracker, fixes: &[(GeoPoint, Timestamp)]) -> Vec<CriticalPoint> {
        fixes
            .iter()
            .flat_map(|(p, t)| tr.process(*p, *t))
            .collect()
    }

    #[test]
    fn first_fix_is_track_start() {
        let mut tr = tracker();
        let cps = tr.process(GeoPoint::new(24.0, 37.0), Timestamp(0));
        assert_eq!(cps.len(), 1);
        assert!(matches!(cps[0].annotation, A::TrackStart));
    }

    #[test]
    fn straight_cruise_emits_no_extra_critical_points() {
        let mut tr = tracker();
        let fixes = straight_leg(GeoPoint::new(24.0, 37.0), 45.0, 12.0, 30, 40, Timestamp(0));
        let cps = feed(&mut tr, &fixes);
        // Only the TrackStart anchor; everything else is superfluous.
        assert_eq!(cps.len(), 1, "{:?}", cps.iter().map(|c| c.annotation).collect::<Vec<_>>());
    }

    #[test]
    fn stale_fixes_are_ignored() {
        let mut tr = tracker();
        tr.process(GeoPoint::new(24.0, 37.0), Timestamp(100));
        let cps = tr.process(GeoPoint::new(24.1, 37.0), Timestamp(50));
        assert!(cps.is_empty());
        assert_eq!(tr.stats().stale, 1);
    }

    #[test]
    fn sharp_turn_detected() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        let mut fixes = straight_leg(p0, 90.0, 12.0, 30, 10, Timestamp(0));
        // Turn 60 degrees at the last point and continue.
        let corner = fixes.last().unwrap().0;
        let after = straight_leg(corner, 150.0, 12.0, 30, 10, Timestamp(10 * 30));
        fixes.extend(after.into_iter().skip(1));
        let cps = feed(&mut tr, &fixes);
        assert!(
            cps.iter()
                .any(|c| matches!(c.annotation, A::Turn { change_deg } if change_deg > 15.0)),
            "{cps:?}"
        );
    }

    #[test]
    fn smooth_turn_accumulates_small_changes() {
        let mut tr = tracker();
        let mut p = GeoPoint::new(24.0, 37.0);
        let mut bearing = 90.0;
        let mut t = Timestamp(0);
        let step_m = knots_to_mps(12.0) * 30.0;
        let mut fixes = vec![(p, t)];
        // 4 degrees per step: individually below the 15-degree threshold,
        // cumulatively far above it.
        for _ in 0..12 {
            p = destination(p, bearing, step_m);
            bearing += 4.0;
            t = t + maritime_stream::Duration::secs(30);
            fixes.push((p, t));
        }
        let cps = feed(&mut tr, &fixes);
        assert!(
            cps.iter()
                .any(|c| matches!(c.annotation, A::SmoothTurn { cumulative_deg } if cumulative_deg > 15.0)),
            "{cps:?}"
        );
        assert!(
            !cps.iter().any(|c| matches!(c.annotation, A::Turn { .. })),
            "no sharp turn should fire: {cps:?}"
        );
    }

    #[test]
    fn speed_change_detected_on_deceleration() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        let mut fixes = straight_leg(p0, 90.0, 14.0, 30, 8, Timestamp(0));
        let from = fixes.last().unwrap().0;
        // Drop to 7 knots: |7-14|/7 = 1.0 > 0.25.
        let slow = straight_leg(from, 90.0, 7.0, 30, 8, Timestamp(8 * 30));
        fixes.extend(slow.into_iter().skip(1));
        let cps = feed(&mut tr, &fixes);
        assert!(
            cps.iter().any(|c| matches!(
                c.annotation,
                A::SpeedChange { prev_knots, now_knots } if prev_knots > now_knots
            )),
            "{cps:?}"
        );
    }

    #[test]
    fn long_term_stop_start_and_end() {
        let mut tr = tracker();
        let anchor = GeoPoint::new(24.0, 37.0);
        // Approach, then 15 jittered fixes within ~30 m, then leave.
        let mut fixes = straight_leg(
            destination(anchor, 270.0, 3_000.0),
            90.0,
            10.0,
            30,
            10,
            Timestamp(0),
        );
        let mut t = Timestamp(10 * 30);
        for i in 0..15 {
            let p = destination(anchor, (i * 53 % 360) as f64, 15.0);
            fixes.push((p, t));
            t = t + maritime_stream::Duration::secs(60);
        }
        let depart = straight_leg(anchor, 0.0, 10.0, 30, 10, t);
        fixes.extend(depart);
        let cps = feed(&mut tr, &fixes);
        let starts: Vec<_> = cps
            .iter()
            .filter(|c| matches!(c.annotation, A::StopStart))
            .collect();
        let ends: Vec<_> = cps
            .iter()
            .filter(|c| matches!(c.annotation, A::StopEnd { .. }))
            .collect();
        assert_eq!(starts.len(), 1, "{cps:?}");
        assert_eq!(ends.len(), 1, "{cps:?}");
        if let A::StopEnd { centroid, duration } = ends[0].annotation {
            assert!(haversine_distance_m(centroid, anchor) < 100.0);
            assert!(duration.as_secs() >= 10 * 60, "duration {duration}");
        }
        // The stop interval is ordered.
        assert!(starts[0].timestamp < ends[0].timestamp);
    }

    #[test]
    fn slow_motion_start_and_end() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        let mut fixes = straight_leg(p0, 90.0, 12.0, 30, 8, Timestamp(0));
        let from = fixes.last().unwrap().0;
        // 2.5 knots for 15 fixes: above v_min (1), below v_low (4).
        let crawl = straight_leg(from, 90.0, 2.5, 60, 15, Timestamp(8 * 30));
        fixes.extend(crawl.into_iter().skip(1));
        let from2 = fixes.last().unwrap().0;
        let resume = straight_leg(from2, 90.0, 12.0, 30, 8, Timestamp(8 * 30 + 15 * 60));
        fixes.extend(resume.into_iter().skip(1));
        let cps = feed(&mut tr, &fixes);
        assert!(
            cps.iter().any(|c| matches!(c.annotation, A::SlowMotionStart)),
            "{cps:?}"
        );
        assert!(
            cps.iter().any(|c| matches!(c.annotation, A::SlowMotionEnd)),
            "{cps:?}"
        );
        // A crawl along a path must NOT be classified as a stop.
        assert!(!cps.iter().any(|c| matches!(c.annotation, A::StopStart)));
    }

    #[test]
    fn gap_emits_start_and_end() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        tr.process(p0, Timestamp(0));
        tr.process(destination(p0, 90.0, 300.0), Timestamp(60));
        // Silent for 20 minutes (> 10-minute threshold).
        let far = destination(p0, 90.0, 8_000.0);
        let cps = tr.process(far, Timestamp(60 + 1_200));
        let labels: Vec<_> = cps.iter().map(|c| c.annotation.label()).collect();
        assert_eq!(labels, vec!["gap_start", "gap_end"]);
        // GapStart is back-dated to the last position seen.
        assert_eq!(cps[0].timestamp, Timestamp(60));
        assert_eq!(cps[1].timestamp, Timestamp(1_260));
    }

    #[test]
    fn outlier_is_discarded_and_track_unaffected() {
        let mut tr = tracker();
        let fixes = straight_leg(GeoPoint::new(24.0, 37.0), 90.0, 10.0, 30, 10, Timestamp(0));
        feed(&mut tr, &fixes);
        let last_good = fixes.last().unwrap();
        // A fix 40 km off-course 30 s later: implied speed ~2,600 knots.
        let outlier_pos = destination(last_good.0, 0.0, 40_000.0);
        let cps = tr.process(outlier_pos, last_good.1 + maritime_stream::Duration::secs(30));
        assert!(cps.is_empty(), "{cps:?}");
        assert_eq!(tr.stats().outliers, 1);
        // The course continues from the last good fix without a turn event.
        let next = destination(
            last_good.0,
            90.0,
            knots_to_mps(10.0) * 60.0,
        );
        let cps = tr.process(next, last_good.1 + maritime_stream::Duration::secs(60));
        assert!(
            !cps.iter().any(|c| matches!(c.annotation, A::Turn { .. })),
            "{cps:?}"
        );
    }

    #[test]
    fn finish_closes_open_stop() {
        let mut tr = tracker();
        let anchor = GeoPoint::new(24.0, 37.0);
        let mut t = Timestamp(0);
        for i in 0..15 {
            let p = destination(anchor, (i * 91 % 360) as f64, 10.0);
            tr.process(p, t);
            t = t + maritime_stream::Duration::secs(60);
        }
        assert!(tr.in_confirmed_stop());
        let cps = tr.finish();
        assert!(cps.iter().any(|c| matches!(c.annotation, A::StopEnd { .. })));
        assert!(!tr.in_confirmed_stop());
    }

    #[test]
    fn gap_closes_open_stop_before_reporting() {
        let mut tr = tracker();
        let anchor = GeoPoint::new(24.0, 37.0);
        let mut t = Timestamp(0);
        for i in 0..15 {
            let p = destination(anchor, (i * 91 % 360) as f64, 10.0);
            tr.process(p, t);
            t = t + maritime_stream::Duration::secs(60);
        }
        assert!(tr.in_confirmed_stop());
        // Vanish for an hour, reappear far away.
        let cps = tr.process(
            destination(anchor, 90.0, 20_000.0),
            t + maritime_stream::Duration::hours(1),
        );
        let labels: Vec<_> = cps.iter().map(|c| c.annotation.label()).collect();
        assert_eq!(labels, vec!["stop_end", "gap_start", "gap_end"]);
    }

    #[test]
    fn sweep_reports_gap_for_silent_vessel() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        tr.process(p0, Timestamp(0));
        tr.process(destination(p0, 90.0, 300.0), Timestamp(60));
        // Nothing yet at 5 minutes of silence.
        assert!(tr.sweep_gap(Timestamp(60 + 300)).is_empty());
        // At 11 minutes the gap is reported at the last known fix.
        let cps = tr.sweep_gap(Timestamp(60 + 660));
        assert_eq!(cps.len(), 1);
        assert!(matches!(cps[0].annotation, A::GapStart));
        assert_eq!(cps[0].timestamp, Timestamp(60));
        assert!(tr.gap_open());
        // Idempotent: further sweeps stay quiet.
        assert!(tr.sweep_gap(Timestamp(60 + 2_000)).is_empty());
    }

    #[test]
    fn next_fix_after_sweep_emits_only_gap_end() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        tr.process(p0, Timestamp(0));
        tr.process(destination(p0, 90.0, 300.0), Timestamp(60));
        tr.sweep_gap(Timestamp(60 + 660));
        let cps = tr.process(destination(p0, 90.0, 9_000.0), Timestamp(60 + 1_200));
        let labels: Vec<_> = cps.iter().map(|c| c.annotation.label()).collect();
        assert_eq!(labels, vec!["gap_end"], "no duplicate gap_start");
        assert!(!tr.gap_open());
    }

    #[test]
    fn sweep_closes_open_stop_first() {
        let mut tr = tracker();
        let anchor = GeoPoint::new(24.0, 37.0);
        let mut t = Timestamp(0);
        for i in 0..15 {
            tr.process(destination(anchor, (i * 91 % 360) as f64, 10.0), t);
            t = t + maritime_stream::Duration::secs(60);
        }
        assert!(tr.in_confirmed_stop());
        let cps = tr.sweep_gap(t + maritime_stream::Duration::minutes(15));
        let labels: Vec<_> = cps.iter().map(|c| c.annotation.label()).collect();
        assert_eq!(labels, vec!["stop_end", "gap_start"]);
        assert!(!tr.in_confirmed_stop());
    }

    #[test]
    fn late_fix_within_threshold_closes_premature_gap() {
        let mut tr = tracker();
        let p0 = GeoPoint::new(24.0, 37.0);
        tr.process(p0, Timestamp(0));
        tr.process(destination(p0, 90.0, 300.0), Timestamp(60));
        tr.sweep_gap(Timestamp(60 + 660));
        // A delayed fix from t=300 arrives: the silence was < ΔT after
        // all. The gap closes without a second start.
        let cps = tr.process(destination(p0, 90.0, 1_500.0), Timestamp(300));
        let labels: Vec<_> = cps.iter().map(|c| c.annotation.label()).collect();
        assert_eq!(labels, vec!["gap_end"]);
        assert!(!tr.gap_open());
    }

    #[test]
    fn compression_is_high_on_realistic_leg() {
        // A long cruise with mild heading wobble and one port stop should
        // retain only a few percent of raw positions.
        let mut tr = tracker();
        let mut fixes = straight_leg(GeoPoint::new(23.7, 37.9), 135.0, 14.0, 30, 400, Timestamp(0));
        let arrival = fixes.last().unwrap().0;
        let mut t = Timestamp(400 * 30);
        for i in 0..30 {
            fixes.push((destination(arrival, (i * 37 % 360) as f64, 12.0), t));
            t = t + maritime_stream::Duration::secs(120);
        }
        let cps = feed(&mut tr, &fixes);
        let ratio = 1.0 - cps.len() as f64 / fixes.len() as f64;
        assert!(ratio > 0.9, "compression ratio {ratio}, {} cps", cps.len());
    }
}
