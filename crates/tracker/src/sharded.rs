//! Sharded parallel operation of the trajectory detection component.
//!
//! The mobility tracker keeps *per-vessel* state machines with no
//! cross-vessel interaction (§3: every critical point is derived from one
//! vessel's own fixes), so the fleet partitions cleanly: hash each MMSI to
//! one of `n` worker shards and give every shard its own
//! [`WindowedTracker`]. Each slide fans the positional batch out to the
//! owning shards over bounded channels (backpressure: a slow shard stalls
//! the feeder rather than letting queues grow without bound), runs the
//! shards concurrently, and merges the per-shard critical points, evicted
//! deltas, and synopsis statistics back into a single slide-ordered
//! report.
//!
//! **Equivalence invariant.** A vessel's tuples always reach the same
//! shard, in stream order, so its critical-point subsequence is *bit
//! identical* to the serial tracker's. Whole-fleet outputs differ only in
//! the interleaving of independent vessels; after [`canonical_order`]
//! (stable sort by `(timestamp, mmsi)`) the serial and sharded streams
//! are equal element-for-element. The differential harness in
//! `tests/sharded_equivalence.rs` enforces exactly this.

use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use maritime_ais::PositionTuple;
use maritime_obs::flight::{self, FlightKind};
use maritime_obs::{names, LazyCounter, LazyGauge, LazyHistogram};
use maritime_stream::{ShardRouter, Timestamp, WindowSpec};

use crate::events::CriticalPoint;
use crate::params::TrackerParams;
use crate::tracker::FleetStats;
use crate::window::{SlideReport, WindowedTracker};

/// In-flight slides a shard may buffer before the feeder blocks.
const COMMAND_BACKLOG: usize = 2;

/// Backpressure and balance metrics for the sharded backend (see
/// `OBSERVABILITY.md`). The vendored channel exposes no queue length, so
/// depth is observed from the outside: commands in flight (sent minus
/// answered) and how long the feeder blocked on a full channel.
static OBS_BATCHES_ROUTED: LazyCounter = LazyCounter::new(names::SHARD_BATCHES_ROUTED);
static OBS_INFLIGHT: LazyGauge = LazyGauge::new(names::SHARD_COMMANDS_INFLIGHT);
static OBS_SEND_WAIT: LazyHistogram = LazyHistogram::new(names::SHARD_SEND_WAIT_NS);
static OBS_IMBALANCE: LazyGauge = LazyGauge::new(names::SHARD_BATCH_IMBALANCE);

/// Orders critical points canonically: stable sort by `(timestamp, mmsi)`.
///
/// Both the serial tracker and every shard emit each vessel's points in
/// per-vessel time order, so a *stable* sort on this key maps the serial
/// and merged-sharded streams to the same sequence — the ordering under
/// which differential tests compare them.
pub fn canonical_order(points: &mut [CriticalPoint]) {
    points.sort_by_key(|cp| (cp.timestamp, cp.mmsi.0));
}

/// Commands accepted by a shard worker.
#[derive(Debug)]
enum ShardCmd {
    /// Run one window slide over the shard's routed tuples.
    Slide {
        query_time: Timestamp,
        tuples: Vec<PositionTuple>,
    },
    /// End of stream: flush open states and drain the window.
    Finish,
    /// Report fleet statistics for the shard's vessels.
    Stats,
}

/// Replies produced by a shard worker, in command order.
enum ShardReply {
    Slide {
        report: SlideReport,
        elapsed: StdDuration,
    },
    Finish {
        final_critical: Vec<CriticalPoint>,
        residual: Vec<CriticalPoint>,
    },
    Stats(FleetStats),
}

/// What one sharded slide produced: the merged [`SlideReport`] plus the
/// per-shard wall-clock cost of the tracking phase.
#[derive(Debug, Clone)]
pub struct ShardedSlideReport {
    /// Merged report in canonical order (see [`canonical_order`]).
    pub merged: SlideReport,
    /// Tracking time spent by each shard this slide, in shard order.
    pub shard_elapsed: Vec<StdDuration>,
}

struct ShardHandle {
    /// `None` only during shutdown (dropping the sender closes the loop).
    cmd_tx: Option<Sender<ShardCmd>>,
    reply_rx: Receiver<ShardReply>,
    join: Option<JoinHandle<()>>,
}

/// Send waits above this are treated as channel-full stalls and land in
/// the flight recorder: an unblocked send returns in nanoseconds, so a
/// millisecond-scale wait means the shard fell a full backlog behind.
const STALL_THRESHOLD: StdDuration = StdDuration::from_millis(1);

impl ShardHandle {
    fn send(&self, cmd: ShardCmd) {
        let t0 = Instant::now();
        self.cmd_tx
            .as_ref()
            .expect("tracker live")
            .send(cmd)
            .expect("shard worker alive");
        let waited = t0.elapsed();
        OBS_SEND_WAIT.record(u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX));
        if waited >= STALL_THRESHOLD {
            flight::record(FlightKind::Backpressure, || {
                format!("shard send stalled {}us on full channel", waited.as_micros())
            });
        }
        OBS_INFLIGHT.add(1);
    }

    fn recv(&self) -> ShardReply {
        let reply = self.reply_rx.recv().expect("shard worker alive");
        OBS_INFLIGHT.add(-1);
        reply
    }
}

/// A fleet tracker sharded across `n` worker threads by MMSI hash.
///
/// Mirrors the [`WindowedTracker`] API (`slide`, `finish`, stats) so the
/// pipeline can swap backends behind a configuration knob. Workers are
/// persistent OS threads, spawned once and fed over bounded channels;
/// dropping the tracker shuts them down.
pub struct ShardedTracker {
    router: ShardRouter,
    shards: Vec<ShardHandle>,
}

impl std::fmt::Debug for ShardedTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTracker")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedTracker {
    /// Creates a sharded tracker with `shards ≥ 1` workers, each owning a
    /// [`WindowedTracker`] built from the same parameters and window.
    ///
    /// # Panics
    /// If `shards` is zero.
    #[must_use]
    pub fn new(params: TrackerParams, spec: WindowSpec, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded tracker needs at least one shard");
        let handles = (0..shards)
            .map(|_| {
                let (cmd_tx, cmd_rx) = bounded::<ShardCmd>(COMMAND_BACKLOG);
                let (reply_tx, reply_rx) = bounded::<ShardReply>(COMMAND_BACKLOG);
                let join = std::thread::spawn(move || {
                    shard_worker(params, spec, &cmd_rx, &reply_tx);
                });
                ShardHandle {
                    cmd_tx: Some(cmd_tx),
                    reply_rx,
                    join: Some(join),
                }
            })
            .collect();
        Self {
            router: ShardRouter::new(shards),
            shards: handles,
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a vessel.
    #[must_use]
    pub fn shard_of(&self, mmsi: maritime_ais::Mmsi) -> usize {
        self.router.route(u64::from(mmsi.0))
    }

    /// Processes one slide: routes the batch to the owning shards,
    /// advances *every* shard's window to `query_time` (a shard with no
    /// fresh tuples must still evict and sweep communication gaps), and
    /// merges the per-shard reports canonically.
    pub fn slide(&mut self, query_time: Timestamp, batch: &[PositionTuple]) -> ShardedSlideReport {
        let mut routed: Vec<Vec<PositionTuple>> = vec![Vec::new(); self.shards.len()];
        for tuple in batch {
            routed[self.router.route(u64::from(tuple.mmsi.0))].push(*tuple);
        }
        let largest = routed.iter().map(Vec::len).max().unwrap_or(0);
        let smallest = routed.iter().map(Vec::len).min().unwrap_or(0);
        OBS_IMBALANCE.set((largest - smallest) as i64);
        OBS_BATCHES_ROUTED.add(self.shards.len() as u64);
        for (shard, tuples) in self.shards.iter().zip(routed) {
            shard.send(ShardCmd::Slide { query_time, tuples });
        }

        let mut merged = SlideReport {
            query_time,
            admitted: 0,
            fresh_critical: Vec::new(),
            evicted_delta: Vec::new(),
            window_size: 0,
        };
        let mut shard_elapsed = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match shard.recv() {
                ShardReply::Slide { report, elapsed } => {
                    merged.admitted += report.admitted;
                    merged.window_size += report.window_size;
                    merged.fresh_critical.extend(report.fresh_critical);
                    merged.evicted_delta.extend(report.evicted_delta);
                    shard_elapsed.push(elapsed);
                }
                _ => unreachable!("replies arrive in command order"),
            }
        }
        canonical_order(&mut merged.fresh_critical);
        canonical_order(&mut merged.evicted_delta);
        ShardedSlideReport {
            merged,
            shard_elapsed,
        }
    }

    /// Ends the stream on every shard and merges the results canonically.
    /// Returns `(final critical points, remaining window contents)`, the
    /// same shape as [`WindowedTracker::finish`].
    pub fn finish(&mut self) -> (Vec<CriticalPoint>, Vec<CriticalPoint>) {
        for shard in &self.shards {
            shard.send(ShardCmd::Finish);
        }
        let mut final_critical = Vec::new();
        let mut residual = Vec::new();
        for shard in &self.shards {
            match shard.recv() {
                ShardReply::Finish {
                    final_critical: f,
                    residual: r,
                } => {
                    final_critical.extend(f);
                    residual.extend(r);
                }
                _ => unreachable!("replies arrive in command order"),
            }
        }
        canonical_order(&mut final_critical);
        canonical_order(&mut residual);
        (final_critical, residual)
    }

    /// Fleet statistics summed across shards. Vessels are disjoint by
    /// construction (each MMSI lives on exactly one shard), so sums are
    /// exact, not estimates.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        for shard in &self.shards {
            shard.send(ShardCmd::Stats);
        }
        let mut total = FleetStats::default();
        for shard in &self.shards {
            match shard.recv() {
                ShardReply::Stats(s) => {
                    total.vessels += s.vessels;
                    total.raw += s.raw;
                    total.critical += s.critical;
                    total.outliers += s.outliers;
                    total.stale += s.stale;
                }
                _ => unreachable!("replies arrive in command order"),
            }
        }
        total
    }

}

impl Drop for ShardedTracker {
    fn drop(&mut self) {
        // Closing every command channel ends the workers' receive loops.
        for shard in &mut self.shards {
            shard.cmd_tx.take();
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// A shard worker's command loop: owns one [`WindowedTracker`] for the
/// vessels routed to it and answers each command with exactly one reply.
fn shard_worker(
    params: TrackerParams,
    spec: WindowSpec,
    cmd_rx: &Receiver<ShardCmd>,
    reply_tx: &Sender<ShardReply>,
) {
    let mut tracker = WindowedTracker::new(params, spec);
    while let Ok(cmd) = cmd_rx.recv() {
        let reply = match cmd {
            ShardCmd::Slide { query_time, tuples } => {
                let t0 = Instant::now();
                let report = tracker.slide(query_time, &tuples);
                ShardReply::Slide {
                    report,
                    elapsed: t0.elapsed(),
                }
            }
            ShardCmd::Finish => {
                let (final_critical, residual) = tracker.finish();
                ShardReply::Finish {
                    final_critical,
                    residual,
                }
            }
            ShardCmd::Stats => ShardReply::Stats(tracker.tracker().stats()),
        };
        if reply_tx.send(reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};
    use maritime_stream::{Duration, SlideBatches};

    fn spec(range_h: i64, slide_min: i64) -> WindowSpec {
        WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap()
    }

    fn run_serial(
        stream: Vec<(Timestamp, PositionTuple)>,
        w: WindowSpec,
    ) -> (Vec<CriticalPoint>, Vec<CriticalPoint>, FleetStats) {
        let mut wt = WindowedTracker::new(TrackerParams::default(), w);
        let mut fresh = Vec::new();
        let mut evicted = Vec::new();
        for batch in SlideBatches::new(stream.into_iter(), w, Timestamp::ZERO) {
            let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
            let report = wt.slide(batch.query_time, &tuples);
            let mut f = report.fresh_critical;
            canonical_order(&mut f);
            fresh.extend(f);
            let mut e = report.evicted_delta;
            canonical_order(&mut e);
            evicted.extend(e);
        }
        let (mut last, _) = wt.finish();
        canonical_order(&mut last);
        fresh.extend(last);
        (fresh, evicted, wt.tracker().stats())
    }

    fn run_sharded(
        stream: Vec<(Timestamp, PositionTuple)>,
        w: WindowSpec,
        shards: usize,
    ) -> (Vec<CriticalPoint>, Vec<CriticalPoint>, FleetStats) {
        let mut st = ShardedTracker::new(TrackerParams::default(), w, shards);
        let mut fresh = Vec::new();
        let mut evicted = Vec::new();
        for batch in SlideBatches::new(stream.into_iter(), w, Timestamp::ZERO) {
            let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
            let report = st.slide(batch.query_time, &tuples);
            fresh.extend(report.merged.fresh_critical);
            evicted.extend(report.merged.evicted_delta);
        }
        let (last, _) = st.finish();
        fresh.extend(last);
        let stats = st.stats();
        (fresh, evicted, stats)
    }

    #[test]
    fn two_shards_match_serial_critical_stream() {
        let sim = FleetSimulator::new(FleetConfig::tiny(41));
        let stream = to_tuple_stream(&sim.generate());
        let w = spec(1, 30);
        let (serial_fresh, serial_evicted, serial_stats) = run_serial(stream.clone(), w);
        let (sharded_fresh, sharded_evicted, sharded_stats) = run_sharded(stream, w, 2);
        assert_eq!(serial_fresh, sharded_fresh);
        assert_eq!(serial_evicted, sharded_evicted);
        assert_eq!(serial_stats.raw, sharded_stats.raw);
        assert_eq!(serial_stats.critical, sharded_stats.critical);
        assert_eq!(serial_stats.vessels, sharded_stats.vessels);
    }

    #[test]
    fn single_shard_is_the_serial_tracker() {
        let sim = FleetSimulator::new(FleetConfig::tiny(42));
        let stream = to_tuple_stream(&sim.generate());
        let w = spec(1, 30);
        let (serial_fresh, serial_evicted, _) = run_serial(stream.clone(), w);
        let (sharded_fresh, sharded_evicted, _) = run_sharded(stream, w, 1);
        assert_eq!(serial_fresh, sharded_fresh);
        assert_eq!(serial_evicted, sharded_evicted);
    }

    #[test]
    fn empty_slides_still_advance_all_shards() {
        // One vessel only: with 4 shards, 3 shards see no tuples, yet
        // their windows must advance and eviction must stay consistent.
        let sim = FleetSimulator::new(FleetConfig {
            vessels: 1,
            ..FleetConfig::tiny(43)
        });
        let stream = to_tuple_stream(&sim.generate());
        let w = spec(1, 30);
        let (serial_fresh, serial_evicted, _) = run_serial(stream.clone(), w);
        let (sharded_fresh, sharded_evicted, _) = run_sharded(stream, w, 4);
        assert_eq!(serial_fresh, sharded_fresh);
        assert_eq!(serial_evicted, sharded_evicted);
    }

    #[test]
    fn drop_shuts_workers_down() {
        let st = ShardedTracker::new(TrackerParams::default(), spec(1, 30), 3);
        drop(st); // must not hang or panic
    }
}
