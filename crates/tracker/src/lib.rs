//! Trajectory detection component (§3 of the paper).
//!
//! Consumes the positional stream `⟨MMSI, Lon, Lat, τ⟩` and tracks major
//! changes along each vessel's movement, identifying annotated *critical
//! points* — a stop, a sudden or smooth turn, slow motion, a communication
//! gap, a speed change — while filtering off-course outliers as noise.
//! Retaining only critical points compresses the stream by ~94-95 % with
//! negligible loss in accuracy (§5.1).
//!
//! Layout:
//!
//! * [`params`] — the calibrated thresholds of Table 3;
//! * [`velocity`] — instantaneous velocity vectors from consecutive fixes;
//! * [`history`] — struct-of-arrays ring of recent fixes with cached pair
//!   distances (the hot-path layout behind the outlier test);
//! * [`events`] — critical-point annotations and movement events;
//! * [`vessel`] — the per-vessel detection state machine (instantaneous
//!   events, long-lasting events, outlier filtering);
//! * [`tracker`] — the fleet-level *Mobility Tracker* of Figure 1;
//! * [`window`] — windowed operation: per-slide batches, "delta" critical
//!   point eviction toward the staging area;
//! * [`sharded`] — MMSI-sharded parallel operation across worker threads,
//!   differentially equivalent to the serial tracker;
//! * [`compression`] — compression-ratio accounting (Figure 9);
//! * [`accuracy`] — synchronized RMSE of reconstructed trajectories
//!   (Figure 8);
//! * [`synopsis`] — per-vessel trajectory synopses and reconstruction;
//! * [`baselines`] — Douglas–Peucker and dead-reckoning comparison
//!   baselines (the related work of §6).

#![warn(missing_docs)]

pub mod accuracy;
pub mod baselines;
pub mod compression;
pub mod events;
pub mod history;
pub mod params;
pub mod sharded;
pub mod synopsis;
pub mod tracker;
pub mod velocity;
pub mod vessel;
pub mod window;

pub use events::{Annotation, CriticalPoint, MovementEventKind};
pub use params::TrackerParams;
pub use sharded::{canonical_order, ShardedSlideReport, ShardedTracker};
pub use tracker::{MmsiHashBuilder, MobilityTracker};
pub use velocity::VelocityVector;
pub use window::{SlideReport, WindowedTracker};
