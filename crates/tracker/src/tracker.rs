//! The fleet-level Mobility Tracker of Figure 1.
//!
//! "Working entirely in main memory and without any index support, the
//! Mobility Tracker checks when and how velocity changes with time" (§2).
//! It maintains one [`VesselTracker`] per MMSI and fans incoming positional
//! tuples out to them.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use maritime_ais::{Mmsi, PositionTuple};
use maritime_obs::{names, LazyCounter};
use maritime_stream::Timestamp;

use crate::events::CriticalPoint;
use crate::params::TrackerParams;
use crate::vessel::{VesselStats, VesselTracker};

/// Finalizer-style hasher for `Mmsi` keys (splitmix64). MMSIs are
/// nine-digit identifiers already spread over their domain, and the fleet
/// map is probed once per position — DoS-resistant SipHash buys nothing
/// here and costs measurably on the hot path. Safe for determinism:
/// everything that iterates the vessel map ([`MobilityTracker::sweep_gaps`],
/// [`MobilityTracker::finish`]) sorts by MMSI first, and the stats sums
/// are order-independent.
#[derive(Debug, Default, Clone, Copy)]
pub struct MmsiHasher(u64);

impl Hasher for MmsiHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not taken by `Mmsi`, whose derived Hash writes one
        // u32): FNV-1a fold.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        let mut x = self.0 ^ u64::from(v);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash-state builder for the fleet map.
pub type MmsiHashBuilder = BuildHasherDefault<MmsiHasher>;

/// Global tracking metrics (see `OBSERVABILITY.md`). Counters sum exactly
/// across the MMSI-sharded workers because shards partition the fleet.
static OBS_INGESTED: LazyCounter = LazyCounter::new(names::TRACKER_POINTS_INGESTED);
static OBS_CRITICAL: LazyCounter = LazyCounter::new(names::TRACKER_CRITICAL_POINTS);

/// Aggregated counters across the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Vessels seen so far.
    pub vessels: usize,
    /// Raw positional tuples processed.
    pub raw: u64,
    /// Critical points emitted.
    pub critical: u64,
    /// Off-course positions discarded.
    pub outliers: u64,
    /// Stale tuples ignored.
    pub stale: u64,
}

impl FleetStats {
    /// The compression ratio: fraction of raw positions *not* retained as
    /// critical points ("A compression ratio close to 1 signifies stronger
    /// data reduction", §5.1). 0.0 for an empty stream.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.raw == 0 {
            0.0
        } else {
            1.0 - self.critical as f64 / self.raw as f64
        }
    }
}

/// The fleet-level mobility tracker.
#[derive(Debug)]
pub struct MobilityTracker {
    params: TrackerParams,
    vessels: HashMap<Mmsi, VesselTracker, MmsiHashBuilder>,
}

impl MobilityTracker {
    /// Creates a tracker for a fleet with the given parameters.
    #[must_use]
    pub fn new(params: TrackerParams) -> Self {
        Self {
            params,
            vessels: HashMap::default(),
        }
    }

    /// The tracker's parameters.
    #[must_use]
    pub fn params(&self) -> TrackerParams {
        self.params
    }

    /// Processes one positional tuple.
    pub fn process(&mut self, tuple: PositionTuple) -> Vec<CriticalPoint> {
        OBS_INGESTED.inc();
        let out = self
            .vessel_mut(tuple.mmsi)
            .process(tuple.position, tuple.timestamp);
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Processes one positional tuple, appending its critical points to
    /// `out` — the allocation-free form of [`MobilityTracker::process`]
    /// for callers that reuse one buffer across a batch.
    pub fn process_into(&mut self, tuple: PositionTuple, out: &mut Vec<CriticalPoint>) {
        OBS_INGESTED.inc();
        let before = out.len();
        self.vessel_mut(tuple.mmsi)
            .process_into(tuple.position, tuple.timestamp, out);
        OBS_CRITICAL.add((out.len() - before) as u64);
    }

    /// Processes a time-ordered batch, concatenating all critical points in
    /// detection order.
    pub fn process_batch<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a PositionTuple>,
    ) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        self.process_batch_into(tuples, &mut out);
        out
    }

    /// Processes a time-ordered batch, appending all critical points to
    /// `out` in detection order. With a buffer grown to the batch
    /// high-water mark, steady-state batches perform no tracker-side heap
    /// allocation.
    pub fn process_batch_into<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a PositionTuple>,
        out: &mut Vec<CriticalPoint>,
    ) {
        let before = out.len();
        let mut admitted = 0u64;
        for t in tuples {
            admitted += 1;
            self.vessel_mut(t.mmsi)
                .process_into(t.position, t.timestamp, out);
        }
        OBS_INGESTED.add(admitted);
        OBS_CRITICAL.add((out.len() - before) as u64);
    }

    /// Checks every tracked vessel for a communication gap at time `now`:
    /// vessels silent for more than ΔT whose gap has not yet been reported
    /// emit a [`crate::events::Annotation::GapStart`]. A vessel that never
    /// reports again would otherwise never trigger its gap, since gaps are
    /// normally detected on the *next* fix — exactly the case that matters
    /// for scenario 3 of §4.1, where the transmitter stays off.
    pub fn sweep_gaps(&mut self, now: Timestamp) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        let mut vessels: Vec<_> = self.vessels.values_mut().collect();
        vessels.sort_by_key(|v| v.mmsi());
        for v in vessels {
            v.sweep_gap_into(now, &mut out);
        }
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Flushes open durative states for every vessel (end of stream).
    pub fn finish(&mut self) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        let mut vessels: Vec<_> = self.vessels.values_mut().collect();
        vessels.sort_by_key(|v| v.mmsi());
        for v in vessels {
            v.finish_into(&mut out);
        }
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Counters aggregated across the fleet.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            vessels: self.vessels.len(),
            ..FleetStats::default()
        };
        for v in self.vessels.values() {
            let VesselStats { raw, critical, outliers, stale } = v.stats();
            s.raw += raw;
            s.critical += critical;
            s.outliers += outliers;
            s.stale += stale;
        }
        s
    }

    /// Number of vessels seen so far (O(1), unlike [`Self::stats`]).
    #[must_use]
    pub fn vessel_count(&self) -> usize {
        self.vessels.len()
    }

    /// Access to a single vessel's tracker, if seen.
    #[must_use]
    pub fn vessel(&self, mmsi: Mmsi) -> Option<&VesselTracker> {
        self.vessels.get(&mmsi)
    }

    fn vessel_mut(&mut self, mmsi: Mmsi) -> &mut VesselTracker {
        let params = self.params;
        self.vessels
            .entry(mmsi)
            .or_insert_with(|| VesselTracker::new(mmsi, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};

    #[test]
    fn tracks_multiple_vessels_independently() {
        let mut tracker = MobilityTracker::new(TrackerParams::default());
        let a = PositionTuple {
            mmsi: Mmsi(1),
            position: maritime_geo::GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(0),
        };
        let b = PositionTuple {
            mmsi: Mmsi(2),
            position: maritime_geo::GeoPoint::new(25.0, 38.0),
            timestamp: Timestamp(0),
        };
        let cps = tracker.process_batch([&a, &b]);
        // Each vessel gets its own TrackStart.
        assert_eq!(cps.len(), 2);
        assert_eq!(tracker.stats().vessels, 2);
    }

    #[test]
    fn fleet_compression_on_synthetic_stream() {
        let sim = FleetSimulator::new(FleetConfig::tiny(21));
        let reports = sim.generate();
        let stream = to_tuple_stream(&reports);
        let mut tracker = MobilityTracker::new(TrackerParams::default());
        for (_, tuple) in &stream {
            tracker.process(*tuple);
        }
        tracker.finish();
        let stats = tracker.stats();
        assert_eq!(stats.raw as usize, stream.len());
        assert!(stats.critical > 0);
        let ratio = stats.compression_ratio();
        // The paper reports ~94%; synthetic noise levels may vary the exact
        // figure, but compression must be strong.
        assert!(ratio > 0.6, "compression ratio {ratio}");
    }

    #[test]
    fn finish_is_deterministic_order() {
        let sim = FleetSimulator::new(FleetConfig::tiny(22));
        let reports = sim.generate();
        let run = |reports: &[maritime_ais::PositionReport]| {
            let mut tracker = MobilityTracker::new(TrackerParams::default());
            for r in reports {
                tracker.process(PositionTuple::from(*r));
            }
            tracker.finish()
        };
        let a = run(&reports);
        let b = run(&reports);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mmsi, y.mmsi);
            assert_eq!(x.timestamp, y.timestamp);
        }
    }

    #[test]
    fn empty_stream_stats() {
        let tracker = MobilityTracker::new(TrackerParams::default());
        let s = tracker.stats();
        assert_eq!(s.raw, 0);
        assert_eq!(s.compression_ratio(), 0.0);
    }
}
