//! The fleet-level Mobility Tracker of Figure 1.
//!
//! "Working entirely in main memory and without any index support, the
//! Mobility Tracker checks when and how velocity changes with time" (§2).
//! It maintains one [`VesselTracker`] per MMSI and fans incoming positional
//! tuples out to them.

use std::collections::HashMap;

use maritime_ais::{Mmsi, PositionTuple};
use maritime_obs::{names, LazyCounter};
use maritime_stream::Timestamp;

use crate::events::CriticalPoint;
use crate::params::TrackerParams;
use crate::vessel::{VesselStats, VesselTracker};

/// Global tracking metrics (see `OBSERVABILITY.md`). Counters sum exactly
/// across the MMSI-sharded workers because shards partition the fleet.
static OBS_INGESTED: LazyCounter = LazyCounter::new(names::TRACKER_POINTS_INGESTED);
static OBS_CRITICAL: LazyCounter = LazyCounter::new(names::TRACKER_CRITICAL_POINTS);

/// Aggregated counters across the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Vessels seen so far.
    pub vessels: usize,
    /// Raw positional tuples processed.
    pub raw: u64,
    /// Critical points emitted.
    pub critical: u64,
    /// Off-course positions discarded.
    pub outliers: u64,
    /// Stale tuples ignored.
    pub stale: u64,
}

impl FleetStats {
    /// The compression ratio: fraction of raw positions *not* retained as
    /// critical points ("A compression ratio close to 1 signifies stronger
    /// data reduction", §5.1). 0.0 for an empty stream.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.raw == 0 {
            0.0
        } else {
            1.0 - self.critical as f64 / self.raw as f64
        }
    }
}

/// The fleet-level mobility tracker.
#[derive(Debug)]
pub struct MobilityTracker {
    params: TrackerParams,
    vessels: HashMap<Mmsi, VesselTracker>,
}

impl MobilityTracker {
    /// Creates a tracker for a fleet with the given parameters.
    #[must_use]
    pub fn new(params: TrackerParams) -> Self {
        Self {
            params,
            vessels: HashMap::new(),
        }
    }

    /// The tracker's parameters.
    #[must_use]
    pub fn params(&self) -> TrackerParams {
        self.params
    }

    /// Processes one positional tuple.
    pub fn process(&mut self, tuple: PositionTuple) -> Vec<CriticalPoint> {
        OBS_INGESTED.inc();
        let out = self
            .vessel_mut(tuple.mmsi)
            .process(tuple.position, tuple.timestamp);
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Processes a time-ordered batch, concatenating all critical points in
    /// detection order.
    pub fn process_batch<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a PositionTuple>,
    ) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        let mut admitted = 0u64;
        for t in tuples {
            admitted += 1;
            out.extend(self.vessel_mut(t.mmsi).process(t.position, t.timestamp));
        }
        OBS_INGESTED.add(admitted);
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Checks every tracked vessel for a communication gap at time `now`:
    /// vessels silent for more than ΔT whose gap has not yet been reported
    /// emit a [`crate::events::Annotation::GapStart`]. A vessel that never
    /// reports again would otherwise never trigger its gap, since gaps are
    /// normally detected on the *next* fix — exactly the case that matters
    /// for scenario 3 of §4.1, where the transmitter stays off.
    pub fn sweep_gaps(&mut self, now: Timestamp) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        let mut vessels: Vec<_> = self.vessels.values_mut().collect();
        vessels.sort_by_key(|v| v.mmsi());
        for v in vessels {
            out.extend(v.sweep_gap(now));
        }
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Flushes open durative states for every vessel (end of stream).
    pub fn finish(&mut self) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        let mut vessels: Vec<_> = self.vessels.values_mut().collect();
        vessels.sort_by_key(|v| v.mmsi());
        for v in vessels {
            out.extend(v.finish());
        }
        OBS_CRITICAL.add(out.len() as u64);
        out
    }

    /// Counters aggregated across the fleet.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            vessels: self.vessels.len(),
            ..FleetStats::default()
        };
        for v in self.vessels.values() {
            let VesselStats { raw, critical, outliers, stale } = v.stats();
            s.raw += raw;
            s.critical += critical;
            s.outliers += outliers;
            s.stale += stale;
        }
        s
    }

    /// Number of vessels seen so far (O(1), unlike [`Self::stats`]).
    #[must_use]
    pub fn vessel_count(&self) -> usize {
        self.vessels.len()
    }

    /// Access to a single vessel's tracker, if seen.
    #[must_use]
    pub fn vessel(&self, mmsi: Mmsi) -> Option<&VesselTracker> {
        self.vessels.get(&mmsi)
    }

    fn vessel_mut(&mut self, mmsi: Mmsi) -> &mut VesselTracker {
        let params = self.params;
        self.vessels
            .entry(mmsi)
            .or_insert_with(|| VesselTracker::new(mmsi, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};

    #[test]
    fn tracks_multiple_vessels_independently() {
        let mut tracker = MobilityTracker::new(TrackerParams::default());
        let a = PositionTuple {
            mmsi: Mmsi(1),
            position: maritime_geo::GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(0),
        };
        let b = PositionTuple {
            mmsi: Mmsi(2),
            position: maritime_geo::GeoPoint::new(25.0, 38.0),
            timestamp: Timestamp(0),
        };
        let cps = tracker.process_batch([&a, &b]);
        // Each vessel gets its own TrackStart.
        assert_eq!(cps.len(), 2);
        assert_eq!(tracker.stats().vessels, 2);
    }

    #[test]
    fn fleet_compression_on_synthetic_stream() {
        let sim = FleetSimulator::new(FleetConfig::tiny(21));
        let reports = sim.generate();
        let stream = to_tuple_stream(&reports);
        let mut tracker = MobilityTracker::new(TrackerParams::default());
        for (_, tuple) in &stream {
            tracker.process(*tuple);
        }
        tracker.finish();
        let stats = tracker.stats();
        assert_eq!(stats.raw as usize, stream.len());
        assert!(stats.critical > 0);
        let ratio = stats.compression_ratio();
        // The paper reports ~94%; synthetic noise levels may vary the exact
        // figure, but compression must be strong.
        assert!(ratio > 0.6, "compression ratio {ratio}");
    }

    #[test]
    fn finish_is_deterministic_order() {
        let sim = FleetSimulator::new(FleetConfig::tiny(22));
        let reports = sim.generate();
        let run = |reports: &[maritime_ais::PositionReport]| {
            let mut tracker = MobilityTracker::new(TrackerParams::default());
            for r in reports {
                tracker.process(PositionTuple::from(*r));
            }
            tracker.finish()
        };
        let a = run(&reports);
        let b = run(&reports);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mmsi, y.mmsi);
            assert_eq!(x.timestamp, y.timestamp);
        }
    }

    #[test]
    fn empty_stream_stats() {
        let tracker = MobilityTracker::new(TrackerParams::default());
        let s = tracker.stats();
        assert_eq!(s.raw, 0);
        assert_eq!(s.compression_ratio(), 0.0);
    }
}
