//! Struct-of-arrays ring buffer of a vessel's recent accepted fixes.
//!
//! The per-vessel tracker keeps the last `m` positions for the mean-speed
//! query of the off-course outlier test (§3.1). The original layout was a
//! `VecDeque<(GeoPoint, Timestamp)>` that was copied into a scratch `Vec`
//! and re-walked with fresh Haversine evaluations on *every* incoming fix
//! — m−1 trigonometric distance computations plus one allocation per
//! position, the single hottest block of the tracking path. This ring
//! stores the coordinates as parallel arrays (contiguous, cache-friendly)
//! and caches the Haversine distance of each consecutive pair at insertion
//! time, so the mean-speed query is a bounded sum over at most m−1 floats.
//!
//! Bit-exactness: [`HistoryRing::mean_speed_knots`] must return exactly
//! the same `f64` as [`crate::velocity::mean_speed_knots`] over the same
//! logical sequence, because the result feeds threshold comparisons that
//! decide whether a critical point is emitted. The cached step distances
//! are the very values the reference would recompute (Haversine is a pure
//! function of the two endpoints), and they are summed in the same
//! logical order with the same `0.0`-seeded left fold, so the floating-
//! point result is identical bit for bit. A proptest in this module and
//! the differential suites in `crates/tracker/tests/` hold this invariant.

use maritime_geo::{haversine_distance_m, mps_to_knots, GeoPoint};
use maritime_stream::Timestamp;

/// Fixed-capacity struct-of-arrays ring of timestamped positions with
/// cached consecutive-pair distances.
#[derive(Debug)]
pub struct HistoryRing {
    lon: Box<[f64]>,
    lat: Box<[f64]>,
    t: Box<[i64]>,
    /// Haversine metres from the logically previous fix to this one;
    /// meaningless (0.0) for the logically first entry.
    step_m: Box<[f64]>,
    /// Physical index of the logically first entry.
    head: usize,
    len: usize,
}

impl HistoryRing {
    /// Creates an empty ring holding at most `cap` fixes.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            lon: vec![0.0; cap].into_boxed_slice(),
            lat: vec![0.0; cap].into_boxed_slice(),
            t: vec![0; cap].into_boxed_slice(),
            step_m: vec![0.0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Number of retained fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no fixes are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical slot of the `i`-th logical entry.
    #[inline]
    fn slot(&self, i: usize) -> usize {
        let cap = self.t.len();
        let s = self.head + i;
        if s >= cap {
            s - cap
        } else {
            s
        }
    }

    /// The `i`-th logical fix (0 = oldest).
    #[must_use]
    pub fn get(&self, i: usize) -> Option<(GeoPoint, Timestamp)> {
        (i < self.len).then(|| {
            let s = self.slot(i);
            (
                GeoPoint {
                    lon: self.lon[s],
                    lat: self.lat[s],
                },
                Timestamp(self.t[s]),
            )
        })
    }

    /// The most recent fix.
    #[must_use]
    pub fn back(&self) -> Option<(GeoPoint, Timestamp)> {
        self.get(self.len.checked_sub(1)?)
    }

    /// Appends a fix, computing and caching its Haversine distance from
    /// the previous most-recent fix; evicts the oldest when full.
    pub fn push(&mut self, p: GeoPoint, t: Timestamp) {
        let step = match self.back() {
            Some((prev, _)) => haversine_distance_m(prev, p),
            None => 0.0,
        };
        let cap = self.t.len();
        if self.len == cap {
            // Overwrite the oldest slot; the step cache of every retained
            // entry is unaffected (each step belongs to its *own* pair).
            self.head = if self.head + 1 == cap { 0 } else { self.head + 1 };
            self.len -= 1;
        }
        let s = self.slot(self.len);
        self.lon[s] = p.lon;
        self.lat[s] = p.lat;
        self.t[s] = t.0;
        self.step_m[s] = step;
        self.len += 1;
    }

    /// Forgets all retained fixes (the ring stays allocated).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Mean speed over the retained fixes: total along-track distance over
    /// elapsed time, exactly as [`crate::velocity::mean_speed_knots`]
    /// computes it — same pair distances, same summation order — but from
    /// the cached steps instead of m−1 fresh Haversine evaluations.
    #[must_use]
    pub fn mean_speed_knots(&self) -> Option<f64> {
        if self.len < 2 {
            return None;
        }
        let dt = (self.t[self.slot(self.len - 1)] - self.t[self.slot(0)]) as f64;
        if dt <= 0.0 {
            return None;
        }
        let mut dist = 0.0f64;
        for i in 1..self.len {
            dist += self.step_m[self.slot(i)];
        }
        Some(mps_to_knots(dist / dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::velocity::mean_speed_knots;
    use proptest::prelude::*;

    fn reference(ring: &HistoryRing) -> Option<f64> {
        let track: Vec<_> = (0..ring.len()).map(|i| ring.get(i).unwrap()).collect();
        mean_speed_knots(&track)
    }

    #[test]
    fn empty_and_single_fix_have_no_mean() {
        let mut ring = HistoryRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.mean_speed_knots(), None);
        ring.push(GeoPoint::new(24.0, 37.0), Timestamp(0));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.mean_speed_knots(), None);
        assert_eq!(ring.back().unwrap().1, Timestamp(0));
    }

    #[test]
    fn eviction_keeps_last_cap_fixes() {
        let mut ring = HistoryRing::new(3);
        for i in 0..5 {
            ring.push(GeoPoint::new(24.0 + f64::from(i) * 0.01, 37.0), Timestamp(i64::from(i)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.get(0).unwrap().1, Timestamp(2));
        assert_eq!(ring.get(2).unwrap().1, Timestamp(4));
        assert_eq!(ring.get(3), None);
    }

    #[test]
    fn clear_resets_without_touching_capacity() {
        let mut ring = HistoryRing::new(3);
        ring.push(GeoPoint::new(24.0, 37.0), Timestamp(0));
        ring.clear();
        assert!(ring.is_empty());
        ring.push(GeoPoint::new(25.0, 38.0), Timestamp(9));
        assert_eq!(ring.get(0).unwrap().1, Timestamp(9));
    }

    #[test]
    fn zero_elapsed_time_has_no_mean() {
        let mut ring = HistoryRing::new(3);
        ring.push(GeoPoint::new(24.0, 37.0), Timestamp(5));
        ring.push(GeoPoint::new(24.1, 37.0), Timestamp(5));
        assert_eq!(ring.mean_speed_knots(), None);
        assert_eq!(reference(&ring), None);
    }

    proptest! {
        /// The cached-step mean must be bit-identical to the reference
        /// recompute across arbitrary pushes, evictions, and clears.
        #[test]
        fn mean_speed_is_bit_identical_to_reference(
            cap in 2usize..12,
            ops in prop::collection::vec(
                (
                    -180.0f64..180.0, -85.0f64..85.0,
                    0i64..10_000, 0u32..20,
                ),
                1..64,
            ),
        ) {
            let mut ring = HistoryRing::new(cap);
            let mut t_acc = 0i64;
            for (lon, lat, dt, clear_roll) in ops {
                // Roughly 1-in-20 operations interleave a clear.
                if clear_roll == 0 {
                    ring.clear();
                }
                t_acc += dt;
                ring.push(GeoPoint::new(lon, lat), Timestamp(t_acc));
                let fast = ring.mean_speed_knots();
                let slow = reference(&ring);
                // Bit-level equality, not approximate: the value feeds
                // threshold comparisons.
                prop_assert_eq!(fast.map(f64::to_bits), slow.map(f64::to_bits));
            }
        }
    }
}
