//! Per-vessel trajectory synopses and approximate reconstruction.
//!
//! "By taking advantage of those online annotations at critical points
//! along trajectories, lightweight, succinct synopses can be retained per
//! vessel ... we opt to reconstruct vessel traces approximately from
//! already available critical points" (§3.2). Reconstruction assumes
//! constant velocity between consecutive critical points (the same linear
//! interpolation used for raw traces, footnote 2).

use std::collections::HashMap;

use maritime_ais::Mmsi;
use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;

use crate::events::CriticalPoint;

/// The retained synopsis of one vessel: its critical points in time order.
#[derive(Debug, Clone, Default)]
pub struct TrajectorySynopsis {
    points: Vec<CriticalPoint>,
}

impl TrajectorySynopsis {
    /// Builds a synopsis from critical points (sorted internally).
    #[must_use]
    pub fn new(mut points: Vec<CriticalPoint>) -> Self {
        points.sort_by_key(|cp| cp.timestamp);
        Self { points }
    }

    /// Appends a critical point (must not precede the last one; out-of-order
    /// appends are re-sorted lazily on access, so this is always safe).
    pub fn push(&mut self, cp: CriticalPoint) {
        if self
            .points
            .last()
            .is_some_and(|last| last.timestamp > cp.timestamp)
        {
            let pos = self.points.partition_point(|p| p.timestamp <= cp.timestamp);
            self.points.insert(pos, cp);
        } else {
            self.points.push(cp);
        }
    }

    /// The retained critical points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[CriticalPoint] {
        &self.points
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the synopsis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The polyline of retained positions (for map display / KML export).
    #[must_use]
    pub fn polyline(&self) -> Vec<GeoPoint> {
        self.points.iter().map(|cp| cp.position).collect()
    }

    /// The approximate position at time `t`, linearly interpolated between
    /// the adjacent critical points ("Assuming a constant velocity between
    /// these two critical points, we obtained its time-aligned point trace
    /// p'ᵢ along the approximate path at timestamp τᵢ", §5.1).
    ///
    /// Clamps to the first/last point outside the covered span; `None` for
    /// an empty synopsis.
    #[must_use]
    pub fn position_at(&self, t: Timestamp) -> Option<GeoPoint> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if t <= first.timestamp {
            return Some(first.position);
        }
        if t >= last.timestamp {
            return Some(last.position);
        }
        // Index of the first point strictly after t.
        let hi = self.points.partition_point(|p| p.timestamp <= t);
        let b = &self.points[hi];
        let a = &self.points[hi - 1];
        let span = (b.timestamp.as_secs() - a.timestamp.as_secs()) as f64;
        if span <= 0.0 {
            return Some(a.position);
        }
        let frac = (t.as_secs() - a.timestamp.as_secs()) as f64 / span;
        Some(a.position.lerp(b.position, frac))
    }
}

/// Groups a fleet-wide critical-point sequence into per-vessel synopses.
#[must_use]
pub fn per_vessel_synopses(critical: &[CriticalPoint]) -> HashMap<Mmsi, TrajectorySynopsis> {
    let mut map: HashMap<Mmsi, TrajectorySynopsis> = HashMap::new();
    for cp in critical {
        map.entry(cp.mmsi).or_default().push(*cp);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Annotation;

    fn cp(lon: f64, lat: f64, t: i64) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(1),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
            annotation: Annotation::TrackStart,
            speed_knots: 10.0,
            heading_deg: 90.0,
        }
    }

    #[test]
    fn interpolates_between_points() {
        let syn = TrajectorySynopsis::new(vec![cp(24.0, 37.0, 0), cp(25.0, 38.0, 100)]);
        let mid = syn.position_at(Timestamp(50)).unwrap();
        assert!((mid.lon - 24.5).abs() < 1e-9);
        assert!((mid.lat - 37.5).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_span() {
        let syn = TrajectorySynopsis::new(vec![cp(24.0, 37.0, 10), cp(25.0, 38.0, 20)]);
        assert_eq!(syn.position_at(Timestamp(0)).unwrap(), GeoPoint::new(24.0, 37.0));
        assert_eq!(syn.position_at(Timestamp(99)).unwrap(), GeoPoint::new(25.0, 38.0));
    }

    #[test]
    fn empty_synopsis_has_no_position() {
        let syn = TrajectorySynopsis::default();
        assert!(syn.position_at(Timestamp(0)).is_none());
        assert!(syn.is_empty());
    }

    #[test]
    fn push_keeps_time_order() {
        let mut syn = TrajectorySynopsis::default();
        syn.push(cp(24.0, 37.0, 100));
        syn.push(cp(23.0, 37.0, 50)); // late arrival
        syn.push(cp(25.0, 37.0, 150));
        let ts: Vec<i64> = syn.points().iter().map(|p| p.timestamp.0).collect();
        assert_eq!(ts, vec![50, 100, 150]);
    }

    #[test]
    fn exact_timestamp_returns_that_point() {
        let syn = TrajectorySynopsis::new(vec![cp(24.0, 37.0, 0), cp(25.0, 38.0, 100)]);
        assert_eq!(syn.position_at(Timestamp(100)).unwrap(), GeoPoint::new(25.0, 38.0));
        assert_eq!(syn.position_at(Timestamp(0)).unwrap(), GeoPoint::new(24.0, 37.0));
    }

    #[test]
    fn per_vessel_grouping() {
        let mut a = cp(24.0, 37.0, 0);
        let mut b = cp(25.0, 38.0, 10);
        a.mmsi = Mmsi(1);
        b.mmsi = Mmsi(2);
        let map = per_vessel_synopses(&[a, b]);
        assert_eq!(map.len(), 2);
        assert_eq!(map[&Mmsi(1)].len(), 1);
        assert_eq!(map[&Mmsi(2)].len(), 1);
    }

    #[test]
    fn duplicate_timestamps_do_not_divide_by_zero() {
        let syn = TrajectorySynopsis::new(vec![cp(24.0, 37.0, 10), cp(25.0, 38.0, 10)]);
        // Any answer between the duplicates is fine; it must not panic.
        assert!(syn.position_at(Timestamp(10)).is_some());
    }
}
