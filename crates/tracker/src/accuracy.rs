//! Trajectory approximation error (Figure 8).
//!
//! Implements the paper's RMSE evaluation (§5.1): for every original point
//! `pᵢ` that was discarded, interpolate its time-aligned trace `p'ᵢ` on the
//! compressed path (constant velocity between the adjacent retained
//! critical points) and accumulate `H(pᵢ, p'ᵢ)²`:
//!
//! ```text
//! RMSE = sqrt( (1/M) · Σᵢ H(pᵢ, p'ᵢ)² )
//! ```
//!
//! One error value is computed per vessel trajectory; the figure reports
//! the average and the maximum across the fleet.

use std::collections::HashMap;

use maritime_ais::{Mmsi, PositionTuple};
use maritime_geo::haversine_distance_m;

use crate::events::CriticalPoint;
use crate::synopsis::{per_vessel_synopses, TrajectorySynopsis};

/// RMSE summary across a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Per-vessel RMSE in meters (vessels with a non-empty synopsis).
    pub per_vessel: HashMap<Mmsi, f64>,
    /// Average of the per-vessel RMSE values, meters.
    pub avg_rmse_m: f64,
    /// Maximum per-vessel RMSE, meters.
    pub max_rmse_m: f64,
}

/// Computes the RMSE between the original stream and its compressed
/// representation.
///
/// `original` is the full raw tuple stream (any order); `critical` is the
/// critical-point sequence the tracker emitted for the same stream.
#[must_use]
pub fn evaluate_accuracy(
    original: &[PositionTuple],
    critical: &[CriticalPoint],
) -> AccuracyReport {
    let synopses = per_vessel_synopses(critical);

    // Group the original stream per vessel.
    let mut originals: HashMap<Mmsi, Vec<&PositionTuple>> = HashMap::new();
    for t in original {
        originals.entry(t.mmsi).or_default().push(t);
    }

    let mut per_vessel = HashMap::new();
    for (mmsi, points) in &originals {
        let Some(synopsis) = synopses.get(mmsi) else {
            continue;
        };
        if let Some(rmse) = vessel_rmse(points, synopsis) {
            per_vessel.insert(*mmsi, rmse);
        }
    }

    let (avg, max) = if per_vessel.is_empty() {
        (0.0, 0.0)
    } else {
        let sum: f64 = per_vessel.values().sum();
        let max = per_vessel.values().copied().fold(0.0, f64::max);
        (sum / per_vessel.len() as f64, max)
    };

    AccuracyReport {
        per_vessel,
        avg_rmse_m: avg,
        max_rmse_m: max,
    }
}

/// RMSE for one vessel: `None` when the synopsis is empty.
fn vessel_rmse(original: &[&PositionTuple], synopsis: &TrajectorySynopsis) -> Option<f64> {
    if original.is_empty() || synopsis.is_empty() {
        return None;
    }
    let mut sum_sq = 0.0;
    for p in original {
        let approx = synopsis.position_at(p.timestamp)?;
        let d = haversine_distance_m(p.position, approx);
        sum_sq += d * d;
    }
    Some((sum_sq / original.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::measure_compression;
    use crate::params::TrackerParams;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;

    fn tuple(mmsi: u32, lon: f64, lat: f64, t: i64) -> PositionTuple {
        PositionTuple {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(lon, lat),
            timestamp: Timestamp(t),
        }
    }

    #[test]
    fn perfect_synopsis_gives_zero_error() {
        use crate::events::{Annotation, CriticalPoint};
        // Synopsis retains every original point -> RMSE 0.
        let originals: Vec<_> = (0..5)
            .map(|i| tuple(1, 24.0 + 0.01 * i as f64, 37.0, i * 60))
            .collect();
        let critical: Vec<_> = originals
            .iter()
            .map(|t| CriticalPoint {
                mmsi: t.mmsi,
                position: t.position,
                timestamp: t.timestamp,
                annotation: Annotation::TrackStart,
                speed_knots: 0.0,
                heading_deg: 0.0,
            })
            .collect();
        let report = evaluate_accuracy(&originals, &critical);
        assert!(report.avg_rmse_m < 1e-6);
        assert!(report.max_rmse_m < 1e-6);
    }

    #[test]
    fn straight_line_interpolation_is_near_exact() {
        use crate::events::{Annotation, CriticalPoint};
        // Original points on a straight segment, synopsis keeps endpoints.
        let originals: Vec<_> = (0..=10)
            .map(|i| tuple(1, 24.0 + 0.001 * i as f64, 37.0, i * 30))
            .collect();
        let critical = vec![
            CriticalPoint {
                mmsi: Mmsi(1),
                position: GeoPoint::new(24.0, 37.0),
                timestamp: Timestamp(0),
                annotation: Annotation::TrackStart,
                speed_knots: 0.0,
                heading_deg: 0.0,
            },
            CriticalPoint {
                mmsi: Mmsi(1),
                position: GeoPoint::new(24.01, 37.0),
                timestamp: Timestamp(300),
                annotation: Annotation::TrackStart,
                speed_knots: 0.0,
                heading_deg: 0.0,
            },
        ];
        let report = evaluate_accuracy(&originals, &critical);
        // Along-track interpolation error only; sub-meter on a straight leg.
        assert!(report.max_rmse_m < 1.0, "{}", report.max_rmse_m);
    }

    #[test]
    fn synthetic_fleet_error_is_modest() {
        // End-to-end: simulate, compress, measure. The paper reports an
        // average below 16 m and a worst case of 182 m at Δθ = 20°.
        let sim = FleetSimulator::new(FleetConfig::tiny(55));
        let stream: Vec<_> = to_tuple_stream(&sim.generate())
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let (_, critical) = measure_compression(&stream, TrackerParams::default());
        let report = evaluate_accuracy(&stream, &critical);
        assert!(!report.per_vessel.is_empty());
        assert!(
            report.avg_rmse_m < 500.0,
            "avg RMSE {} m is implausibly large",
            report.avg_rmse_m
        );
        assert!(report.max_rmse_m >= report.avg_rmse_m);
    }

    #[test]
    fn tighter_threshold_is_not_less_accurate() {
        let sim = FleetSimulator::new(FleetConfig::tiny(56));
        let stream: Vec<_> = to_tuple_stream(&sim.generate())
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let (_, crit5) = measure_compression(&stream, TrackerParams::with_turn_threshold(5.0));
        let (_, crit20) = measure_compression(&stream, TrackerParams::with_turn_threshold(20.0));
        let r5 = evaluate_accuracy(&stream, &crit5);
        let r20 = evaluate_accuracy(&stream, &crit20);
        // More retained points can only help (allow small noise slack).
        assert!(
            r5.avg_rmse_m <= r20.avg_rmse_m * 1.25 + 1.0,
            "Δθ=5°: {} m, Δθ=20°: {} m",
            r5.avg_rmse_m,
            r20.avg_rmse_m
        );
    }

    #[test]
    fn empty_inputs_yield_empty_report() {
        let report = evaluate_accuracy(&[], &[]);
        assert!(report.per_vessel.is_empty());
        assert_eq!(report.avg_rmse_m, 0.0);
    }
}
