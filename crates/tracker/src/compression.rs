//! Compression-efficiency accounting (Figure 9).
//!
//! "In order to measure the compression ratio accomplished by online
//! trajectory tracking, we compared the amount of discarded points against
//! the originally relayed locations per vessel" (§5.1).

use std::collections::HashMap;

use maritime_ais::{Mmsi, PositionTuple};

use crate::events::CriticalPoint;
use crate::params::TrackerParams;
use crate::tracker::MobilityTracker;

/// Result of a compression measurement over a full stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Raw positions consumed.
    pub raw_positions: u64,
    /// Critical points retained.
    pub critical_points: u64,
    /// `1 − critical/raw`: fraction of positions discarded.
    pub ratio: f64,
    /// Per-vessel `(raw, critical)` counts.
    pub per_vessel: HashMap<Mmsi, (u64, u64)>,
}

/// Runs the tracker over a complete tuple stream (time-ordered) and
/// measures compression. Returns the report and the full critical-point
/// sequence (including the end-of-stream flush).
#[must_use]
pub fn measure_compression(
    stream: &[PositionTuple],
    params: TrackerParams,
) -> (CompressionReport, Vec<CriticalPoint>) {
    let mut tracker = MobilityTracker::new(params);
    let mut critical = Vec::new();
    for tuple in stream {
        critical.extend(tracker.process(*tuple));
    }
    critical.extend(tracker.finish());

    let mut per_vessel: HashMap<Mmsi, (u64, u64)> = HashMap::new();
    for t in stream {
        per_vessel.entry(t.mmsi).or_default().0 += 1;
    }
    for cp in &critical {
        per_vessel.entry(cp.mmsi).or_default().1 += 1;
    }

    let raw = stream.len() as u64;
    let kept = critical.len() as u64;
    let report = CompressionReport {
        raw_positions: raw,
        critical_points: kept,
        ratio: if raw == 0 { 0.0 } else { 1.0 - kept as f64 / raw as f64 },
        per_vessel,
    };
    (report, critical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};

    fn stream() -> Vec<PositionTuple> {
        let sim = FleetSimulator::new(FleetConfig::tiny(77));
        to_tuple_stream(&sim.generate())
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    #[test]
    fn ratio_consistent_with_counts() {
        let s = stream();
        let (report, critical) = measure_compression(&s, TrackerParams::default());
        assert_eq!(report.raw_positions as usize, s.len());
        assert_eq!(report.critical_points as usize, critical.len());
        let expected = 1.0 - critical.len() as f64 / s.len() as f64;
        assert!((report.ratio - expected).abs() < 1e-12);
    }

    #[test]
    fn per_vessel_counts_sum_to_totals() {
        let s = stream();
        let (report, _) = measure_compression(&s, TrackerParams::default());
        let raw_sum: u64 = report.per_vessel.values().map(|(r, _)| r).sum();
        let crit_sum: u64 = report.per_vessel.values().map(|(_, c)| c).sum();
        assert_eq!(raw_sum, report.raw_positions);
        assert_eq!(crit_sum, report.critical_points);
    }

    #[test]
    fn tighter_turn_threshold_keeps_more_points() {
        // The paper: "setting Δθ = 5° instead of Δθ = 15° incurs a 10%
        // increase in the amount of critical points". Direction matters,
        // not the exact figure.
        let s = stream();
        let (tight, _) = measure_compression(&s, TrackerParams::with_turn_threshold(5.0));
        let (loose, _) = measure_compression(&s, TrackerParams::with_turn_threshold(20.0));
        assert!(
            tight.critical_points > loose.critical_points,
            "Δθ=5° kept {} vs Δθ=20° kept {}",
            tight.critical_points,
            loose.critical_points
        );
    }

    #[test]
    fn empty_stream_has_zero_ratio() {
        let (report, critical) = measure_compression(&[], TrackerParams::default());
        assert_eq!(report.ratio, 0.0);
        assert!(critical.is_empty());
    }
}
