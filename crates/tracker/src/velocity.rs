//! Instantaneous velocity vectors.
//!
//! "In order to identify significant changes in movement, [the system]
//! first computes the instantaneous velocity vector v_now from the two most
//! recent positions reported by each vessel" (§3.1). Linear interpolation
//! between consecutive fixes is assumed (footnote 2), with Haversine
//! distances in the locally Euclidean plane.

use maritime_geo::{haversine_distance_m, initial_bearing_deg, mps_to_knots, GeoPoint};
use maritime_stream::Timestamp;
use serde::{Deserialize, Serialize};

/// A velocity vector: speed plus heading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityVector {
    /// Speed in knots.
    pub speed_knots: f64,
    /// Heading in degrees clockwise from true north, `[0, 360)`.
    pub heading_deg: f64,
}

impl VelocityVector {
    /// Velocity implied by moving from `(p1, t1)` to `(p2, t2)`.
    ///
    /// Returns `None` when `t2 <= t1`: a zero or negative time base cannot
    /// define a velocity (duplicate or out-of-order fix).
    #[must_use]
    pub fn between(p1: GeoPoint, t1: Timestamp, p2: GeoPoint, t2: Timestamp) -> Option<Self> {
        let dt = (t2.as_secs() - t1.as_secs()) as f64;
        if dt <= 0.0 {
            return None;
        }
        let dist = haversine_distance_m(p1, p2);
        Some(Self {
            speed_knots: mps_to_knots(dist / dt),
            heading_deg: initial_bearing_deg(p1, p2),
        })
    }

    /// A vessel at rest (zero speed, heading north by convention).
    #[must_use]
    pub fn stationary() -> Self {
        Self {
            speed_knots: 0.0,
            heading_deg: 0.0,
        }
    }

    /// Relative speed deviation `|v_now − v_prev| / v_now` — the left side
    /// of the speed-change test of §3.1. `None` when `self` is (near) zero
    /// speed, where the ratio is undefined; pause detection covers that
    /// regime instead.
    #[must_use]
    pub fn relative_speed_change(self, prev: VelocityVector) -> Option<f64> {
        if self.speed_knots.abs() < 1e-9 {
            return None;
        }
        Some(((self.speed_knots - prev.speed_knots) / self.speed_knots).abs())
    }

    /// Unsigned heading difference from `prev`, in `[0, 180]` degrees.
    #[must_use]
    pub fn heading_change_deg(self, prev: VelocityVector) -> f64 {
        maritime_geo::angle_diff_deg(self.heading_deg, prev.heading_deg)
    }
}

/// Mean speed in knots over a sequence of timestamped positions: total
/// along-track distance divided by elapsed time. Abstraction of the "mean
/// velocity v_m of the ship over its previous m positions" used by the
/// off-course outlier test. `None` for fewer than two points or zero
/// elapsed time.
#[must_use]
pub fn mean_speed_knots(track: &[(GeoPoint, Timestamp)]) -> Option<f64> {
    if track.len() < 2 {
        return None;
    }
    let dt = (track.last()?.1.as_secs() - track.first()?.1.as_secs()) as f64;
    if dt <= 0.0 {
        return None;
    }
    let dist: f64 = track
        .windows(2)
        .map(|w| haversine_distance_m(w[0].0, w[1].0))
        .sum();
    Some(mps_to_knots(dist / dt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::destination;

    #[test]
    fn between_computes_speed_and_heading() {
        let p1 = GeoPoint::new(24.0, 37.0);
        // 10 knots due east for 60 s: 10 kn = 5.144 m/s -> 308.7 m.
        let p2 = destination(p1, 90.0, maritime_geo::knots_to_mps(10.0) * 60.0);
        let v = VelocityVector::between(p1, Timestamp(0), p2, Timestamp(60)).unwrap();
        assert!((v.speed_knots - 10.0).abs() < 0.05, "{}", v.speed_knots);
        assert!((v.heading_deg - 90.0).abs() < 0.5, "{}", v.heading_deg);
    }

    #[test]
    fn between_rejects_non_positive_dt() {
        let p = GeoPoint::new(24.0, 37.0);
        assert!(VelocityVector::between(p, Timestamp(10), p, Timestamp(10)).is_none());
        assert!(VelocityVector::between(p, Timestamp(10), p, Timestamp(5)).is_none());
    }

    #[test]
    fn stationary_vessel_zero_speed() {
        let p = GeoPoint::new(24.0, 37.0);
        let v = VelocityVector::between(p, Timestamp(0), p, Timestamp(60)).unwrap();
        assert_eq!(v.speed_knots, 0.0);
    }

    #[test]
    fn relative_speed_change_matches_formula() {
        let now = VelocityVector { speed_knots: 8.0, heading_deg: 0.0 };
        let prev = VelocityVector { speed_knots: 10.0, heading_deg: 0.0 };
        // |8-10|/8 = 0.25
        assert!((now.relative_speed_change(prev).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relative_speed_change_undefined_at_zero() {
        let now = VelocityVector::stationary();
        let prev = VelocityVector { speed_knots: 10.0, heading_deg: 0.0 };
        assert!(now.relative_speed_change(prev).is_none());
    }

    #[test]
    fn heading_change_wraps() {
        let a = VelocityVector { speed_knots: 5.0, heading_deg: 350.0 };
        let b = VelocityVector { speed_knots: 5.0, heading_deg: 10.0 };
        assert!((a.heading_change_deg(b) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mean_speed_over_straight_track() {
        let p0 = GeoPoint::new(24.0, 37.0);
        let step = maritime_geo::knots_to_mps(12.0) * 30.0;
        let track: Vec<_> = (0..5)
            .map(|i| (destination(p0, 45.0, step * i as f64), Timestamp(i * 30)))
            .collect();
        let v = mean_speed_knots(&track).unwrap();
        assert!((v - 12.0).abs() < 0.1, "{v}");
    }

    #[test]
    fn mean_speed_needs_two_points_and_time() {
        assert!(mean_speed_knots(&[]).is_none());
        assert!(mean_speed_knots(&[(GeoPoint::new(0.0, 0.0), Timestamp(0))]).is_none());
        assert!(mean_speed_knots(&[
            (GeoPoint::new(0.0, 0.0), Timestamp(5)),
            (GeoPoint::new(0.1, 0.0), Timestamp(5)),
        ])
        .is_none());
    }
}
