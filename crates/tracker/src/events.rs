//! Critical points and movement-event annotations.
//!
//! "Thus, critical points are emitted from each long-lasting event.
//! Provided that they do not qualify for outliers, instantaneous events for
//! speed change or isolated turns also contribute to critical points"
//! (§3.1). Each critical point is annotated with the movement event that
//! produced it; the annotated stream is both the compressed trajectory
//! representation and the input of the complex event recognition module.

use maritime_ais::Mmsi;
use maritime_geo::GeoPoint;
use maritime_stream::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// The movement event a critical point is annotated with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Annotation {
    /// First fix ever received from the vessel: anchors the trajectory.
    TrackStart,
    /// Last fix of the stream (emitted on flush): anchors the trajectory's
    /// tail so reconstruction covers the final leg.
    TrackEnd,
    /// Communication gap started: the vessel fell silent for more than ΔT.
    /// Emitted at the last position seen before the silence.
    GapStart,
    /// Communication resumed after a gap; emitted at the first new fix.
    GapEnd,
    /// A long-term stop was confirmed: at least `m` consecutive pause/turn
    /// events inside a circle of radius `r`. Emitted at the start of the
    /// immobility period.
    StopStart,
    /// The long-term stop ended. Carries the centroid of the stop cluster
    /// and the total duration — the paper's single-point representation
    /// ("collectively approximated by a single critical point (their
    /// centroid) with their total duration").
    StopEnd {
        /// Centroid of the stop cluster.
        centroid: GeoPoint,
        /// Total immobility duration.
        duration: Duration,
    },
    /// Slow motion confirmed over the last `m` messages; emitted at the
    /// median position of those messages.
    SlowMotionStart,
    /// Slow motion ended (speed recovered or a stop took over).
    SlowMotionEnd,
    /// Instantaneous change in speed beyond α (acceleration/deceleration).
    SpeedChange {
        /// Previously observed speed, knots.
        prev_knots: f64,
        /// Current speed, knots.
        now_knots: f64,
    },
    /// Sharp turn: heading changed by more than Δθ in one step.
    Turn {
        /// Signed heading change in degrees, positive clockwise.
        change_deg: f64,
    },
    /// Smooth turn: cumulative same-direction heading drift across the last
    /// positions exceeded Δθ although no single step did.
    SmoothTurn {
        /// Signed cumulative heading change in degrees.
        cumulative_deg: f64,
    },
}

impl Annotation {
    /// The movement-event kind this annotation maps to in the CER input.
    #[must_use]
    pub fn kind(&self) -> MovementEventKind {
        match self {
            Self::TrackStart => MovementEventKind::TrackStart,
            Self::TrackEnd => MovementEventKind::TrackEnd,
            Self::GapStart | Self::GapEnd => MovementEventKind::Gap,
            Self::StopStart | Self::StopEnd { .. } => MovementEventKind::Stopped,
            Self::SlowMotionStart | Self::SlowMotionEnd => MovementEventKind::SlowMotion,
            Self::SpeedChange { .. } => MovementEventKind::SpeedChange,
            Self::Turn { .. } | Self::SmoothTurn { .. } => MovementEventKind::Turn,
        }
    }

    /// Short label for display/export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::TrackStart => "track_start",
            Self::TrackEnd => "track_end",
            Self::GapStart => "gap_start",
            Self::GapEnd => "gap_end",
            Self::StopStart => "stop_start",
            Self::StopEnd { .. } => "stop_end",
            Self::SlowMotionStart => "slow_motion_start",
            Self::SlowMotionEnd => "slow_motion_end",
            Self::SpeedChange { .. } => "speed_change",
            Self::Turn { .. } => "turn",
            Self::SmoothTurn { .. } => "smooth_turn",
        }
    }
}

/// The movement-event vocabulary the CER module consumes (§5.2: "The input
/// of RTEC ... consists of the MEs (communication) gap, lowSpeed, stopped,
/// speedChange and turn").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MovementEventKind {
    /// First-ever fix (not part of the paper's ME vocabulary; ignored by
    /// the CE definitions but useful for reconstruction).
    TrackStart,
    /// Final fix on flush (likewise reconstruction-only).
    TrackEnd,
    /// Communication gap.
    Gap,
    /// Durative immobility.
    Stopped,
    /// Durative low-speed motion (the paper's `lowSpeed`/`slowMotion`).
    SlowMotion,
    /// Instantaneous speed change.
    SpeedChange,
    /// Instantaneous or smooth turn.
    Turn,
}

/// An annotated critical point: the unit of the compressed trajectory
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPoint {
    /// The vessel.
    pub mmsi: Mmsi,
    /// Position of the critical point.
    pub position: GeoPoint,
    /// When the underlying movement event occurred.
    pub timestamp: Timestamp,
    /// Why the point is critical.
    pub annotation: Annotation,
    /// Instantaneous speed at this point, knots.
    pub speed_knots: f64,
    /// Heading at this point, degrees.
    pub heading_deg: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_kinds_cover_me_vocabulary() {
        assert_eq!(Annotation::GapStart.kind(), MovementEventKind::Gap);
        assert_eq!(Annotation::StopStart.kind(), MovementEventKind::Stopped);
        assert_eq!(
            Annotation::StopEnd {
                centroid: GeoPoint::new(0.0, 0.0),
                duration: Duration::secs(60)
            }
            .kind(),
            MovementEventKind::Stopped
        );
        assert_eq!(
            Annotation::SlowMotionStart.kind(),
            MovementEventKind::SlowMotion
        );
        assert_eq!(
            Annotation::SpeedChange { prev_knots: 10.0, now_knots: 5.0 }.kind(),
            MovementEventKind::SpeedChange
        );
        assert_eq!(
            Annotation::Turn { change_deg: 20.0 }.kind(),
            MovementEventKind::Turn
        );
        assert_eq!(
            Annotation::SmoothTurn { cumulative_deg: -17.0 }.kind(),
            MovementEventKind::Turn
        );
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            Annotation::TrackStart.label(),
            Annotation::GapStart.label(),
            Annotation::GapEnd.label(),
            Annotation::StopStart.label(),
            Annotation::StopEnd {
                centroid: GeoPoint::new(0.0, 0.0),
                duration: Duration::ZERO,
            }
            .label(),
            Annotation::SlowMotionStart.label(),
            Annotation::SlowMotionEnd.label(),
            Annotation::SpeedChange { prev_knots: 0.0, now_knots: 0.0 }.label(),
            Annotation::Turn { change_deg: 0.0 }.label(),
            Annotation::SmoothTurn { cumulative_deg: 0.0 }.label(),
        ]
        .into_iter()
        .collect();
        assert_eq!(labels.len(), 10);
    }
}
