//! Mobility-tracking parameters (Table 3 of the paper).

use serde::{Deserialize, Serialize};

use maritime_stream::Duration;

/// The calibrated thresholds of the mobility tracker.
///
/// Defaults reproduce Table 3: `v_min` = 1 knot, α = 25 %, ΔT = 10 minutes,
/// Δθ = 15°, r = 200 m, m = 10. "Such filtering greatly depends on proper
/// choice of parameter values, which is a trade-off between reduction
/// efficiency and approximation accuracy" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerParams {
    /// Minimum speed `v_min` for asserting movement, in knots. Below this,
    /// the vessel "rests practically immobile" — an instantaneous *pause*.
    pub v_min_knots: f64,
    /// Low-speed threshold for the *slow motion* event, in knots.
    ///
    /// The paper uses `v_min` here too ("consistently moves at low speed
    /// (≤ v_min)"); we keep a separate threshold because the illegal-fishing
    /// scenario of §4.1 needs `slowMotion` to fire at trawling speeds
    /// (2–4 knots), above the 1-knot immobility bound. Setting this equal
    /// to `v_min_knots` restores the paper's exact behaviour.
    pub v_low_knots: f64,
    /// Rate of speed change α, as a fraction (Table 3: 25 % -> 0.25). A
    /// *speed change* event fires when `|v_now - v_prev| / v_now > α`.
    pub alpha: f64,
    /// Minimum silence period ΔT before a *communication gap* is issued.
    pub gap_period: Duration,
    /// Turn threshold Δθ in degrees: heading changes beyond this raise a
    /// *turn* event; smaller consecutive same-direction changes accumulate
    /// into a *smooth turn*.
    pub turn_threshold_deg: f64,
    /// Radius `r` for long-term stops: at least `m` consecutive pause/turn
    /// events within this circle collapse into one stop (Table 3: 200 m).
    pub stop_radius_m: f64,
    /// Number `m` of latest positions inspected for long-lasting events
    /// (Table 3: 10).
    pub m: usize,
    /// Outlier rejection: a fix whose implied speed exceeds this multiple
    /// of the vessel's mean speed over its last `m` positions (and an
    /// absolute floor) is discarded as an off-course position.
    pub outlier_speed_factor: f64,
    /// Absolute speed floor for outlier rejection, in knots. Implied
    /// speeds below this are never outliers regardless of the factor.
    pub outlier_speed_floor_knots: f64,
}

impl Default for TrackerParams {
    fn default() -> Self {
        Self {
            v_min_knots: 1.0,
            v_low_knots: 4.0,
            alpha: 0.25,
            gap_period: Duration::minutes(10),
            turn_threshold_deg: 15.0,
            stop_radius_m: 200.0,
            m: 10,
            outlier_speed_factor: 3.0,
            outlier_speed_floor_knots: 50.0,
        }
    }
}

impl TrackerParams {
    /// The paper's parametrization with a different turn threshold Δθ —
    /// the sweep of Figures 8 and 9 (Δθ ∈ {5°, 10°, 15°, 20°}).
    #[must_use]
    pub fn with_turn_threshold(deg: f64) -> Self {
        Self {
            turn_threshold_deg: deg,
            ..Self::default()
        }
    }

    /// Validates the parameter set, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.v_min_knots <= 0.0 {
            return Err(format!("v_min must be positive, got {}", self.v_min_knots));
        }
        if self.v_low_knots < self.v_min_knots {
            return Err(format!(
                "v_low ({}) must be >= v_min ({})",
                self.v_low_knots, self.v_min_knots
            ));
        }
        if !(0.0..1.0).contains(&self.alpha) {
            return Err(format!("alpha must be in [0,1), got {}", self.alpha));
        }
        if self.gap_period.as_secs() <= 0 {
            return Err("gap period must be positive".into());
        }
        if !(0.0..180.0).contains(&self.turn_threshold_deg) || self.turn_threshold_deg == 0.0 {
            return Err(format!(
                "turn threshold must be in (0,180), got {}",
                self.turn_threshold_deg
            ));
        }
        if self.stop_radius_m <= 0.0 {
            return Err("stop radius must be positive".into());
        }
        if self.m < 2 {
            return Err(format!("m must be >= 2, got {}", self.m));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let p = TrackerParams::default();
        assert_eq!(p.v_min_knots, 1.0);
        assert_eq!(p.alpha, 0.25);
        assert_eq!(p.gap_period, Duration::minutes(10));
        assert_eq!(p.turn_threshold_deg, 15.0);
        assert_eq!(p.stop_radius_m, 200.0);
        assert_eq!(p.m, 10);
        p.validate().unwrap();
    }

    #[test]
    fn turn_threshold_constructor() {
        let p = TrackerParams::with_turn_threshold(5.0);
        assert_eq!(p.turn_threshold_deg, 5.0);
        assert_eq!(p.m, 10);
        p.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TrackerParams { v_min_knots: 0.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { v_low_knots: 0.5, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { alpha: 1.5, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { turn_threshold_deg: 0.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { turn_threshold_deg: 180.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { m: 1, ..Default::default() }.validate().is_err());
        assert!(TrackerParams { gap_period: Duration::ZERO, ..Default::default() }
            .validate()
            .is_err());
        assert!(TrackerParams { stop_radius_m: -1.0, ..Default::default() }
            .validate()
            .is_err());
    }
}
